"""Figure 10: UAV trajectories for different hardware configurations.

Tunnel course, ResNet14 at 3 m/s, initial angles -20/0/+20 degrees, for
Table 2 configs A (BOOM+Gemmini), B (Rocket+Gemmini), C (BOOM only).
Paper shape: A and B stabilize from every initial condition with similar
trajectories; C's ~6 s inference latency makes it collide before a useful
control target arrives.
"""

from __future__ import annotations

from repro.analysis.figures import fig10_data
from repro.analysis.render import format_table


def test_fig10(benchmark, run_once, record_stages):
    data = run_once(benchmark, lambda: fig10_data(seeds=(0,)))
    record_stages(benchmark, data)

    rows = []
    for soc in ("A", "B", "C"):
        for angle in (-20.0, 0.0, 20.0):
            agg = data[soc][angle]
            result = agg["results"][0]
            status = f"{result.mission_time:.2f}s" if result.completed else "DNF"
            max_offset = max(abs(p.d) for p in result.trajectory)
            rows.append([
                soc, f"{angle:+.0f} deg", status, result.collisions,
                f"{max_offset:.2f} m", f"{result.mean_inference_latency_ms / 1e3:.2f}s",
            ])
    print()
    print(format_table(
        ["SoC", "start", "mission", "collisions", "max |offset|", "img->target lat."],
        rows,
        title="Figure 10 (tunnel, ResNet14 @ 3 m/s)",
    ))

    for angle in (-20.0, 0.0, 20.0):
        a = data["A"][angle]["results"][0]
        b = data["B"][angle]["results"][0]
        c = data["C"][angle]["results"][0]
        # Accelerated SoCs complete cleanly from every initial condition...
        assert a.completed and a.collisions == 0, f"A @ {angle}"
        assert b.completed and b.collisions == 0, f"B @ {angle}"
        # ...with similar trajectories (insensitive to the host CPU).
        assert abs(a.mission_time - b.mission_time) < 2.0
        # The CPU-only SoC cannot navigate: collides, never finishes.
        assert not c.completed, f"C @ {angle}"
        assert c.collisions >= 1, f"C @ {angle}"

    # Section 5.1's ~6 s image-to-target latency on the BOOM-only SoC.
    c_latency_s = data["C"][20.0]["results"][0].mean_inference_latency_ms / 1e3
    assert 4.0 < c_latency_s < 9.0

    # Angled starts must actually correct back toward the center.
    for soc in ("A", "B"):
        result = data[soc][20.0]["results"][0]
        assert abs(result.trajectory[-1].d) < 1.0
