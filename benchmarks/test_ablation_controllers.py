"""Ablation: controller architecture — camera DNN vs MPC vs sensor fusion.

Extends the paper's evaluation along its Section 6 future directions: the
same SoC and course flown with (a) the camera-only DNN controller, (b) a
classical MPC with data-dependent solver iterations, and (c) the
rate-decoupled sensor-fusion network.  Reports mission quality, accelerator
activity, and SoC energy.
"""

from __future__ import annotations

from dataclasses import replace

from repro import CoSimConfig
from repro.analysis.render import format_table
from repro.core.cosim import CoSimulation
from repro.soc.energy import soc_energy


def _fly(config: CoSimConfig):
    cosim = CoSimulation(config)
    result = cosim.run()
    return result, soc_energy(cosim.soc)


def test_controller_ablation(benchmark, run_once):
    base = CoSimConfig(
        world="tunnel",
        target_velocity=3.0,
        initial_angle_deg=20.0,
        max_sim_time=40.0,
    )
    variants = {
        "dnn/resnet14": replace(base, controller="dnn", model="resnet14"),
        "dnn/resnet6": replace(base, controller="dnn", model="resnet6"),
        "mpc": replace(base, controller="mpc"),
        "fusion/resnet6": replace(base, controller="fusion", model="resnet6"),
    }

    def sweep():
        return {label: _fly(config) for label, config in variants.items()}

    data = run_once(benchmark, sweep)

    rows = []
    for label, (result, energy) in data.items():
        status = f"{result.mission_time:.2f}s" if result.completed else "DNF"
        rows.append([
            label,
            status,
            result.collisions,
            f"{result.activity_factor:.3f}",
            f"{energy.total_mj:.0f} mJ",
            f"{energy.gemmini_mj:.0f} mJ",
        ])
    print()
    print(format_table(
        ["controller", "mission", "coll.", "activity", "SoC energy", "accel energy"],
        rows,
        title="Ablation: controller architectures (tunnel @ 3 m/s, +20 deg)",
    ))

    # Every controller completes the (forgiving) tunnel without collisions.
    for label, (result, _energy) in data.items():
        assert result.completed, label
        assert result.collisions == 0, label

    # MPC uses no accelerator at all; the DNN controllers do.
    assert data["mpc"][0].activity_factor == 0.0
    assert data["dnn/resnet14"][0].activity_factor > 0.3

    # Fusion cuts accelerator activity and energy vs the camera-only DNN
    # with the same backbone.
    assert data["fusion/resnet6"][0].activity_factor < data["dnn/resnet6"][0].activity_factor
    assert data["fusion/resnet6"][1].gemmini_mj < data["dnn/resnet6"][1].gemmini_mj

    # Accelerator energy tracks activity: ResNet14 > ResNet6 > fusion.
    assert (
        data["dnn/resnet14"][1].gemmini_mj
        > data["dnn/resnet6"][1].gemmini_mj
        > data["fusion/resnet6"][1].gemmini_mj
    )
