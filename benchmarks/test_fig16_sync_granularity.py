"""Figure 16: effect of synchronization granularity on the simulated UAV.

Tunnel @ 3 m/s, ResNet14, +20 degree start; granularity swept from
10M cycles / 1 frame to 400M cycles / 40 frames.  Paper shape: identical
initial conditions diverge with granularity; the image-request ->
DNN-output latency is near the compute latency at 10M cycles and inflates
to ~one synchronization period (~400 ms, >3x) at 400M cycles.
"""

from __future__ import annotations

from repro.analysis.figures import fig16_data
from repro.analysis.render import format_table

GRANULARITIES = (10_000_000, 20_000_000, 50_000_000, 100_000_000, 200_000_000, 400_000_000)


def test_fig16(benchmark, run_once, record_stages):
    data = run_once(benchmark, lambda: fig16_data(granularities=GRANULARITIES))
    record_stages(benchmark, data)

    rows = []
    for cycles, result in data.items():
        status = f"{result.mission_time:.1f}s" if result.completed else "DNF"
        rows.append([
            f"{cycles / 1e6:.0f}M",
            result.config.sync.frames_per_sync,
            f"{result.mean_inference_latency_ms:.0f}ms",
            result.inference_count,
            status,
            result.collisions,
        ])
    print()
    print(format_table(
        ["cycles/sync", "frames/sync", "img->output latency", "inferences", "mission", "coll."],
        rows,
        title="Figure 16 (tunnel @ 3 m/s, ResNet14, +20 deg)",
    ))

    latency = {c: data[c].mean_inference_latency_ms for c in GRANULARITIES}

    # Fine granularity: latency just above the ~98 ms compute latency
    # (paper: "slightly above the expected ... compute latency ... due to
    # the overhead of loading the image from the I/O").
    assert 95 < latency[10_000_000] < 135

    # Coarse granularity: latency ~ one synchronization period (400 ms at
    # 400M cycles), >3x the fine-granularity latency — the paper's number.
    assert latency[400_000_000] > 3.0 * latency[10_000_000]
    assert 350 < latency[400_000_000] < 500

    # Latency never decreases as granularity coarsens.
    values = [latency[c] for c in GRANULARITIES]
    assert all(b >= a - 1.0 for a, b in zip(values, values[1:]))

    # Fewer inferences complete in the same course at coarse granularity.
    assert data[400_000_000].inference_count < data[10_000_000].inference_count

    # Trajectory divergence: same initial conditions, different paths.
    fine = {round(p.time, 2): p.y for p in data[10_000_000].trajectory}
    coarse = data[400_000_000].trajectory
    diffs = [
        abs(fine[round(p.time, 2)] - p.y)
        for p in coarse
        if round(p.time, 2) in fine and p.time > 2.0
    ]
    assert diffs and max(diffs) > 0.1

    # The fine-granularity flight completes the course cleanly.
    assert data[10_000_000].completed
