"""Ablation: vehicle morphology — drone vs car (artifact A.8.3).

The artifact exposes "deploying a car vs a drone simulation" as a
simulation parameter.  This ablation flies both morphologies through the
same co-simulation stack and checks the physical differences the models
must exhibit: the non-holonomic car needs a road-scale course and cannot
slip sideways; the drone corrects laterally and handles the narrow tunnel.
"""

from __future__ import annotations

from dataclasses import replace

from repro import CoSimConfig, run_mission
from repro.analysis.render import format_table


def test_vehicle_ablation(benchmark, run_once):
    road_params = {"width": 12.0, "amplitude": 6.0}
    variants = {
        "drone/dnn/tunnel": CoSimConfig(
            world="tunnel", vehicle="quadrotor", controller="dnn",
            model="resnet14", target_velocity=3.0, initial_angle_deg=20.0,
            max_sim_time=40.0,
        ),
        "drone/mpc/s-shape": CoSimConfig(
            world="s-shape", vehicle="quadrotor", controller="mpc",
            target_velocity=9.0, max_sim_time=40.0,
        ),
        "car/mpc/s-shape": CoSimConfig(
            world="s-shape", vehicle="car", controller="mpc",
            target_velocity=8.0, max_sim_time=40.0,
        ),
        "car/dnn/road": CoSimConfig(
            world="s-shape", vehicle="car", controller="dnn",
            model="resnet14", target_velocity=6.0, max_sim_time=45.0,
            world_params=road_params,
        ),
    }

    def sweep():
        return {label: run_mission(config) for label, config in variants.items()}

    data = run_once(benchmark, sweep)

    rows = []
    for label, result in data.items():
        status = f"{result.mission_time:.2f}s" if result.completed else "DNF"
        rows.append([
            label, status, result.collisions, f"{result.average_velocity:.2f} m/s",
        ])
    print()
    print(format_table(
        ["vehicle/controller/course", "mission", "coll.", "avg velocity"],
        rows,
        title="Ablation: vehicle morphology",
    ))

    for label, result in data.items():
        assert result.completed, label
        assert result.collisions == 0, label

    # Non-holonomy: the car's trajectory has zero sideslip; the drone's
    # lateral corrections show up as body-frame lateral velocity.
    # (Verified structurally in tests; here we check the flight-level
    # consequence: the car needed the widened road for the DNN controller.)
    assert data["car/dnn/road"].config.world_params == road_params
