"""Ablation: classical workloads with data-dependent runtimes (Section 6).

The paper's future-work section argues RoSE can characterize "classical
algorithms such as SLAM and nonlinear MPC [that] build upon iterative
optimization algorithms or dynamically scaling data structures" with
"data-dependent runtime behaviors".  This bench measures exactly that on
the two classical controllers of this repo:

* the MPC's solver iterations spike when the vehicle is disturbed and
  settle once it converges to the course;
* the SLAM pipeline's compute grows with the map (cells touched) and its
  matcher iterations vary with odometry error.
"""

from __future__ import annotations

import numpy as np

from repro import CoSimConfig, run_mission
from repro.analysis.render import format_table


def test_classical_data_dependence(benchmark, run_once):
    def sweep():
        mpc = run_mission(
            CoSimConfig(
                world="tunnel",
                controller="mpc",
                target_velocity=3.0,
                initial_angle_deg=20.0,
                max_sim_time=40.0,
            )
        )
        slam = run_mission(
            CoSimConfig(
                world="s-shape",
                controller="slam",
                target_velocity=6.0,
                max_sim_time=45.0,
            )
        )
        return mpc, slam

    mpc, slam = run_once(benchmark, sweep)

    mpc_hist = mpc.mpc_stats.iteration_history
    early_mpc = float(np.mean(mpc_hist[:15]))
    late_mpc = float(np.mean(mpc_hist[-30:]))
    slam_hist = slam.slam_stats.iteration_history
    print()
    print(format_table(
        ["workload", "mission", "updates", "iters (early)", "iters (late)", "iters (max)"],
        [
            ["MPC (tunnel, +20 deg)", f"{mpc.mission_time:.2f}s", len(mpc_hist),
             f"{early_mpc:.1f}", f"{late_mpc:.1f}", max(mpc_hist)],
            ["SLAM (s-shape)", f"{slam.mission_time:.2f}s", len(slam_hist),
             f"{float(np.mean(slam_hist[:15])):.1f}",
             f"{float(np.mean(slam_hist[-30:])):.1f}", max(slam_hist)],
        ],
        title="Ablation: data-dependent runtimes of classical workloads",
    ))
    print(f"SLAM localization: mean error {slam.slam_stats.mean_pose_error:.2f} m, "
          f"total compute {slam.slam_stats.total_flops / 1e6:.1f} MFLOPs")

    # Both missions succeed.
    assert mpc.completed and mpc.collisions == 0
    assert slam.completed and slam.collisions == 0

    # MPC: the initial disturbance costs extra solver iterations; the
    # converged cruise does not.
    assert early_mpc > late_mpc
    assert max(mpc_hist) > 2 * min(mpc_hist)

    # SLAM: iteration counts vary across the course (data-dependent), and
    # localization stays useful for control.
    assert max(slam_hist) > min(slam_hist)
    assert slam.slam_stats.mean_pose_error < 2.0

    # Neither classical workload touches the DNN accelerator.
    assert mpc.activity_factor == 0.0
    assert slam.activity_factor == 0.0
