"""Sweep-engine benchmarks: cache speedup, parallel bit-identity.

The engine's performance claims, asserted:

* a warm cache re-run of a sweep is at least 10x faster than the cold
  run (it deserializes results instead of simulating);
* parallel execution is bit-identical to serial — and, given enough
  cores, a 4-worker figure-12-style sweep is at least 2.5x faster than
  the serial run (skipped on small CI machines);
* chaos recovery is bounded: a sweep with an injected worker crash
  completes bit-identical to the fault-free run, and the supervision
  overhead (pool respawn + retry) stays within an absolute budget.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import pytest

from repro.core.config import CoSimConfig
from repro.sweep import (
    CHAOS_ENV,
    ChaosPlan,
    ResultCache,
    RetryPolicy,
    SweepRunner,
    config_key,
    mission_signature,
)


def _small_configs(count: int = 4) -> list[CoSimConfig]:
    base = CoSimConfig(world="tunnel", target_velocity=3.0, max_sim_time=4.0)
    return [replace(base, seed=seed) for seed in range(count)]


def _fig12_style_configs() -> list[CoSimConfig]:
    base = CoSimConfig(world="s-shape", soc="A", model="resnet14", max_sim_time=60.0)
    return [
        replace(base, target_velocity=velocity, seed=seed)
        for velocity in (6.0, 9.0, 12.0)
        for seed in (0, 1)
    ]


def test_sweep_warm_cache_speedup(benchmark, tmp_path):
    configs = _small_configs()

    t0 = time.perf_counter()
    cold = SweepRunner(workers=1, cache=ResultCache(tmp_path)).run(configs)
    cold_seconds = time.perf_counter() - t0
    cold_signatures = [mission_signature(r) for r in cold.results()]

    warm = benchmark.pedantic(
        lambda: SweepRunner(workers=1, cache=ResultCache(tmp_path)).run(configs),
        rounds=1,
        iterations=1,
    )
    warm_seconds = warm.wall_seconds

    # Bit-identical results out of the cache.
    assert [mission_signature(r) for r in warm.results()] == cold_signatures
    assert all(outcome.from_cache for outcome in warm.outcomes)
    # The headline claim, plus an absolute budget for CI.
    assert warm_seconds < cold_seconds / 10.0
    assert warm_seconds < 1.0

    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["speedup"] = round(cold_seconds / max(warm_seconds, 1e-9), 1)
    benchmark.extra_info["stage_seconds"] = {
        stage: round(seconds, 4) for stage, seconds in cold.stage_seconds().items()
    }
    benchmark.extra_info["cache"] = {
        "hits": warm.cache_hits,
        "misses": warm.cache_misses,
        "stores": warm.cache_stores,
    }


def test_sweep_parallel_bit_identity(benchmark):
    configs = _small_configs()
    serial = SweepRunner(workers=1).run(configs)
    parallel = benchmark.pedantic(
        lambda: SweepRunner(workers=2).run(configs), rounds=1, iterations=1
    )
    assert [mission_signature(r) for r in parallel.results()] == [
        mission_signature(r) for r in serial.results()
    ]
    benchmark.extra_info["serial_seconds"] = round(serial.wall_seconds, 4)
    benchmark.extra_info["parallel_seconds"] = round(parallel.wall_seconds, 4)
    benchmark.extra_info["stage_seconds"] = {
        stage: round(seconds, 4) for stage, seconds in serial.stage_seconds().items()
    }


def test_sweep_chaos_recovery_overhead(benchmark):
    """A crash-injected sweep converges, bit-identical, within budget."""
    configs = _small_configs()
    serial = SweepRunner(workers=1).run(configs)
    serial_signatures = [mission_signature(r) for r in serial.results()]

    plan = ChaosPlan(
        forced=((config_key(configs[0])[:16], "crash"),),
        max_faulty_attempts=1,
    )
    previous = os.environ.get(CHAOS_ENV)
    os.environ[CHAOS_ENV] = plan.to_json()
    try:
        t0 = time.perf_counter()
        chaotic = benchmark.pedantic(
            lambda: SweepRunner(
                workers=2,
                retry=RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.05),
            ).run(configs),
            rounds=1,
            iterations=1,
        )
        chaotic_seconds = time.perf_counter() - t0
    finally:
        if previous is None:
            os.environ.pop(CHAOS_ENV, None)
        else:
            os.environ[CHAOS_ENV] = previous

    assert chaotic.ok
    assert chaotic.pool_crashes >= 1
    assert [mission_signature(r) for r in chaotic.results()] == serial_signatures
    # Recovery cost (kill + respawn + redispatch) must stay bounded: the
    # chaotic parallel run may not exceed the serial run plus a fixed
    # supervision budget.
    assert chaotic_seconds < serial.wall_seconds + 15.0

    benchmark.extra_info["serial_seconds"] = round(serial.wall_seconds, 4)
    benchmark.extra_info["chaotic_seconds"] = round(chaotic_seconds, 4)
    benchmark.extra_info["pool_crashes"] = chaotic.pool_crashes
    benchmark.extra_info["retries"] = chaotic.retries


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="parallel speedup needs >= 4 cores"
)
def test_sweep_parallel_speedup(benchmark):
    configs = _fig12_style_configs()

    t0 = time.perf_counter()
    serial = SweepRunner(workers=1).run(configs)
    serial_seconds = time.perf_counter() - t0

    parallel = benchmark.pedantic(
        lambda: SweepRunner(workers=4).run(configs), rounds=1, iterations=1
    )
    parallel_seconds = parallel.wall_seconds

    assert [mission_signature(r) for r in parallel.results()] == [
        mission_signature(r) for r in serial.results()
    ]
    assert serial_seconds / parallel_seconds >= 2.5

    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["parallel_seconds"] = round(parallel_seconds, 4)
    benchmark.extra_info["speedup"] = round(serial_seconds / parallel_seconds, 2)
    benchmark.extra_info["stage_seconds"] = {
        stage: round(seconds, 4) for stage, seconds in serial.stage_seconds().items()
    }
