"""Table 4: RoSE deployment configurations."""

from __future__ import annotations

from repro.analysis.figures import table4_rows
from repro.analysis.render import format_table


def test_table4(benchmark, run_once):
    deployments = run_once(benchmark, table4_rows)
    print()
    for name, deployment in deployments.items():
        print(format_table(
            ["", "AirSim", "FireSim"],
            deployment.table_rows(),
            title=f"Table 4 — {name}",
        ))
        print()

    on_prem = deployments["on-premise"]
    cloud = deployments["cloud-aws"]
    # The paper's machine inventory.
    assert on_prem.airsim.cpu == "Intel Core i7-3930K"
    assert on_prem.firesim.fpga == "Xilinx U250"
    assert cloud.airsim.instance == "g4dn.2xlarge"
    assert cloud.firesim.instance == "f1.2xlarge"
    assert cloud.firesim.os == "CentOS 7.9.2009"
    # Performance-model consequence: cloud pays more per synchronization.
    assert cloud.perf.sync_overhead_s > on_prem.perf.sync_overhead_s
