"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
the same rows/series the paper reports, and asserts the *qualitative
shape* (who wins, rough factors, crossovers) rather than absolute numbers
— the substrate is a calibrated simulator, not the authors' testbed
(see DESIGN.md / EXPERIMENTS.md).

Closed-loop benches run each mission once per seed via
``benchmark.pedantic(rounds=1)``: a mission is deterministic per seed, so
statistical repetition would only re-measure wall-clock noise.
"""

from __future__ import annotations

import pytest


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return once


def mission_time_or_timeout(aggregate: dict) -> float:
    """Mean mission time, with DNFs counted at their timeout time."""
    return aggregate["mean_mission_time"]


def collect_results(data) -> list:
    """Recursively pull every MissionResult out of a figure's data tree."""
    from repro.core.cosim import MissionResult

    if isinstance(data, MissionResult):
        return [data]
    found: list = []
    if isinstance(data, dict):
        for value in data.values():
            found.extend(collect_results(value))
    elif isinstance(data, (list, tuple)):
        for value in data:
            found.extend(collect_results(value))
    return found


@pytest.fixture
def record_stages():
    """Attach the summed per-stage wall-clock split to the benchmark JSON."""

    def _record(benchmark, data) -> None:
        from repro.core.timing import merge_timings

        results = collect_results(data)
        benchmark.extra_info["stage_seconds"] = {
            stage: round(seconds, 4)
            for stage, seconds in merge_timings(
                result.stage_timings for result in results
            ).items()
        }
        benchmark.extra_info["missions"] = len(results)

    return _record
