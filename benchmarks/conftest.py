"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
the same rows/series the paper reports, and asserts the *qualitative
shape* (who wins, rough factors, crossovers) rather than absolute numbers
— the substrate is a calibrated simulator, not the authors' testbed
(see DESIGN.md / EXPERIMENTS.md).

Closed-loop benches run each mission once per seed via
``benchmark.pedantic(rounds=1)``: a mission is deterministic per seed, so
statistical repetition would only re-measure wall-clock noise.
"""

from __future__ import annotations

import pytest


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return once


def mission_time_or_timeout(aggregate: dict) -> float:
    """Mean mission time, with DNFs counted at their timeout time."""
    return aggregate["mean_mission_time"]
