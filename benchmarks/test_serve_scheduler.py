"""Serve-layer benchmarks: scheduler accounting throughput, service overhead.

The service's performance claims, asserted:

* the scheduler's control plane is cheap — leasing and completing a
  few hundred tasks (with every event journaled fsync-free through the
  in-memory path plus JSONL appends) sustains well over a thousand
  accounting operations per second, so scheduling never competes with
  mission execution;
* serving a sweep through two shard workers adds only bounded overhead
  on top of the serial runner, and the assembled report stays
  bit-identical (`report_signature`) to the serial run.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.core.config import CoSimConfig
from repro.serve import (
    FakeClock,
    JobParams,
    JobStore,
    Scheduler,
    SweepService,
    report_signature,
    run_job_to_completion,
)
from repro.sweep import SweepRunner


def _small_configs(count: int = 4) -> list[CoSimConfig]:
    base = CoSimConfig(world="tunnel", target_velocity=3.0, max_sim_time=4.0)
    return [replace(base, seed=seed) for seed in range(count)]


def test_scheduler_accounting_throughput(benchmark, tmp_path, run_once):
    """Lease/complete N tasks end to end: pure control-plane cost."""
    n = 200
    tasks = [(f"seed{s}", config) for s, config in enumerate(_small_configs(n))]
    scheduler = Scheduler(
        JobStore(tmp_path / "jobs.jsonl"),
        clock=FakeClock(),
        fingerprint="bench",
    )
    job, _ = scheduler.submit(
        "bench", tasks, JobParams(shards=2, slice_size=10, lease_seconds=60.0)
    )

    def drain() -> int:
        completed = 0
        while True:
            assignment = scheduler.lease("shard-0")
            if assignment is None:
                break
            for (name, _config), key in zip(assignment.tasks, assignment.keys):
                scheduler.complete(
                    "shard-0", job.job_id, assignment.claim_id,
                    name, key, "ok", 1,
                )
                completed += 1
        return completed

    t0 = time.perf_counter()
    completed = run_once(benchmark, drain)
    seconds = time.perf_counter() - t0

    assert completed == n
    assert scheduler.job(job.job_id).state == "done"
    # Two journaled events per task (lease slice amortized) must stay
    # far below mission cost: > 1k accounting ops/s even on slow CI.
    ops_per_second = completed / max(seconds, 1e-9)
    assert ops_per_second > 1_000

    benchmark.extra_info["tasks"] = n
    benchmark.extra_info["seconds"] = round(seconds, 4)
    benchmark.extra_info["ops_per_second"] = round(ops_per_second)
    benchmark.extra_info["journal_events"] = scheduler.store.appended


def test_sharded_service_overhead_and_bit_identity(benchmark, tmp_path,
                                                   run_once):
    """A two-shard service run == serial runner, within a fixed budget."""
    configs = _small_configs()
    tasks = [(f"seed{c.seed}", c) for c in configs]

    t0 = time.perf_counter()
    serial = SweepRunner(workers=1).run(tasks)
    serial_seconds = time.perf_counter() - t0

    def serve() -> tuple[str, SweepService]:
        service = SweepService(tmp_path / "serve", clock=FakeClock())
        submitted = service.submit(
            "bench", tasks, JobParams(shards=2, lease_seconds=120.0)
        )
        run_job_to_completion(service, submitted["job"], workers=2)
        return submitted["job"], service

    t0 = time.perf_counter()
    job_id, service = run_once(benchmark, serve)
    service_seconds = time.perf_counter() - t0

    report = service.report(job_id)
    assert report.ok
    assert report_signature(report) == report_signature(serial)
    assert len(service.status(job_id)["owners"]) == 2
    # Scheduling, journaling, and cache resolution must stay a bounded
    # tax on top of actually simulating the missions.
    assert service_seconds < serial_seconds + 10.0

    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["service_seconds"] = round(service_seconds, 4)
    benchmark.extra_info["journal_events"] = service.store.appended
