"""Figure 12: flight-velocity-target sweep (ResNet14 on BOOM+Gemmini).

Paper shape: 6 m/s flies the safest (slowest) trajectory; 9 m/s completes
in the shortest mission time (12.14 s in the paper); 12 m/s violates the
Equation 3-5 deadlines and collides.
"""

from __future__ import annotations

from repro.analysis.figures import fig12_data
from repro.analysis.render import format_table

SEEDS = (0, 1, 2)


def test_fig12(benchmark, run_once, record_stages):
    data = run_once(benchmark, lambda: fig12_data(seeds=SEEDS))
    record_stages(benchmark, data)

    rows = []
    for velocity, agg in data.items():
        rows.append([
            f"{velocity:.0f} m/s",
            f"{agg['mean_mission_time']:.2f}s",
            f"{agg['completed']}/{agg['runs']}",
            agg["total_collisions"],
            f"{agg['mean_velocity']:.2f} m/s",
        ])
    print()
    print(format_table(
        ["target", "mission (mean)", "completed", "collisions", "avg velocity"],
        rows,
        title=f"Figure 12 (s-shape, ResNet14, BOOM+Gemmini, seeds {SEEDS}) — paper best: 9 m/s @ 12.14 s",
    ))

    t6 = data[6.0]["mean_mission_time"]
    t9 = data[9.0]["mean_mission_time"]
    t12 = data[12.0]["mean_mission_time"]

    # 6 m/s: safe — completes every run with zero collisions, but slower.
    assert data[6.0]["completed"] == len(SEEDS)
    assert data[6.0]["total_collisions"] == 0
    assert t6 > t9

    # 9 m/s: the sweet spot — shortest mission time, clean flights.
    assert data[9.0]["total_collisions"] == 0
    assert t9 == min(t6, t9, t12)
    # The paper reports 12.14 s; same ballpark (within 25%).
    assert abs(t9 - 12.14) / 12.14 < 0.25

    # 12 m/s: deadline violations -> collisions.
    assert data[12.0]["total_collisions"] >= 2
