"""Ablation: multi-tenant execution on the companion SoC.

The paper's introduction motivates closed-loop co-simulation with exactly
this effect: "the performance of each individual accelerator can be
heavily impacted by system-level resource contentions where multiple
general-purpose cores and accelerators are running together".  This bench
runs the flight controller alone and together with two background tenants
— a periodic background DNN (object-detection-style monitor) and a SLAM
mapping task — and measures the controller's image-to-command latency
inflation and its closed-loop consequences.  It also shows the Figure 13
follow-through: the dynamic runtime's freed accelerator headroom makes the
mission robust to contention that hurts the static controller.
"""

from __future__ import annotations

from dataclasses import replace
from statistics import mean

from repro import CoSimConfig, run_mission
from repro.analysis.render import format_table

SEEDS = (0, 1, 2)


def test_multitenant_contention(benchmark, run_once):
    tunnel = CoSimConfig(
        world="tunnel",
        soc="A",
        model="resnet14",
        target_velocity=3.0,
        initial_angle_deg=20.0,
        max_sim_time=40.0,
    )
    s_shape = CoSimConfig(world="s-shape", soc="A", target_velocity=9.0, max_sim_time=60.0)

    def sweep():
        data = {
            "solo": run_mission(tunnel),
            "+dnn-monitor": run_mission(replace(tunnel, background="dnn-monitor")),
            "+slam-mapper": run_mission(replace(tunnel, background="slam-mapper")),
        }
        contended = {
            "static-r14": [
                run_mission(replace(s_shape, model="resnet14", background="dnn-monitor", seed=s))
                for s in SEEDS
            ],
            "dynamic": [
                run_mission(replace(s_shape, dynamic_runtime=True, background="dnn-monitor", seed=s))
                for s in SEEDS
            ],
        }
        return data, contended

    data, contended = run_once(benchmark, sweep)

    rows = []
    for label, result in data.items():
        status = f"{result.mission_time:.2f}s" if result.completed else "DNF"
        rows.append([
            label, status, result.collisions,
            f"{result.mean_inference_latency_ms:.0f}ms",
            f"{result.activity_factor:.3f}",
        ])
    print()
    print(format_table(
        ["workloads", "mission", "coll.", "ctrl latency", "activity"],
        rows,
        title="Ablation: multi-tenant SoC (tunnel @ 3 m/s, +20 deg)",
    ))

    solo = data["solo"]
    with_monitor = data["+dnn-monitor"]
    with_mapper = data["+slam-mapper"]

    # All three complete this forgiving course.
    for label, result in data.items():
        assert result.completed, label

    # The background DNN contends for the shared core/accelerator: the
    # controller's image-to-command latency inflates substantially.
    assert with_monitor.mean_inference_latency_ms > 1.25 * solo.mean_inference_latency_ms
    # The monitor actually ran.
    assert with_monitor.monitor_stats.inferences > 50

    # The SLAM mapper is a light CPU tenant: it maps successfully with
    # minor controller impact.
    assert with_mapper.background_stats.updates > 50
    assert with_mapper.background_stats.mean_pose_error < 2.0
    assert with_mapper.mean_inference_latency_ms < 1.25 * solo.mean_inference_latency_ms

    # Contended s-shape at 9 m/s: the dynamic runtime's freed headroom
    # keeps flights clean; the static ResNet14 degrades on some seeds.
    static_results = contended["static-r14"]
    dynamic_results = contended["dynamic"]
    static_time = mean(
        r.mission_time if r.completed else r.sim_time for r in static_results
    )
    dynamic_time = mean(
        r.mission_time if r.completed else r.sim_time for r in dynamic_results
    )
    print(format_table(
        ["controller", "mean mission", "total collisions"],
        [
            ["static-r14 + monitor", f"{static_time:.2f}s",
             sum(r.collisions for r in static_results)],
            ["dynamic + monitor", f"{dynamic_time:.2f}s",
             sum(r.collisions for r in dynamic_results)],
        ],
        title="Contended s-shape @ 9 m/s (seeds 0-2)",
    ))
    assert dynamic_time <= static_time + 0.3
    assert sum(r.collisions for r in dynamic_results) <= sum(
        r.collisions for r in static_results
    )
