"""Table 2: hardware configurations evaluated using RoSE."""

from __future__ import annotations

from repro.analysis.figures import table2_rows
from repro.analysis.render import format_table
from repro.soc.soc import Soc, soc_config

PAPER_TABLE2 = [
    ("A", "3-wide BOOM", "Gemmini"),
    ("B", "Rocket", "Gemmini"),
    ("C", "3-wide BOOM", "None"),
]


def test_table2(benchmark, run_once):
    rows = run_once(benchmark, table2_rows)
    print()
    print(format_table(["Configuration", "CPU", "Accelerator"], rows, title="Table 2"))
    assert rows == PAPER_TABLE2
    # And the configurations actually instantiate as described.
    for name, _cpu, accel in rows:
        soc = Soc(soc_config(name))
        assert (soc.gemmini is not None) == (accel == "Gemmini")
