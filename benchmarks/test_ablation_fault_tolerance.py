"""Ablation: fault tolerance — mission outcome vs link loss rate.

The deployed synchronizer <-> FireSim link is a real network connection
(Section 3.4.1); this ablation injects seeded sensor-response drops at
increasing rates and flies the tunnel trail-navigation mission at each,
reporting mission outcome alongside the resilience machinery's work
(retries, regrants, degradation actions).  The qualitative claims: the
control loop absorbs moderate loss (the retry/stale-frame paths recover
every dropped response), the recovery work grows with the loss rate, and
the same plan + seed reproduces byte-identical fault counters.
"""

from __future__ import annotations

from dataclasses import replace

from repro import CoSimConfig, FaultPlan, run_mission
from repro.analysis.render import format_table

DROP_RATES = (0.0, 0.05, 0.10, 0.20)


def fault_config(drop: float) -> CoSimConfig:
    return CoSimConfig(
        world="tunnel", soc="A", model="resnet14", target_velocity=3.0,
        max_sim_time=60.0,
        faults=FaultPlan.sensor_response_drop(drop, seed=7) if drop else None,
    )


def test_fault_tolerance_ablation(benchmark, run_once):
    def sweep():
        return {drop: run_mission(fault_config(drop)) for drop in DROP_RATES}

    data = run_once(benchmark, sweep)

    rows = []
    for drop, result in data.items():
        stats = result.app_stats
        dropped = result.sync_stats.packets_dropped if result.sync_stats else 0
        status = f"{result.mission_time:.2f}s" if result.completed else (
            result.failure_reason or "DNF"
        )
        rows.append([
            f"{drop:.0%}", status, dropped, stats.sensor_timeouts,
            stats.sensor_retries, stats.stale_frames_reused + stats.held_commands,
        ])
    print()
    print(format_table(
        ["drop rate", "mission", "dropped", "timeouts", "retries", "degraded"],
        rows,
        title="Ablation: sensor-response loss tolerance",
    ))

    # The acceptance bar: 10% loss must not break the mission.
    for drop in DROP_RATES:
        assert data[drop].completed, f"mission failed at {drop:.0%} loss"
        assert data[drop].failure_reason is None

    # Loss-free flight pays zero resilience cost.
    clean = data[0.0]
    assert clean.app_stats.sensor_timeouts == 0
    assert clean.sync_stats.fault_summary() == {
        name: 0 for name in clean.sync_stats.fault_summary()
    }

    # Recovery work is monotone-ish in the loss rate: the heaviest plan
    # does strictly more than the lightest.
    assert (
        data[0.20].app_stats.sensor_timeouts > data[0.05].app_stats.sensor_timeouts
    )
    assert data[0.20].sync_stats.packets_dropped > data[0.05].sync_stats.packets_dropped


def test_fault_injection_reproducibility(benchmark, run_once):
    config = replace(fault_config(0.10), max_sim_time=20.0)

    def twice():
        return run_mission(config), run_mission(config)

    first, second = run_once(benchmark, twice)
    assert first.sync_stats.fault_summary() == second.sync_stats.fault_summary()
    assert first.app_stats.sensor_timeouts == second.app_stats.sensor_timeouts
    assert first.mission_time == second.mission_time
    print()
    print(f"fault counters (both runs): {first.sync_stats.fault_summary()}")
