"""Ablation: camera-branch rate of the sensor-fusion controller.

Sweeps how often the heavy camera backbone executes relative to the IMU
branch (the "branches executed at different rates" opportunity of
Section 6).  The tradeoff: rarer camera fixes cut accelerator activity
and energy, but eventually dead-reckoning drift degrades flight.
"""

from __future__ import annotations

from dataclasses import replace

from repro import CoSimConfig
from repro.analysis.render import format_table
from repro.core.cosim import CoSimulation
from repro.soc.energy import soc_energy

RATES = (2, 5, 10, 40)


def test_fusion_rate_sweep(benchmark, run_once):
    base = CoSimConfig(
        world="tunnel",
        controller="fusion",
        model="resnet6",
        target_velocity=3.0,
        initial_angle_deg=20.0,
        max_sim_time=40.0,
    )

    def sweep():
        out = {}
        for every in RATES:
            cosim = CoSimulation(replace(base, fusion_camera_every=every))
            result = cosim.run()
            out[every] = (result, soc_energy(cosim.soc))
        return out

    data = run_once(benchmark, sweep)

    rows = []
    for every, (result, energy) in data.items():
        status = f"{result.mission_time:.2f}s" if result.completed else "DNF"
        stats = result.fusion_stats
        rows.append([
            f"1/{every}",
            stats.camera_branch_runs,
            stats.imu_branch_runs,
            f"{result.activity_factor:.3f}",
            f"{energy.gemmini_mj:.0f} mJ",
            status,
            result.collisions,
        ])
    print()
    print(format_table(
        ["camera rate", "camera runs", "imu runs", "activity", "accel energy", "mission", "coll."],
        rows,
        title="Ablation: fusion camera-branch rate (tunnel @ 3 m/s, +20 deg)",
    ))

    # Activity factor and accelerator energy fall monotonically as the
    # camera branch runs less often.
    activities = [data[e][0].activity_factor for e in RATES]
    energies = [data[e][1].gemmini_mj for e in RATES]
    assert activities == sorted(activities, reverse=True)
    assert energies == sorted(energies, reverse=True)

    # The moderate rates complete the mission cleanly — the fusion
    # controller tolerates a 10x camera-rate reduction on this course.
    for every in (2, 5, 10):
        result = data[every][0]
        assert result.completed and result.collisions == 0, f"1/{every}"
