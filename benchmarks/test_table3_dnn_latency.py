"""Table 3: latency and accuracy of the trained DNN controllers.

Latencies come from scheduling each variant's real operator graph onto the
Gemmini/CPU cycle models; accuracies from the calibrated classifier's
validation distribution.  Shape checks: latency monotone in depth, Rocket
slower than BOOM everywhere, each cell within 2x of the paper, accuracy
within a few points of Table 3.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import table3_rows
from repro.analysis.render import format_table
from repro.dnn.resnet import RESNET_NAMES

PAPER = {
    #           boom_ms  rocket_ms  accuracy
    "resnet6": (77, 101, 0.72),
    "resnet11": (83, 108, 0.78),
    "resnet14": (85, 125, 0.82),
    "resnet18": (130, 185, 0.83),
    "resnet34": (225, 300, 0.86),
}


def test_table3(benchmark, run_once):
    rows = run_once(benchmark, lambda: table3_rows(accuracy_samples=4000))
    print()
    print(
        format_table(
            ["Model", "Latency (BOOM+G)", "paper", "Latency (Rocket+G)", "paper",
             "Val. accuracy", "paper"],
            [
                [
                    r["model"],
                    f"{r['latency_boom_ms']:.0f}ms",
                    f"{PAPER[r['model']][0]}ms",
                    f"{r['latency_rocket_ms']:.0f}ms",
                    f"{PAPER[r['model']][1]}ms",
                    f"{r['accuracy'] * 100:.0f}%",
                    f"{PAPER[r['model']][2] * 100:.0f}%",
                ]
                for r in rows
            ],
            title="Table 3 (measured vs paper)",
        )
    )

    by_model = {r["model"]: r for r in rows}
    boom = [by_model[n]["latency_boom_ms"] for n in RESNET_NAMES]
    rocket = [by_model[n]["latency_rocket_ms"] for n in RESNET_NAMES]

    # Shape: monotone in depth on both cores.
    assert boom == sorted(boom)
    assert rocket == sorted(rocket)
    for b, r in zip(boom, rocket):
        assert r > b  # Rocket always slower

    # Magnitudes: every latency within 2x of the paper's.
    for name in RESNET_NAMES:
        paper_boom, paper_rocket, paper_acc = PAPER[name]
        assert paper_boom / 2 < by_model[name]["latency_boom_ms"] < paper_boom * 2
        assert paper_rocket / 2 < by_model[name]["latency_rocket_ms"] < paper_rocket * 2
        assert by_model[name]["accuracy"] == pytest.approx(paper_acc, abs=0.05)

    # The big-model latency jump: ResNet34 well over 2x ResNet14 (paper 2.6x).
    assert by_model["resnet34"]["latency_boom_ms"] > 1.8 * by_model["resnet14"]["latency_boom_ms"]
