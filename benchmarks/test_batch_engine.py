"""Batched mission engine throughput: the >=5x missions/sec/core gate.

ROADMAP open item 2 asks for a vectorized engine delivering at least 5x
missions/sec/core over the serial path on a sweep-shaped workload.  This
bench runs a fig11-style group (s-shape course, SoC A, rotating DNN
variants, 16 seeds) serially and at several lockstep widths, asserting:

* every batch size produces signatures bit-identical to serial;
* the full-width batch is >=5x faster than serial **per core**, gated on
  CPU seconds (``time.process_time``): both sides are a single process,
  so CPU seconds is exactly the per-core denominator — and unlike
  wall-clock it is immune to other-process contention on shared CI
  machines (+-20% wall noise observed).  The gate is never skipped on
  small machines, core count included: per-core means a 1-core box
  measures the same ratio.
* the batch-size scaling curve (1, 4, 8, 16) is recorded so the perf
  trajectory is tracked over time.

Timed sections take the best of N repetitions: the minimum of a
deterministic computation is the least-contended measurement, not a
statistical cherry-pick.

Besides the pytest-benchmark record, the bench emits ``BENCH_batch.json``
at the repo root — a small standalone perf record downstream tooling can
diff without parsing the full benchmark JSON.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from repro.batch.engine import run_missions_batched
from repro.core.config import CoSimConfig
from repro.core.cosim import run_mission
from repro.sweep.signature import mission_signature

BENCH_RECORD = Path(__file__).resolve().parent.parent / "BENCH_batch.json"

#: Rotating DNN variants, as in the fig11 sweep.
MODELS = ("resnet6", "resnet11", "resnet14", "resnet18")

BATCH_SIZES = (1, 4, 8, 16)
GATE_SPEEDUP = 5.0


def _fig11_style_configs(count: int = 16) -> list[CoSimConfig]:
    return [
        CoSimConfig(
            world="s-shape",
            soc="A",
            model=MODELS[seed % len(MODELS)],
            target_velocity=9.0,
            max_sim_time=8.0,
            seed=seed,
        )
        for seed in range(count)
    ]


def _best_of(reps: int, fn: Callable[[], Any]) -> tuple[float, float, Any]:
    """Return (best CPU seconds, best wall seconds, a result)."""
    best_cpu = best_wall = float("inf")
    best_result: Any = None
    for _ in range(reps):
        cpu0, wall0 = time.process_time(), time.perf_counter()
        result = fn()
        cpu = time.process_time() - cpu0
        wall = time.perf_counter() - wall0
        best_wall = min(best_wall, wall)
        if cpu < best_cpu:
            best_cpu, best_result = cpu, result
    return best_cpu, best_wall, best_result


def test_batch_throughput_and_scaling(benchmark):
    configs = _fig11_style_configs()
    missions = len(configs)

    serial_cpu, serial_wall, serial_results = _best_of(
        2, lambda: [run_mission(cfg) for cfg in configs]
    )
    serial_signatures = [mission_signature(r) for r in serial_results]

    # The gated full-width measurement runs first (before the scaling
    # sweep below can fragment the allocator) and under the
    # pytest-benchmark timer; CPU seconds are captured per round.
    full_width = BATCH_SIZES[-1]
    batched_results: list[Any] = []
    round_cpu: list[float] = []

    def _full_batch() -> None:
        cpu0 = time.process_time()
        batched_results[:] = run_missions_batched(configs, batch_size=full_width)
        round_cpu.append(time.process_time() - cpu0)

    benchmark.pedantic(_full_batch, rounds=3, iterations=1)
    batch_cpu = min(round_cpu)
    batch_wall = benchmark.stats.stats.min
    assert [mission_signature(r) for r in batched_results] == serial_signatures

    speedup = serial_cpu / batch_cpu
    # The headline gate: >=5x missions/sec/core, on CPU seconds.
    assert speedup >= GATE_SPEEDUP, (
        f"batched engine delivered {speedup:.2f}x missions/sec/core "
        f"(serial {serial_cpu:.2f} cpu-s vs batch{full_width} "
        f"{batch_cpu:.2f} cpu-s for {missions} missions); gate is "
        f">={GATE_SPEEDUP}x"
    )

    # Scaling curve: same workload in lockstep chunks of each size.
    curve: list[dict[str, float | int]] = []
    for size in BATCH_SIZES[:-1]:
        cpu, wall, results = _best_of(
            1, lambda size=size: run_missions_batched(configs, batch_size=size)
        )
        assert [mission_signature(r) for r in results] == serial_signatures
        curve.append(
            {
                "batch_size": size,
                "cpu_seconds": round(cpu, 3),
                "missions_per_sec_per_core": round(missions / cpu, 3),
            }
        )
    curve.append(
        {
            "batch_size": full_width,
            "cpu_seconds": round(batch_cpu, 3),
            "missions_per_sec_per_core": round(missions / batch_cpu, 3),
        }
    )

    record = {
        "workload": {
            "figure": "fig11-style",
            "world": "s-shape",
            "soc": "A",
            "models": list(MODELS),
            "target_velocity": 9.0,
            "max_sim_time": 8.0,
            "missions": missions,
        },
        "cores_per_run": 1,
        "serial_cpu_seconds": round(serial_cpu, 3),
        "serial_wall_seconds": round(serial_wall, 3),
        "serial_missions_per_sec_per_core": round(missions / serial_cpu, 3),
        "batched_cpu_seconds": round(batch_cpu, 3),
        "batched_wall_seconds": round(batch_wall, 3),
        "batched_missions_per_sec_per_core": round(missions / batch_cpu, 3),
        "speedup": round(speedup, 2),
        "gate_speedup": GATE_SPEEDUP,
        "scaling_curve": curve,
        "signatures_bit_identical": True,
    }
    BENCH_RECORD.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info.update(record)
