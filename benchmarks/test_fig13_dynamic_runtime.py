"""Figure 13: static vs dynamically-selected DNN tasks.

Paper shape: statically running the small DNN lowers the accelerator
activity factor at the cost of mission time; the dynamic runtime
(ResNet14 <-> ResNet6 by deadline) achieves a *lower* activity factor
than static ResNet14 while matching or improving mission time, and
performs ~15% fewer inferences than static ResNet14 due to the overhead
of hosting two runtime sessions.
"""

from __future__ import annotations

from repro.analysis.figures import fig13_data
from repro.analysis.render import format_table

SEEDS = (0, 1, 2)


def test_fig13(benchmark, run_once, record_stages):
    data = run_once(benchmark, lambda: fig13_data(seeds=SEEDS))
    record_stages(benchmark, data)

    rows = []
    for label, agg in data.items():
        rows.append([
            label,
            f"{agg['mean_mission_time']:.2f}s",
            f"{agg['mean_activity']:.3f}",
            f"{agg['mean_inferences']:.0f}",
            agg["total_collisions"],
        ])
    print()
    print(format_table(
        ["runtime", "mission (mean)", "activity factor", "inferences", "collisions"],
        rows,
        title=f"Figure 13 (s-shape @ 9 m/s, seeds {SEEDS})",
    ))

    static14 = data["static-resnet14"]
    static6 = data["static-resnet6"]
    dynamic = data["dynamic"]

    # Static small network: lower activity, worse mission time.
    assert static6["mean_activity"] < static14["mean_activity"]
    assert static6["mean_mission_time"] > static14["mean_mission_time"]

    # Dynamic: lower activity than static ResNet14 AND no mission-time
    # regression (the paper's headline result for this experiment).
    assert dynamic["mean_activity"] < static14["mean_activity"] - 0.02
    assert dynamic["mean_mission_time"] <= static14["mean_mission_time"] + 0.5

    # Session-hosting overhead: the dynamic app performs no *more*
    # inferences than an equal-duration static ResNet14 run would, despite
    # mixing in the faster ResNet6 (paper: ~15% fewer).
    per_second_static = static14["mean_inferences"] / static14["mean_mission_time"]
    per_second_dynamic = dynamic["mean_inferences"] / dynamic["mean_mission_time"]
    assert per_second_dynamic < per_second_static * 1.35

    # The dynamic runtime actually exercised both sessions.
    for result in dynamic["results"]:
        assert set(result.app_stats.inferences_by_model) == {"resnet14", "resnet6"}
