"""Ablation: INT8 quantization (Gemmini's native configuration).

Section 4.2.1 configures Gemmini as a 4x4 FP32 mesh only because the
evaluated DNNs use floating point; Gemmini's native INT8 datatype fits a
16x16 mesh in the same 128-bit bus width.  This ablation quantizes the
controller: ~3x lower inference latency and much lower accelerator
activity, at a small accuracy cost — which, closed-loop, *rescues* the
large network that cannot fly in FP32 (the accuracy/latency tradeoff of
Section 5.2, resolved along the datatype axis).
"""

from __future__ import annotations

from dataclasses import replace

from repro import CoSimConfig, run_mission
from repro.analysis.render import format_table
from repro.dnn.resnet import RESNET_NAMES, build_all_graphs
from repro.dnn.runtime import latency_table
from repro.soc.cpu import boom_core
from repro.soc.gemmini import default_gemmini, int8_gemmini

SEEDS = (0, 1, 2)


def test_quantization(benchmark, run_once):
    graphs = build_all_graphs()

    def sweep():
        tables = {
            "fp32": latency_table(graphs, boom_core(), default_gemmini()),
            "int8": latency_table(graphs, boom_core(), int8_gemmini()),
        }
        base = CoSimConfig(
            world="s-shape", soc="A", model="resnet34", target_velocity=9.0,
            max_sim_time=60.0,
        )
        missions = {
            dtype: [run_mission(replace(base, gemmini_dtype=dtype, seed=s)) for s in SEEDS]
            for dtype in ("fp32", "int8")
        }
        return tables, missions

    tables, missions = run_once(benchmark, sweep)

    print()
    print(format_table(
        ["model", "fp32 (4x4)", "int8 (16x16)", "speedup"],
        [
            [
                name,
                f"{tables['fp32'][name].latency_ms():.1f}ms",
                f"{tables['int8'][name].latency_ms():.1f}ms",
                f"{tables['fp32'][name].total_cycles / tables['int8'][name].total_cycles:.1f}x",
            ]
            for name in RESNET_NAMES
        ],
        title="Ablation: Gemmini datatype (BOOM host, same bus width)",
    ))

    rows = []
    for dtype, results in missions.items():
        times = [r.mission_time if r.completed else r.sim_time for r in results]
        rows.append([
            f"resnet34 / {dtype}",
            f"{sum(times) / len(times):.2f}s",
            sum(r.collisions for r in results),
            f"{results[0].mean_inference_latency_ms:.0f}ms",
            f"{results[0].activity_factor:.3f}",
        ])
    print(format_table(
        ["configuration", "mean mission", "collisions", "latency", "activity"],
        rows,
        title=f"Closed loop: ResNet34 on the s-shape @ 9 m/s (seeds {SEEDS})",
    ))

    # Latency: INT8 is substantially faster on every model, more so for
    # the compute-bound deep networks.
    for name in RESNET_NAMES:
        speedup = tables["fp32"][name].total_cycles / tables["int8"][name].total_cycles
        assert speedup > 1.3, name
    deep_speedup = tables["fp32"]["resnet34"].total_cycles / tables["int8"]["resnet34"].total_cycles
    shallow_speedup = tables["fp32"]["resnet6"].total_cycles / tables["int8"]["resnet6"].total_cycles
    assert deep_speedup > shallow_speedup

    # Closed loop: FP32 ResNet34 degrades (collisions / long missions);
    # INT8 flies it cleanly.
    fp32_collisions = sum(r.collisions for r in missions["fp32"])
    int8_collisions = sum(r.collisions for r in missions["int8"])
    assert fp32_collisions >= 2
    assert int8_collisions == 0
    fp32_time = sum(
        r.mission_time if r.completed else r.sim_time for r in missions["fp32"]
    )
    int8_time = sum(
        r.mission_time if r.completed else r.sim_time for r in missions["int8"]
    )
    assert int8_time < fp32_time - 5.0
