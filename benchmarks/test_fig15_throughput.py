"""Figure 15: co-simulation throughput vs synchronization granularity.

Paper shape: throughput is bottlenecked by the per-synchronization host
overhead (FireSim scheduler polling the RoSE bridge) at fine granularity
and by the maximum FPGA simulation rate at coarse granularity, with a
knee in the 10-100M cycles/sync range the paper recommends.
"""

from __future__ import annotations

from repro.analysis.figures import fig15_data
from repro.analysis.render import format_table
from repro.core.deploy import CLOUD_AWS, ON_PREMISE


def test_fig15(benchmark, run_once):
    points = run_once(benchmark, fig15_data)
    cloud_points = fig15_data(CLOUD_AWS)

    print()
    print(format_table(
        ["cycles/sync", "on-prem [MHz]", "sync-only [MHz]", "cloud [MHz]"],
        [
            [
                f"{p.cycles_per_sync / 1e6:.0f}M",
                f"{p.throughput_mhz:.2f}",
                f"{p.sync_only_mhz:.2f}",
                f"{c.throughput_mhz:.2f}",
            ]
            for p, c in zip(points, cloud_points)
        ],
        title="Figure 15 (simulation throughput vs sync granularity)",
    ))

    rates = [p.throughput_mhz for p in points]
    fpga_max = ON_PREMISE.perf.fpga_sim_rate_mhz

    # Monotone and saturating at the FPGA bound.
    assert rates == sorted(rates)
    assert rates[-1] <= fpga_max
    assert rates[-1] > 0.95 * fpga_max

    # Fine granularity pays the synchronization overhead: well below peak.
    assert rates[0] < 0.4 * fpga_max

    # The paper's recommended 10-100M window is within ~30% of peak while
    # much finer sync is not.
    by_gran = {p.cycles_per_sync: p.throughput_mhz for p in points}
    assert by_gran[10_000_000] > 0.6 * fpga_max
    assert by_gran[100_000_000] > 0.9 * fpga_max

    # The cloud deployment (higher RPC overhead) is slower at fine
    # granularity.
    assert cloud_points[0].throughput_mhz < points[0].throughput_mhz

    # The sync-only microbenchmark is an upper bound on the full loop.
    for p in points:
        assert p.sync_only_mhz >= p.throughput_mhz - 1e-9
