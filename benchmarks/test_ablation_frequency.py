"""Ablation: clock-frequency scaling vs architectural choice.

Section 2.2's criticism of off-the-shelf hardware-in-the-loop evaluation
is that it only reaches "post-silicon system parameters such as core
count and clock frequency".  This ablation exercises the frequency knob —
the same cycle counts, a different clock — and contrasts it with the
architectural knob (choosing a smaller network): at a down-clocked
0.5 GHz, swapping ResNet18 for ResNet6 recovers a clean flight that
frequency alone cannot, showing why pre-silicon architectural exploration
matters beyond frequency scaling.
"""

from __future__ import annotations

import pytest

from repro import CoSimConfig, SyncConfig, run_mission
from repro.analysis.render import format_table

GHZ_POINTS = (0.5, 1.0, 2.0)


def _mission(model: str, ghz: float):
    sync = SyncConfig(
        cycles_per_sync=int(10_000_000 * ghz), soc_frequency_hz=ghz * 1e9
    )
    return run_mission(
        CoSimConfig(
            world="s-shape",
            soc="A",
            model=model,
            target_velocity=9.0,
            max_sim_time=60.0,
            sync=sync,
        )
    )


def test_frequency_scaling(benchmark, run_once):
    def sweep():
        data = {ghz: _mission("resnet18", ghz) for ghz in GHZ_POINTS}
        data["r6@0.5"] = _mission("resnet6", 0.5)
        return data

    data = run_once(benchmark, sweep)

    rows = []
    for key in GHZ_POINTS:
        result = data[key]
        status = f"{result.mission_time:.2f}s" if result.completed else "DNF"
        rows.append([
            f"ResNet18 @ {key} GHz",
            f"{result.mean_inference_latency_ms:.0f}ms",
            status,
            result.collisions,
        ])
    r6 = data["r6@0.5"]
    rows.append([
        "ResNet6 @ 0.5 GHz",
        f"{r6.mean_inference_latency_ms:.0f}ms",
        f"{r6.mission_time:.2f}s" if r6.completed else "DNF",
        r6.collisions,
    ])
    print()
    print(format_table(
        ["configuration", "DNN latency", "mission", "collisions"],
        rows,
        title="Ablation: frequency scaling vs architecture (s-shape @ 9 m/s)",
    ))

    half, one, two = (data[g] for g in GHZ_POINTS)

    # Latency scales inversely with frequency (same cycle counts; the
    # residual is synchronization-boundary alignment).
    assert half.mean_inference_latency_ms == pytest.approx(
        2 * one.mean_inference_latency_ms, rel=0.1
    )
    assert two.mean_inference_latency_ms == pytest.approx(
        0.5 * one.mean_inference_latency_ms, rel=0.15
    )

    # Down-clocked ResNet18 collides; nominal and overclocked fly clean.
    assert half.collisions >= 2
    assert one.collisions == 0
    assert two.collisions == 0
    assert two.mission_time <= one.mission_time + 0.5

    # The architectural alternative: at the same 0.5 GHz, the small
    # network's latency fits the deadline and the flight is far better.
    assert r6.collisions < half.collisions
    half_time = half.mission_time if half.completed else half.sim_time
    r6_time = r6.mission_time if r6.completed else r6.sim_time
    assert r6_time < half_time - 5.0
