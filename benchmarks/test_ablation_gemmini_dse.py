"""Ablation: Gemmini microarchitecture design-space exploration.

The paper's core argument against off-the-shelf hardware-in-the-loop
evaluation (Section 2.2) is that it limits users "to tuning post-silicon
system parameters such as core count and clock frequency, without access
to a wider range of microarchitectural parameters across accelerator
design and SoC integration".  This ablation exercises exactly that freedom
in the model: sweeping the systolic mesh dimensions and the scratchpad
capacity and regenerating the controller-latency table for each point.
"""

from __future__ import annotations

from repro.analysis.render import format_table
from repro.dnn.resnet import build_resnet_graph
from repro.dnn.runtime import InferenceSession
from repro.soc.cpu import boom_core
from repro.soc.gemmini import GemminiModel


def _latency_ms(mesh: int, scratchpad_kib: int = 256, model: str = "resnet14") -> float:
    gemmini = GemminiModel(
        mesh_rows=mesh, mesh_cols=mesh, scratchpad_bytes=scratchpad_kib * 1024
    )
    session = InferenceSession(build_resnet_graph(model), boom_core(), gemmini)
    return session.report.latency_ms()


def test_mesh_size_sweep(benchmark, run_once):
    meshes = (2, 4, 8, 16)
    latencies = run_once(
        benchmark, lambda: {mesh: _latency_ms(mesh) for mesh in meshes}
    )
    print()
    print(format_table(
        ["mesh", "ResNet14 latency"],
        [[f"{m}x{m}", f"{latencies[m]:.1f}ms"] for m in meshes],
        title="Ablation: systolic mesh dimensions (BOOM host)",
    ))
    # Bigger meshes are monotonically faster...
    values = [latencies[m] for m in meshes]
    assert values == sorted(values, reverse=True)
    # ...with diminishing returns: the 8->16 step saves less than 2->4
    # (CPU-side layers and dispatch become the bottleneck — Amdahl).
    assert (latencies[2] - latencies[4]) > (latencies[8] - latencies[16])
    # Amdahl floor: even an enormous mesh cannot reach zero latency.
    assert latencies[16] > 20.0


def test_scratchpad_sweep(benchmark, run_once):
    """Capacity matters once the mesh is fast enough to be DMA-bound.

    On the paper's 4x4 mesh the convolutions are compute-bound, so the
    scratchpad size is invisible (verified below) — but a 16x16 mesh
    shifts the bottleneck to weight/activation streaming, where a small
    scratchpad forces activation re-streaming per weight pass.
    """
    sizes = (32, 64, 128, 256, 512)
    data = run_once(
        benchmark,
        lambda: {
            mesh: {kib: _latency_ms(mesh, scratchpad_kib=kib, model="resnet34") for kib in sizes}
            for mesh in (4, 16)
        },
    )
    print()
    print(format_table(
        ["scratchpad", "4x4 mesh", "16x16 mesh"],
        [
            [f"{k} KiB", f"{data[4][k]:.1f}ms", f"{data[16][k]:.1f}ms"]
            for k in sizes
        ],
        title="Ablation: scratchpad capacity (ResNet34, weight re-streaming)",
    ))
    # 4x4: compute-bound, capacity-insensitive.
    small_mesh = [data[4][k] for k in sizes]
    assert max(small_mesh) - min(small_mesh) < 0.05 * max(small_mesh)
    # 16x16: DMA-bound, monotone benefit from more on-chip capacity with a
    # meaningful spread between the extremes.
    big_mesh = [data[16][k] for k in sizes]
    assert big_mesh == sorted(big_mesh, reverse=True)
    assert big_mesh[0] > 1.1 * big_mesh[-1]
