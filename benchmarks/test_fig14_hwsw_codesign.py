"""Figure 14: hardware/software co-design sweep (BOOM vs Rocket x DNNs).

Paper shape: with BOOM, ResNet14 is the optimal design point; with
Rocket, the SoC struggles (collision recoveries, much higher mission
times) and low-latency networks gain ground — ResNet6 performs better
than ResNet11 on Rocket, i.e. the optimal point moves when the
microarchitecture changes.
"""

from __future__ import annotations

from statistics import mean

from repro.analysis.figures import fig14_data
from repro.analysis.render import format_table
from repro.dnn.resnet import RESNET_NAMES

SEEDS = (0, 1, 2)


def test_fig14(benchmark, run_once, record_stages):
    data = run_once(benchmark, lambda: fig14_data(seeds=SEEDS))
    record_stages(benchmark, data)

    rows = []
    for soc, label in (("A", "BOOM+Gemmini"), ("B", "Rocket+Gemmini")):
        for model in RESNET_NAMES:
            agg = data[soc][model]
            rows.append([
                label,
                model,
                f"{agg['mean_mission_time']:.2f}s",
                f"{agg['mean_velocity']:.2f} m/s",
                f"{agg['mean_activity']:.3f}",
                agg["total_collisions"],
            ])
    print()
    print(format_table(
        ["SoC", "model", "mission (mean)", "velocity", "DNN activity", "collisions"],
        rows,
        title=f"Figure 14 (s-shape @ 9 m/s, seeds {SEEDS})",
    ))

    boom = {m: data["A"][m] for m in RESNET_NAMES}
    rocket = {m: data["B"][m] for m in RESNET_NAMES}

    # BOOM: ResNet14 is optimal (or tied within noise).
    boom_times = {m: agg["mean_mission_time"] for m, agg in boom.items()}
    assert boom_times["resnet14"] <= min(boom_times.values()) + 0.6

    # Rocket degrades flight overall: more collisions and no faster
    # missions than BOOM on aggregate.
    assert sum(a["total_collisions"] for a in rocket.values()) > sum(
        a["total_collisions"] for a in boom.values()
    )
    assert mean(a["mean_mission_time"] for a in rocket.values()) > mean(
        a["mean_mission_time"] for a in boom.values()
    )

    # The co-design crossover: on Rocket, the big network is crippled by
    # latency (worst point by far), and low-latency networks close the gap
    # toward — the ResNet6-vs-ResNet11 margin shrinks or flips vs BOOM.
    rocket_times = {m: agg["mean_mission_time"] for m, agg in rocket.items()}
    assert rocket_times["resnet34"] == max(rocket_times.values())
    boom_gap = boom_times["resnet6"] - boom_times["resnet11"]
    rocket_gap = rocket_times["resnet6"] - rocket_times["resnet11"]
    assert rocket_gap < boom_gap + 1.0

    # Activity factors are higher on Rocket (same Gemmini work, slower CPU
    # phases means... actually lower total activity: the CPU stretches the
    # denominator).  Shape: activity monotone in model size on both.
    for soc_data in (boom, rocket):
        activities = [soc_data[m]["mean_activity"] for m in RESNET_NAMES]
        assert activities == sorted(activities)
