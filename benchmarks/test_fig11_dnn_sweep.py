"""Figure 11: trajectories across DNN architectures (s-shape @ 9 m/s).

Paper shape: ResNet14 gives the best mission time; ResNet6 is fast but
inaccurate/low-confidence and collides; the large networks' latency and
overconfident corrections degrade flight — ResNet34 cannot complete the
course without multiple collisions.
"""

from __future__ import annotations

from statistics import mean

from repro.analysis.figures import fig11_data
from repro.analysis.render import format_table

SEEDS = (0, 1, 2)

PAPER_MISSION_TIMES = {
    "resnet6": 16.1,
    "resnet11": 12.94,
    "resnet14": 12.32,
    "resnet18": 35.68,
    "resnet34": None,  # fails
}


def test_fig11(benchmark, run_once, record_stages):
    data = run_once(benchmark, lambda: fig11_data(seeds=SEEDS))
    record_stages(benchmark, data)

    rows = []
    for model, agg in data.items():
        paper = PAPER_MISSION_TIMES[model]
        rows.append([
            model,
            f"{agg['mean_mission_time']:.2f}s",
            "fails" if paper is None else f"{paper:.2f}s",
            f"{agg['completed']}/{agg['runs']}",
            agg["total_collisions"],
            f"{agg['mean_latency_ms']:.0f}ms",
        ])
    print()
    print(format_table(
        ["model", "mission (mean)", "paper", "completed", "collisions", "latency"],
        rows,
        title=f"Figure 11 (s-shape @ 9 m/s, BOOM+Gemmini, seeds {SEEDS})",
    ))

    t = {m: data[m]["mean_mission_time"] for m in data}

    # ResNet14 is the best (or tied-best) design point.
    assert t["resnet14"] <= min(t.values()) + 0.6

    # ResNet6 collides on every seed (its 16.1 s in the paper includes
    # collision recoveries) and is slower than ResNet14.
    assert data["resnet6"]["total_collisions"] >= len(SEEDS)
    assert t["resnet6"] > t["resnet14"] + 2.0

    # Large networks degrade: ResNet34 collides repeatedly and is much
    # slower; ResNet18 sits between ResNet14 and ResNet34.
    assert data["resnet34"]["total_collisions"] >= 2 * len(SEEDS)
    assert t["resnet34"] > t["resnet14"] + 4.0
    assert t["resnet14"] <= t["resnet18"] <= t["resnet34"] + 1.0

    # Latency is monotone in depth (the Table 3 column, measured in-loop).
    latencies = [data[m]["mean_latency_ms"] for m in
                 ("resnet6", "resnet11", "resnet14", "resnet18", "resnet34")]
    assert latencies == sorted(latencies)
