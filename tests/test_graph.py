"""Tests for the onnx-lite operator graph."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnn.graph import FP32_BYTES, Graph, GraphBuilder, Node, OpType
from repro.errors import GraphError


def small_graph() -> Graph:
    b = GraphBuilder("net", (3, 8, 8))
    b.conv(4, 3, padding=1)
    b.batchnorm()
    b.relu()
    b.globalavgpool()
    b.linear(3)
    b.softmax()
    b.output()
    return b.build()


class TestGraphBuilder:
    def test_conv_shape_propagation(self):
        b = GraphBuilder("g", (3, 32, 32))
        b.conv(16, 3, stride=2, padding=1)
        assert b.shape == (16, 16, 16)

    def test_conv_macs(self):
        b = GraphBuilder("g", (3, 8, 8))
        name = b.conv(4, 3, padding=1)
        node = b.graph.node(name)
        assert node.macs == 4 * 3 * 3 * 3 * 8 * 8
        assert node.param_count == 4 * 3 * 3 * 3

    def test_conv_too_large_kernel_rejected(self):
        b = GraphBuilder("g", (3, 4, 4))
        with pytest.raises(GraphError):
            b.conv(4, 9)

    def test_maxpool_shape(self):
        b = GraphBuilder("g", (3, 8, 8))
        b.maxpool(2, 2)
        assert b.shape == (3, 4, 4)

    def test_linear_requires_flat_input(self):
        b = GraphBuilder("g", (3, 8, 8))
        with pytest.raises(GraphError):
            b.linear(10)

    def test_linear_macs_and_params(self):
        b = GraphBuilder("g", (3, 8, 8))
        b.globalavgpool()
        name = b.linear(5)
        node = b.graph.node(name)
        assert node.macs == 3 * 5
        assert node.param_count == 3 * 5 + 5

    def test_add_requires_matching_shapes(self):
        b = GraphBuilder("g", (3, 8, 8))
        a = b.conv(4, 3, padding=1)
        c = b.conv(8, 3, padding=1, src="input")
        with pytest.raises(GraphError):
            b.add(a, c)

    def test_add_with_skip_connection(self):
        b = GraphBuilder("g", (4, 8, 8))
        entry = b.cursor
        body = b.conv(4, 3, padding=1)
        b.add(body, entry)
        assert b.shape == (4, 8, 8)

    def test_build_requires_output(self):
        b = GraphBuilder("g", (3, 8, 8))
        b.conv(4, 3)
        with pytest.raises(GraphError):
            b.build()


class TestGraphStructure:
    def test_duplicate_name_rejected(self):
        g = Graph("g", (3, 4, 4))
        g.add(Node("a", OpType.RELU, ["input"], (3, 4, 4)))
        with pytest.raises(GraphError):
            g.add(Node("a", OpType.RELU, ["input"], (3, 4, 4)))

    def test_unknown_input_rejected(self):
        g = Graph("g", (3, 4, 4))
        with pytest.raises(GraphError):
            g.add(Node("a", OpType.RELU, ["ghost"], (3, 4, 4)))

    def test_unknown_node_lookup(self):
        g = Graph("g", (3, 4, 4))
        with pytest.raises(GraphError):
            g.node("nope")

    def test_mark_output_validates_existence(self):
        g = Graph("g", (3, 4, 4))
        with pytest.raises(GraphError):
            g.mark_output("nope")

    def test_totals(self):
        g = small_graph()
        assert g.total_macs > 0
        assert g.total_weight_bytes == g.total_params * FP32_BYTES
        assert g.total_activation_elems > 0

    def test_count_ops(self):
        counts = small_graph().count_ops()
        assert counts["conv"] == 1
        assert counts["softmax"] == 1

    def test_iteration_order_is_topological(self):
        g = small_graph()
        seen = set()
        for node in g:
            assert all(src in seen for src in node.inputs)
            seen.add(node.name)


class TestSerialization:
    def test_round_trip(self):
        g = small_graph()
        g2 = Graph.from_json(g.to_json())
        assert g2.name == g.name
        assert g2.input_shape == g.input_shape
        assert g2.outputs == g.outputs
        assert len(g2) == len(g)
        assert g2.total_macs == g.total_macs
        assert g2.total_params == g.total_params

    def test_node_round_trip_preserves_attrs(self):
        g = small_graph()
        g2 = Graph.from_json(g.to_json())
        conv = next(n for n in g2 if n.op == OpType.CONV)
        assert conv.attrs["kernel"] == 3
        assert conv.attrs["padding"] == 1

    def test_rejects_bad_json(self):
        with pytest.raises(GraphError):
            Graph.from_json("not json{")

    def test_rejects_wrong_format(self):
        with pytest.raises(GraphError):
            Graph.from_json('{"format": "onnx/99", "name": "x"}')

    @given(st.integers(1, 4), st.integers(4, 16))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_property(self, channels, hw):
        b = GraphBuilder("p", (channels, hw, hw))
        b.conv(channels * 2, 3, padding=1)
        b.relu()
        b.globalavgpool()
        b.linear(3)
        b.output()
        g = b.build()
        g2 = Graph.from_json(g.to_json())
        assert [n.name for n in g2] == [n.name for n in g]
        assert g2.total_macs == g.total_macs


class TestNodeAccounting:
    def test_output_elems(self):
        node = Node("n", OpType.RELU, ["input"], (4, 5, 6))
        assert node.output_elems == 120
        assert node.output_bytes == 480

    def test_weight_bytes(self):
        node = Node("n", OpType.CONV, ["input"], (4, 5, 6), param_count=100)
        assert node.weight_bytes == 400
