"""Tests for the RoSE bridge hardware queues and control unit."""

from __future__ import annotations

import pytest

from repro.core import packets as pk
from repro.core.bridge import BridgeConfig, RoseBridge
from repro.errors import BridgeError


@pytest.fixture
def bridge():
    return RoseBridge()


class TestControlUnit:
    def test_set_steps(self, bridge):
        bridge.set_steps(10_000_000, 1)
        assert bridge.cycles_per_sync == 10_000_000
        assert bridge.frames_per_sync == 1

    def test_set_steps_rejects_non_positive(self, bridge):
        with pytest.raises(BridgeError):
            bridge.set_steps(0, 1)
        with pytest.raises(BridgeError):
            bridge.set_steps(100, 0)

    def test_grant_before_set_rejected(self, bridge):
        with pytest.raises(BridgeError):
            bridge.grant_step()

    def test_grant_returns_budget_and_counts(self, bridge):
        bridge.set_steps(5_000_000, 1)
        assert bridge.grant_step() == 5_000_000
        assert bridge.counters.steps_granted == 1


class TestRxQueue:
    def test_inject_and_pop(self, bridge):
        assert bridge.host_inject(pk.depth_response(3.0))
        assert bridge.target_rx_count() == 1
        packet = bridge.target_rx_pop()
        assert packet.values == (3.0,)
        assert bridge.target_rx_count() == 0

    def test_fifo_order(self, bridge):
        bridge.host_inject(pk.depth_response(1.0))
        bridge.host_inject(pk.depth_response(2.0))
        assert bridge.target_rx_pop().values == (1.0,)
        assert bridge.target_rx_pop().values == (2.0,)

    def test_pop_empty_underflows(self, bridge):
        with pytest.raises(BridgeError):
            bridge.target_rx_pop()

    def test_head_bytes(self, bridge):
        assert bridge.target_rx_head_bytes() == 0
        bridge.host_inject(pk.depth_response(1.0))
        assert bridge.target_rx_head_bytes() == 8

    def test_capacity_backpressure(self):
        bridge = RoseBridge(BridgeConfig(rx_capacity_bytes=20, tx_capacity_bytes=64))
        assert bridge.host_inject(pk.depth_response(1.0))  # 8 bytes
        assert bridge.host_inject(pk.depth_response(2.0))  # 16 bytes
        assert not bridge.host_inject(pk.depth_response(3.0))  # would exceed 20
        assert bridge.counters.rx_rejected == 1

    def test_space_freed_after_pop(self):
        bridge = RoseBridge(BridgeConfig(rx_capacity_bytes=16, tx_capacity_bytes=64))
        bridge.host_inject(pk.depth_response(1.0))
        bridge.host_inject(pk.depth_response(2.0))
        assert not bridge.host_inject(pk.depth_response(3.0))
        bridge.target_rx_pop()
        assert bridge.host_inject(pk.depth_response(3.0))

    def test_sync_packet_rejected_in_data_queue(self, bridge):
        with pytest.raises(BridgeError):
            bridge.host_inject(pk.sync_grant(1))

    def test_buffered_bytes_tracks(self, bridge):
        bridge.host_inject(pk.depth_response(1.0))
        assert bridge.rx_buffered_bytes == 8
        bridge.target_rx_pop()
        assert bridge.rx_buffered_bytes == 0


class TestTxQueue:
    def test_push_and_collect(self, bridge):
        bridge.target_tx_push(pk.camera_request())
        bridge.target_tx_push(pk.target_command(1, 0, 0, 1.5))
        collected = bridge.host_collect()
        assert [p.ptype for p in collected] == [
            pk.PacketType.CAMERA_REQ,
            pk.PacketType.TARGET_CMD,
        ]
        assert bridge.host_collect() == []

    def test_space_accounting(self, bridge):
        before = bridge.target_tx_space()
        bridge.target_tx_push(pk.target_command(1, 0, 0, 1.5))
        assert bridge.target_tx_space() == before - 32

    def test_overflow_raises(self):
        bridge = RoseBridge(BridgeConfig(rx_capacity_bytes=64, tx_capacity_bytes=8))
        with pytest.raises(BridgeError):
            bridge.target_tx_push(pk.target_command(1, 0, 0, 1.5))

    def test_sync_packet_rejected(self, bridge):
        with pytest.raises(BridgeError):
            bridge.target_tx_push(pk.sync_done(0, 1))

    def test_counters(self, bridge):
        bridge.target_tx_push(pk.camera_request())
        bridge.host_collect()
        bridge.host_inject(pk.depth_response(1.0))
        bridge.target_rx_pop()
        c = bridge.counters
        assert (c.tx_enqueued, c.tx_dequeued, c.rx_enqueued, c.rx_dequeued) == (1, 1, 1, 1)


def test_invalid_config():
    with pytest.raises(BridgeError):
        BridgeConfig(rx_capacity_bytes=0)
