"""Tests for the RoSE packet protocol, including round-trip properties."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import packets as pk
from repro.core.packets import (
    DataPacket,
    PacketType,
    decode_header,
    decode_packet,
    encode_packet,
)
from repro.errors import PacketError

finite = st.floats(allow_nan=False, allow_infinity=False, width=32).map(float)


class TestHeaders:
    def test_header_layout(self):
        wire = encode_packet(pk.imu_request())
        assert len(wire) == pk.HEADER_SIZE
        magic, ptype, flags, length = struct.unpack(pk.HEADER_FORMAT, wire)
        assert magic == pk.MAGIC
        assert ptype == PacketType.IMU_REQ
        assert length == 0

    def test_bad_magic_rejected(self):
        wire = bytearray(encode_packet(pk.imu_request()))
        wire[0] ^= 0xFF
        with pytest.raises(PacketError):
            decode_header(bytes(wire))

    def test_unknown_type_rejected(self):
        wire = struct.pack(pk.HEADER_FORMAT, pk.MAGIC, 0xEE, 0, 0)
        with pytest.raises(PacketError):
            decode_header(wire)

    def test_truncated_header_rejected(self):
        with pytest.raises(PacketError):
            decode_header(b"\x00\x01")

    def test_oversized_length_rejected(self):
        wire = struct.pack(pk.HEADER_FORMAT, pk.MAGIC, int(PacketType.IMU_REQ), 0, pk.MAX_PAYLOAD + 1)
        with pytest.raises(PacketError):
            decode_header(wire)

    def test_truncated_payload_rejected(self):
        wire = encode_packet(pk.depth_response(5.0))
        with pytest.raises(PacketError):
            decode_packet(wire[:-2])


class TestSyncDataSplit:
    def test_sync_types_flagged(self):
        assert PacketType.SYNC_GRANT.is_sync
        assert PacketType.SYNC_SET_STEPS.is_sync
        assert not PacketType.SYNC_GRANT.is_data

    def test_data_types_flagged(self):
        for ptype in (PacketType.CAMERA_REQ, PacketType.TARGET_CMD, PacketType.IMU_RESP):
            assert ptype.is_data
            assert not ptype.is_sync


class TestTypedRoundTrips:
    def test_sync_set_steps(self):
        packet = decode_packet(encode_packet(pk.sync_set_steps(10_000_000, 1)))
        assert packet.ptype == PacketType.SYNC_SET_STEPS
        assert packet.values == (10_000_000, 1)

    def test_sync_grant_and_done(self):
        grant = decode_packet(encode_packet(pk.sync_grant(7)))
        assert grant.values == (7,)
        done = decode_packet(encode_packet(pk.sync_done(7, 123456)))
        assert done.values == (7, 123456)

    def test_empty_payload_types(self):
        for ctor in (pk.imu_request, pk.camera_request, pk.depth_request, pk.state_request,
                     pk.sync_reset, pk.sync_shutdown):
            packet = decode_packet(encode_packet(ctor()))
            assert packet.values == ()
            assert packet.raw == b""

    @given(finite, finite, finite, finite, finite)
    @settings(max_examples=30)
    def test_imu_response_round_trip(self, ax, ay, az, gz, ts):
        packet = decode_packet(encode_packet(pk.imu_response(ax, ay, az, gz, ts)))
        assert packet.values == pytest.approx((ax, ay, az, gz, ts))

    @given(finite, finite, finite, finite)
    @settings(max_examples=30)
    def test_target_command_round_trip(self, vf, vl, yr, alt):
        packet = decode_packet(encode_packet(pk.target_command(vf, vl, yr, alt)))
        assert packet.values == pytest.approx((vf, vl, yr, alt))

    def test_state_response_round_trip(self):
        packet = decode_packet(
            encode_packet(pk.state_response(1, 2, 3, 0.5, 4, 5, 0.1, 9.0))
        )
        assert packet.values == pytest.approx((1, 2, 3, 0.5, 4, 5, 0.1, 9.0))

    def test_depth_response_round_trip(self):
        packet = decode_packet(encode_packet(pk.depth_response(12.5)))
        assert packet.values == (12.5,)


class TestCameraPackets:
    def test_round_trip_with_pixels(self):
        pixels = bytes(range(48)) * 4  # 8x24
        packet = pk.camera_response(8, 24, 1.5, 0.1, -0.4, 1.6, pixels)
        decoded = decode_packet(encode_packet(packet))
        assert decoded.ptype == PacketType.CAMERA_RESP
        assert decoded.values[:2] == (8, 24)
        assert decoded.values[2] == pytest.approx(1.5)
        assert decoded.values[4] == pytest.approx(-0.4)
        assert decoded.raw == pixels

    def test_wrong_pixel_count_rejected(self):
        with pytest.raises(PacketError):
            encode_packet(pk.camera_response(8, 24, 0.0, 0.0, 0.0, 1.6, b"123"))

    def test_truncated_camera_metadata_rejected(self):
        wire = struct.pack(
            pk.HEADER_FORMAT, pk.MAGIC, int(PacketType.CAMERA_RESP), 0, 4
        ) + b"\x00" * 4
        with pytest.raises(PacketError):
            decode_packet(wire)

    @given(st.integers(1, 16), st.integers(1, 16))
    @settings(max_examples=20)
    def test_camera_pixels_any_size(self, h, w):
        pixels = bytes((i % 251 for i in range(h * w)))
        decoded = decode_packet(
            encode_packet(pk.camera_response(h, w, 0.0, 0.0, 0.0, 1.6, pixels))
        )
        assert decoded.raw == pixels

    def test_payload_bytes_property(self):
        pixels = b"\x00" * 100
        packet = pk.camera_response(10, 10, 0.0, 0.0, 0.0, 1.6, pixels)
        assert packet.payload_bytes == pk.CAMERA_META_SIZE + 100


class TestEncodingErrors:
    def test_wrong_value_count_rejected(self):
        with pytest.raises(PacketError):
            encode_packet(DataPacket(PacketType.DEPTH_RESP, (1.0, 2.0)))

    def test_raw_payload_on_typed_packet_rejected(self):
        with pytest.raises(PacketError):
            encode_packet(DataPacket(PacketType.IMU_REQ, (), raw=b"junk"))

    def test_wrong_payload_size_on_decode(self):
        wire = struct.pack(
            pk.HEADER_FORMAT, pk.MAGIC, int(PacketType.DEPTH_RESP), 0, 4
        ) + b"\x00" * 4
        with pytest.raises(PacketError):
            decode_packet(wire)


# ---------------------------------------------------------------------------
# Property-based wire conformance (truncation, bit flips, CRC detection)
# ---------------------------------------------------------------------------
nonzero = finite.filter(lambda v: v != 0.0)

#: Any typed packet the protocol can put on the wire.  Float fields are
#: nonzero so every payload bit is significant (0.0 and -0.0 compare
#: equal, which would blur the corruption properties below).
any_packet = st.one_of(
    st.builds(pk.imu_response, nonzero, nonzero, nonzero, nonzero, nonzero),
    st.builds(pk.state_response, *([nonzero] * 8)),
    st.builds(pk.target_command, nonzero, nonzero, nonzero, nonzero),
    st.builds(pk.depth_response, nonzero),
    st.builds(pk.sync_grant, st.integers(0, 2**31 - 1)),
    st.builds(pk.sync_done, st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1)),
    st.builds(pk.sync_set_steps, st.integers(1, 2**31 - 1), st.integers(1, 1000)),
    st.builds(
        lambda h, w, ts, he, lo, hw: pk.camera_response(
            h, w, ts, he, lo, hw, bytes((i % 251 for i in range(h * w)))
        ),
        st.integers(1, 8),
        st.integers(1, 8),
        nonzero,
        nonzero,
        nonzero,
        nonzero,
    ),
)


class TestWireProperties:
    """Conformance properties of the framing layer itself."""

    @given(any_packet)
    @settings(max_examples=60)
    def test_encode_decode_round_trip(self, packet):
        decoded = decode_packet(encode_packet(packet))
        assert decoded.ptype == packet.ptype
        assert len(decoded.values) == len(packet.values)
        for want, got in zip(packet.values, decoded.values):
            assert got == pytest.approx(float(want))
        assert decoded.raw == packet.raw

    @given(any_packet, st.data())
    @settings(max_examples=60)
    def test_truncated_frame_always_rejected(self, packet, data):
        """Every proper prefix of a frame fails to decode — never
        misparses as a shorter valid packet."""
        wire = encode_packet(packet)
        cut = data.draw(st.integers(0, len(wire) - 1), label="cut")
        with pytest.raises(PacketError):
            decode_packet(wire[:cut])

    @given(any_packet, st.data())
    @settings(max_examples=100)
    def test_bit_flip_detected_or_faithful(self, packet, data):
        """A single flipped bit anywhere in the frame is either rejected
        (magic/type/CRC/length checks) or decodes to a packet that
        differs from the original — corruption never yields a silently
        identical decode."""
        wire = bytearray(encode_packet(packet))
        bit = data.draw(st.integers(0, len(wire) * 8 - 1), label="bit")
        wire[bit // 8] ^= 1 << (bit % 8)
        try:
            decoded = decode_packet(bytes(wire))
        except PacketError:
            return
        assert (
            decoded.ptype != packet.ptype
            or decoded.values != packet.values
            or decoded.raw != packet.raw
        )

    @given(any_packet, st.integers(0, 7))
    @settings(max_examples=40)
    def test_crc_byte_flip_always_rejected(self, packet, bit):
        """The stored CRC no longer matches the (unchanged) payload."""
        wire = bytearray(encode_packet(packet))
        wire[3] ^= 1 << bit  # byte 3 is the header CRC field
        with pytest.raises(PacketError):
            decode_packet(bytes(wire))

    @given(any_packet, st.data())
    @settings(max_examples=60)
    def test_payload_flip_changes_decode_or_rejects(self, packet, data):
        """Flips strictly inside the payload: CRC-8 catches most; any
        collision must still decode to *different* content."""
        wire = bytearray(encode_packet(packet))
        if len(wire) == pk.HEADER_SIZE:
            return  # no payload to corrupt
        byte = data.draw(
            st.integers(pk.HEADER_SIZE, len(wire) - 1), label="byte"
        )
        wire[byte] ^= 1 << data.draw(st.integers(0, 7), label="bit")
        try:
            decoded = decode_packet(bytes(wire))
        except PacketError:
            return
        assert decoded.values != packet.values or decoded.raw != packet.raw

    @given(any_packet)
    @settings(max_examples=30)
    def test_crc_is_deterministic_per_frame(self, packet):
        assert encode_packet(packet) == encode_packet(packet)
