"""Tests for the runtime invariant checker (repro.core.invariants)."""

from __future__ import annotations

import pytest

from repro.core.config import CoSimConfig, SyncConfig
from repro.core.cosim import CoSimulation, run_mission
from repro.core.faults import FaultPlan
from repro.core.invariants import InvariantChecker, invariants_enabled
from repro.errors import InvariantViolation
from repro.sweep import mission_signature


def _tiny_config(**overrides) -> CoSimConfig:
    base = dict(world="tunnel", model="resnet6", max_sim_time=1.0)
    base.update(overrides)
    return CoSimConfig(**base)


SYNC = SyncConfig()


class TestEnablement:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert not invariants_enabled(_tiny_config(check_invariants=False))
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
        assert invariants_enabled(_tiny_config(check_invariants=True))

    def test_env_var_resolves_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
        assert not invariants_enabled(_tiny_config())
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "yes")
        assert invariants_enabled(_tiny_config())

    def test_on_by_default_under_pytest(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        # PYTEST_CURRENT_TEST is set by pytest itself right now.
        assert invariants_enabled(_tiny_config())

    def test_off_outside_pytest(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        assert not invariants_enabled(_tiny_config())

    def test_bad_flag_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            CoSimConfig(check_invariants="yes")  # type: ignore[arg-type]

    def test_cosim_wires_checker_when_enabled(self):
        sim = CoSimulation(_tiny_config(check_invariants=True))
        assert sim.invariants is not None
        assert sim.soc.bridge.invariants is sim.invariants

    def test_cosim_skips_checker_when_disabled(self):
        sim = CoSimulation(_tiny_config(check_invariants=False))
        assert sim.invariants is None
        assert sim.soc.bridge.invariants is None


class TestEndToEnd:
    def test_clean_mission_checks_every_step(self):
        sim = CoSimulation(_tiny_config(check_invariants=True))
        result = sim.run()
        report = sim.invariants.report
        assert report.steps_checked == result.sync_stats.steps
        assert report.steps_checked > 0
        assert report.dones_seen == report.steps_checked
        assert report.bridge_checks == report.steps_checked
        assert report.link_checks == report.steps_checked

    def test_checking_is_observational(self):
        """A passing mission is bit-identical with the checker on or off."""
        on = run_mission(_tiny_config(check_invariants=True, seed=5))
        off = run_mission(_tiny_config(check_invariants=False, seed=5))
        # check_invariants is part of the config (and cache key), but the
        # *behaviour* it observes must not change.
        assert mission_signature(on) == mission_signature(off)

    def test_faulty_mission_passes_checks(self):
        plan = FaultPlan(
            seed=3,
            rules=(
                {"ptype": "CAMERA_RESP", "corrupt": 0.2, "duplicate": 0.1},
                {"ptype": "IMU_RESP", "drop": 0.1, "delay": 0.2},
            ),
        )
        sim = CoSimulation(_tiny_config(check_invariants=True, faults=plan))
        sim.run()
        assert sim.invariants.report.steps_checked > 0
        assert sim.invariants.report.injector_steps > 0


class TestViolationsRaise:
    """Corrupt each watched piece of state; the checker must catch it."""

    def _run_checked(self, **overrides) -> CoSimulation:
        sim = CoSimulation(_tiny_config(check_invariants=True, **overrides))
        sim.run()
        return sim

    def test_grant_for_completed_step(self):
        checker = InvariantChecker(SYNC)
        checker.on_grant(0)
        checker.on_done(0)
        checker.after_step(0, SYNC.sync_period_seconds)
        with pytest.raises(InvariantViolation, match="grant-pairing"):
            checker.on_grant(0)

    def test_done_without_grant(self):
        checker = InvariantChecker(SYNC)
        with pytest.raises(InvariantViolation, match="without a matching grant"):
            checker.on_done(4)

    def test_stale_done_for_uncompleted_step(self):
        checker = InvariantChecker(SYNC)
        with pytest.raises(InvariantViolation, match="classified stale"):
            checker.on_done(2, stale=True)

    def test_sim_time_must_advance_exactly_one_period(self):
        checker = InvariantChecker(SYNC)
        checker.on_grant(0)
        checker.on_done(0)
        with pytest.raises(InvariantViolation, match="monotonic-sim-time"):
            checker.after_step(0, 2.5 * SYNC.sync_period_seconds)

    def test_step_without_done(self):
        checker = InvariantChecker(SYNC)
        checker.on_grant(0)
        with pytest.raises(InvariantViolation, match="without its SYNC_DONE"):
            checker.after_step(0, SYNC.sync_period_seconds)

    def test_soc_cycle_drift_detected(self):
        sim = CoSimulation(_tiny_config(check_invariants=True))
        sim.soc.cycle += 1  # steal one cycle beyond the granted budget
        with pytest.raises(InvariantViolation, match="token-conservation"):
            sim.run()

    def test_bridge_counter_drift_detected(self):
        sim = CoSimulation(_tiny_config(check_invariants=True))
        sim.soc.bridge.counters.rx_enqueued += 3
        with pytest.raises(InvariantViolation, match="token-conservation"):
            sim.run()

    def test_unexplained_crc_discard_detected(self):
        checker = InvariantChecker(SYNC)

        class FakeTransport:
            corrupt_packets = 2

        checker.watch(transports=(FakeTransport(),), injector=None)
        with pytest.raises(InvariantViolation, match="crc-accounting"):
            checker.check_link()

    def test_crc_discards_bounded_by_injector(self):
        checker = InvariantChecker(SYNC)

        class FakeTransport:
            corrupt_packets = 5

        class FakeInjector:
            class counters:
                corrupted = 1
                duplicated = 1

        checker.watch(transports=(FakeTransport(),), injector=FakeInjector())
        with pytest.raises(InvariantViolation, match="crc-accounting"):
            checker.check_link()

    def test_injector_step_monotonic(self):
        checker = InvariantChecker(SYNC)
        checker.on_injector_step(0, 3)
        with pytest.raises(InvariantViolation, match="injector-monotonic"):
            checker.on_injector_step(3, 1)

    def test_duplicate_done_for_current_step_is_benign(self):
        checker = InvariantChecker(SYNC)
        checker.on_grant(0)
        checker.on_done(0)
        checker.on_done(0)  # injected duplication of the same SYNC_DONE
        assert checker.report.stale_dones_seen == 1
        checker.after_step(0, SYNC.sync_period_seconds)

    def test_report_as_dict(self):
        checker = InvariantChecker(SYNC)
        checker.on_grant(0)
        checker.on_done(0)
        checker.after_step(0, SYNC.sync_period_seconds)
        counts = checker.report.as_dict()
        assert counts["steps_checked"] == 1
        assert counts["grants_seen"] == 1
        assert counts["dones_seen"] == 1
