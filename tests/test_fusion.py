"""Tests for the sensor-fusion network and its rate-decoupled controller."""

from __future__ import annotations

import pytest

from repro import CoSimConfig, run_mission
from repro.app.fusion import FusionConfig, FusionStats
from repro.dnn.fusion import (
    CAMERA_FEATURE_DIM,
    IMU_CHANNELS,
    IMU_FEATURE_DIM,
    IMU_WINDOW,
    FusionSessions,
    build_camera_backbone,
    build_fusion_head,
    build_imu_backbone,
)
from repro.dnn.graph import OpType
from repro.errors import ConfigError, GraphError
from repro.soc.cpu import boom_core
from repro.soc.gemmini import default_gemmini


class TestFusionGraphs:
    def test_camera_backbone_feature_output(self):
        graph = build_camera_backbone("resnet6")
        out = graph.node(graph.outputs[0])
        assert graph.node("camera_features").output_shape == (CAMERA_FEATURE_DIM,)
        assert out.op == OpType.RELU

    def test_camera_backbone_scales_with_variant(self):
        small = build_camera_backbone("resnet6")
        large = build_camera_backbone("resnet14")
        assert large.total_macs > small.total_macs

    def test_imu_backbone_shapes(self):
        graph = build_imu_backbone()
        assert graph.input_shape == (IMU_WINDOW * IMU_CHANNELS,)
        assert graph.node("imu_features").output_shape == (IMU_FEATURE_DIM,)

    def test_imu_backbone_validates_hidden(self):
        with pytest.raises(GraphError):
            build_imu_backbone(hidden=0)

    def test_head_dual_outputs(self):
        graph = build_fusion_head()
        assert graph.outputs == ["angular_probs", "lateral_probs"]
        assert graph.input_shape == (CAMERA_FEATURE_DIM + IMU_FEATURE_DIM,)

    def test_imu_branch_orders_of_magnitude_cheaper(self):
        camera = build_camera_backbone("resnet6")
        imu = build_imu_backbone()
        assert camera.total_macs > 100 * imu.total_macs


class TestFusionSessions:
    @pytest.fixture(scope="class")
    def sessions(self):
        return FusionSessions(boom_core(), default_gemmini(), camera_variant="resnet6")

    def test_branch_costs_ordered(self, sessions):
        costs = sessions.costs
        assert costs.imu_report.total_cycles < costs.camera_report.total_cycles / 10
        assert costs.head_report.total_cycles < costs.camera_report.total_cycles / 10

    def test_only_camera_pays_session_fixed(self, sessions):
        costs = sessions.costs
        assert costs.camera_report.session_fixed_cycles > 0
        assert costs.imu_report.session_fixed_cycles == 0
        assert costs.head_report.session_fixed_cycles == 0

    def test_path_cycles(self, sessions):
        costs = sessions.costs
        assert costs.camera_path_cycles == (
            costs.camera_report.total_cycles + costs.head_report.total_cycles
        )
        assert costs.imu_path_cycles < costs.camera_path_cycles


class TestFusionConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FusionConfig(imu_rate_hz=0.0)
        with pytest.raises(ConfigError):
            FusionConfig(camera_every=0)

    def test_cosim_config_validation(self):
        with pytest.raises(ConfigError):
            CoSimConfig(fusion_camera_every=0)
        with pytest.raises(ConfigError):
            CoSimConfig(controller="fusion", dynamic_runtime=True)

    def test_stats_rate_fraction(self):
        stats = FusionStats(imu_branch_runs=100, camera_branch_runs=10)
        assert stats.camera_rate_fraction == pytest.approx(0.1)
        assert FusionStats().camera_rate_fraction == 0.0


class TestFusionClosedLoop:
    @pytest.fixture(scope="class")
    def mission(self):
        return run_mission(
            CoSimConfig(
                world="tunnel",
                controller="fusion",
                model="resnet6",
                target_velocity=3.0,
                initial_angle_deg=20.0,
                max_sim_time=40.0,
            )
        )

    def test_completes(self, mission):
        assert mission.completed
        assert mission.collisions == 0

    def test_branches_ran_at_different_rates(self, mission):
        stats = mission.fusion_stats
        assert stats.imu_branch_runs > 5 * stats.camera_branch_runs
        assert stats.head_runs == stats.imu_branch_runs
        assert stats.camera_rate_fraction == pytest.approx(0.1, abs=0.03)

    def test_lower_activity_than_camera_only(self, mission):
        camera_only = run_mission(
            CoSimConfig(
                world="tunnel",
                controller="dnn",
                model="resnet6",
                target_velocity=3.0,
                initial_angle_deg=20.0,
                max_sim_time=40.0,
            )
        )
        assert mission.activity_factor < camera_only.activity_factor

    def test_camera_rate_knob(self):
        frequent = run_mission(
            CoSimConfig(
                world="tunnel",
                controller="fusion",
                model="resnet6",
                target_velocity=3.0,
                fusion_camera_every=2,
                max_sim_time=10.0,
            )
        )
        rare = run_mission(
            CoSimConfig(
                world="tunnel",
                controller="fusion",
                model="resnet6",
                target_velocity=3.0,
                fusion_camera_every=20,
                max_sim_time=10.0,
            )
        )
        assert frequent.fusion_stats.camera_branch_runs > 3 * rare.fusion_stats.camera_branch_runs
        assert frequent.activity_factor > rare.activity_factor
