"""Batched mission engine: edge-case correctness.

Everything here pins bit-identity between the lockstep engine and the
serial runner on the paths the throughput benchmark does not exercise:
single-lane batches, ragged termination, ineligible-lane fallback, and
cache-entry sharing through the sweep runner.
"""

from __future__ import annotations

import pytest

from repro.batch import (
    batch_eligible,
    batch_group_key,
    run_batch,
    run_missions_batched,
)
from repro.core.config import CoSimConfig
from repro.core.cosim import run_mission
from repro.core.faults import FaultPlan
from repro.sweep import ResultCache, SweepRunner, mission_signature


def _cfg(**overrides) -> CoSimConfig:
    base = dict(
        world="tunnel",
        soc="A",
        model="resnet6",
        max_sim_time=1.0,
        check_invariants=True,
    )
    base.update(overrides)
    return CoSimConfig(**base)


class TestEligibility:
    def test_default_dnn_quadrotor_is_eligible(self):
        eligible, reason = batch_eligible(_cfg())
        assert eligible and reason == ""

    @pytest.mark.parametrize(
        "overrides",
        [
            {"controller": "mpc"},
            {"vehicle": "car"},
            {"faults": FaultPlan()},
            {"transport": "tcp"},
        ],
        ids=["mpc", "car", "faults", "tcp"],
    )
    def test_unvectorized_features_are_ineligible(self, overrides):
        eligible, reason = batch_eligible(_cfg(**overrides))
        assert not eligible and reason

    def test_group_key_ignores_per_lane_fields(self):
        # Seed, model and mission length vary per lane within a group.
        key = batch_group_key(_cfg())
        assert batch_group_key(_cfg(seed=7, model="resnet18", max_sim_time=2.0)) == key

    def test_group_key_splits_on_world(self):
        assert batch_group_key(_cfg()) != batch_group_key(_cfg(world="s-shape"))


class TestBatchBitIdentity:
    def test_batch_of_one_equals_serial(self):
        config = _cfg(seed=3)
        serial = run_mission(config)
        (batched,) = run_batch([config])
        assert mission_signature(batched) == mission_signature(serial)

    def test_ragged_termination_matches_serial(self):
        # The middle lane exits earliest; the survivors must advance
        # exactly as if the finished lane had never shared their batch.
        configs = [
            _cfg(seed=0, max_sim_time=1.0),
            _cfg(seed=1, max_sim_time=0.4),
            _cfg(seed=2, max_sim_time=1.2),
        ]
        serial = [mission_signature(run_mission(c)) for c in configs]
        batched = [mission_signature(r) for r in run_batch(configs)]
        assert batched == serial

    def test_mid_batch_fault_plan_runs_serial(self):
        # An ineligible (fault-injected) config between two eligible ones:
        # it must route through the serial runner, the rest still batch,
        # and the result order must follow the input order.
        configs = [
            _cfg(seed=0),
            _cfg(seed=1, faults=FaultPlan()),
            _cfg(seed=2),
        ]
        assert not batch_eligible(configs[1])[0]
        serial = [mission_signature(run_mission(c)) for c in configs]
        batched = [mission_signature(r) for r in run_missions_batched(configs)]
        assert batched == serial

    def test_mixed_models_match_serial(self):
        configs = [_cfg(seed=0, model="resnet6"), _cfg(seed=1, model="resnet11")]
        serial = [mission_signature(run_mission(c)) for c in configs]
        batched = [mission_signature(r) for r in run_batch(configs)]
        assert batched == serial


class TestSweepIntegration:
    def test_batched_sweep_shares_cache_with_serial(self, tmp_path):
        # Cold batched sweep populates the cache; a serial re-run must hit
        # every entry — batching cannot leak into the cache key.
        configs = [_cfg(seed=s) for s in range(3)]
        cold = SweepRunner(
            workers=1, cache=ResultCache(tmp_path), batch_size=4
        ).run(configs)
        assert cold.batched_missions == len(configs)
        assert cold.batch_chunks == 1

        warm = SweepRunner(workers=1, cache=ResultCache(tmp_path)).run(configs)
        assert all(outcome.from_cache for outcome in warm.outcomes)
        assert [mission_signature(r) for r in warm.results()] == [
            mission_signature(r) for r in cold.results()
        ]

    def test_single_lane_chunks_stay_serial(self, tmp_path):
        # A group of one never pays batch-engine setup under the runner.
        report = SweepRunner(
            workers=1, cache=ResultCache(tmp_path), batch_size=8
        ).run([_cfg(seed=0)])
        assert report.batched_missions == 0
        assert report.batch_chunks == 0
        serial = run_mission(_cfg(seed=0))
        assert mission_signature(report.results()[0]) == mission_signature(serial)
