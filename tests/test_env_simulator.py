"""Tests for the frame-stepped environment simulator and its RPC facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.flightctl import VelocityTarget
from repro.env.rpc import RpcClient, RpcServer
from repro.env.simulator import EnvConfig, EnvSimulator
from repro.errors import SimulationError


class TestEnvConfig:
    def test_frame_dt(self):
        assert EnvConfig(frame_rate=60.0).frame_dt == pytest.approx(1 / 60)

    def test_rejects_bad_frame_rate(self):
        with pytest.raises(SimulationError):
            EnvConfig(frame_rate=0.0)


class TestStepping:
    def test_time_only_advances_when_stepped(self, env_sim):
        assert env_sim.sim_time == 0.0
        env_sim.continue_for_frames(6)
        assert env_sim.sim_time == pytest.approx(0.1)
        # No free-running: time unchanged until the next grant.
        assert env_sim.sim_time == pytest.approx(0.1)

    def test_negative_frames_rejected(self, env_sim):
        with pytest.raises(SimulationError):
            env_sim.continue_for_frames(-1)

    def test_zero_frames_is_noop(self, env_sim):
        env_sim.continue_for_frames(0)
        assert env_sim.frame == 0

    def test_trajectory_recorded_per_frame(self, env_sim):
        env_sim.continue_for_frames(10)
        assert len(env_sim.trajectory) == 11  # initial sample + 10 frames

    def test_grounded_without_takeoff(self, env_sim):
        env_sim.send_velocity_target(VelocityTarget(v_forward=5.0))
        env_sim.continue_for_frames(60)
        assert env_sim.get_state().speed < 0.01  # controller not armed

    def test_takeoff_climbs(self, env_sim):
        env_sim.takeoff()
        env_sim.continue_for_frames(180)
        assert env_sim.get_state().z > 0.5

    def test_flies_forward_after_target(self, env_sim):
        env_sim.takeoff()
        env_sim.send_velocity_target(VelocityTarget(v_forward=3.0, altitude=1.5))
        env_sim.continue_for_frames(60 * 5)
        assert env_sim.get_state().x > 8.0

    def test_mission_completion(self):
        sim = EnvSimulator(EnvConfig(world="tunnel"))
        sim.takeoff()
        sim.send_velocity_target(VelocityTarget(v_forward=10.0, altitude=1.5))
        sim.continue_for_frames(60 * 12)
        assert sim.mission_complete
        assert sim.mission_time is not None
        assert 0 < sim.mission_time <= sim.sim_time
        assert sim.course_progress == 1.0

    def test_reset_restores_initial_conditions(self, env_sim):
        env_sim.takeoff()
        env_sim.send_velocity_target(VelocityTarget(v_forward=3.0))
        env_sim.continue_for_frames(120)
        env_sim.reset()
        assert env_sim.sim_time == 0.0
        assert env_sim.frame == 0
        assert env_sim.collision_count == 0
        assert not env_sim.mission_complete
        assert len(env_sim.trajectory) == 1

    def test_initial_angle_config(self):
        sim = EnvSimulator(EnvConfig(world="tunnel", initial_angle_deg=20.0))
        _, _, heading_error = sim.course_state()
        assert heading_error == pytest.approx(np.deg2rad(20.0), abs=1e-6)

    def test_course_state_tracks_offset(self):
        sim = EnvSimulator(EnvConfig(world="tunnel", initial_lateral_offset=0.5))
        _, d, _ = sim.course_state()
        assert d == pytest.approx(0.5, abs=1e-6)


class TestSensorsApi:
    def test_camera_image(self, env_sim):
        image = env_sim.get_camera_image()
        assert image.shape == (env_sim.config.camera.height, env_sim.config.camera.width)

    def test_imu_reading(self, env_sim):
        reading = env_sim.get_imu()
        assert reading.timestamp == env_sim.sim_time

    def test_depth_positive(self, env_sim):
        assert env_sim.get_depth() > 0.0


class TestRpc:
    @pytest.fixture
    def client(self, env_sim):
        return RpcClient(RpcServer(env_sim))

    def test_ping(self, client):
        assert client.ping()

    def test_unknown_method(self, env_sim):
        server = RpcServer(env_sim)
        with pytest.raises(SimulationError):
            server.call("format_disk")

    def test_unserializable_args_rejected(self, env_sim):
        server = RpcServer(env_sim)
        with pytest.raises(SimulationError):
            server.call("continue_for_frames", object())

    def test_methods_listing(self, env_sim):
        server = RpcServer(env_sim)
        assert "get_camera_image" in server.methods
        assert "send_velocity_target" in server.methods

    def test_full_flight_via_rpc(self, client):
        client.takeoff()
        client.send_velocity_target(3.0, 0.0, 0.0, 1.5)
        client.continue_for_frames(60 * 3)
        state = client.get_state()
        assert state["x"] > 4.0
        assert client.get_sim_time() == pytest.approx(3.0)
        assert client.get_collision_count() == 0
        assert not client.mission_complete()
        assert client.get_mission_time() is None

    def test_camera_payload(self, client):
        image = client.get_camera_image()
        assert image["height"] * image["width"] == len(image["pixels"])
        assert "heading_error" in image
        assert image["half_width"] == pytest.approx(1.6)

    def test_course_state_rpc(self, client):
        course = client.get_course_state()
        assert set(course) == {"s", "d", "heading_error"}

    def test_stats_counted(self, env_sim):
        server = RpcServer(env_sim)
        client = RpcClient(server)
        client.ping()
        client.get_depth()
        assert server.stats.calls == 2
        assert server.stats.bytes_in > 0

    def test_reset_rpc(self, client):
        client.takeoff()
        client.send_velocity_target(3.0, 0.0, 0.0, 1.5)
        client.continue_for_frames(60)
        client.reset()
        assert client.get_sim_time() == 0.0
