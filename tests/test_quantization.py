"""Tests for INT8 Gemmini support and quantized classifier profiles."""

from __future__ import annotations

import pytest

from repro import CoSimConfig
from repro.dnn.calibrated import classifier_profile
from repro.dnn.resnet import build_resnet_graph
from repro.dnn.runtime import InferenceSession
from repro.errors import ConfigError, SchedulingError
from repro.soc.cpu import boom_core
from repro.soc.gemmini import GemminiModel, default_gemmini, int8_gemmini
from repro.soc.soc import CONFIG_A, Soc
import dataclasses


class TestGemminiDtype:
    def test_default_is_paper_fp32(self):
        g = default_gemmini()
        assert g.dtype == "fp32"
        assert g.element_bytes == 4
        assert (g.mesh_rows, g.mesh_cols) == (4, 4)

    def test_int8_native_mesh(self):
        g = int8_gemmini()
        assert g.dtype == "int8"
        assert g.element_bytes == 1
        assert (g.mesh_rows, g.mesh_cols) == (16, 16)
        assert g.peak_macs_per_cycle == 256

    def test_explicit_mesh_overrides_default(self):
        g = GemminiModel(mesh_rows=8, mesh_cols=8, dtype="int8")
        assert (g.mesh_rows, g.mesh_cols) == (8, 8)

    def test_unknown_dtype_rejected(self):
        with pytest.raises(SchedulingError):
            GemminiModel(dtype="fp16")

    def test_int8_weights_stream_fewer_bytes(self):
        fp32 = default_gemmini().gemm_cost(m=256, k=512, n=512)
        int8 = int8_gemmini().gemm_cost(m=256, k=512, n=512)
        assert int8.dma_cycles < fp32.dma_cycles
        assert int8.compute_cycles < fp32.compute_cycles

    def test_int8_speeds_up_every_variant(self):
        for name in ("resnet6", "resnet34"):
            graph = build_resnet_graph(name)
            fp32 = InferenceSession(graph, boom_core(), default_gemmini())
            int8 = InferenceSession(graph, boom_core(), int8_gemmini())
            assert int8.report.total_cycles < fp32.report.total_cycles

    def test_soc_config_dtype_plumbing(self):
        config = dataclasses.replace(CONFIG_A, gemmini_dtype="int8")
        soc = Soc(config)
        assert soc.gemmini.dtype == "int8"
        assert "int8" in config.description


class TestQuantizedProfiles:
    def test_quantized_loses_accuracy(self):
        fp32 = classifier_profile("resnet14")
        int8 = classifier_profile("resnet14", quantized=True)
        assert int8.validation_accuracy == pytest.approx(
            fp32.validation_accuracy - 0.02
        )
        assert int8.temperature > fp32.temperature
        assert int8.sigma > fp32.sigma
        assert int8.name.endswith("-int8")

    def test_quantized_cached_separately(self):
        assert classifier_profile("resnet6") is not classifier_profile(
            "resnet6", quantized=True
        )
        assert classifier_profile("resnet6", quantized=True) is classifier_profile(
            "resnet6", quantized=True
        )


class TestCoSimDtypeConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CoSimConfig(gemmini_dtype="bf16")

    def test_cosim_builds_int8_soc(self):
        from repro.core.cosim import CoSimulation

        cosim = CoSimulation(CoSimConfig(gemmini_dtype="int8", max_sim_time=5.0))
        assert cosim.soc.gemmini.dtype == "int8"
