"""Tests for the differential oracles (repro.verify.oracles).

The acceptance criterion for the conformance subsystem: perturbing any
optimized kernel must make the *matching* oracle fail with a
first-divergence report naming the layer/site and element — so each
perturbation test here monkeypatches one optimized code path and asserts
the oracle catches it by name.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn import layers as opt
from repro.verify import DiffRunner, array_divergence, registered_oracles
from repro.verify.oracles import (
    _oracle_dnn_backward,
    _oracle_dnn_forward,
    _oracle_im2col_col2im,
)

KERNEL_ORACLES = ("im2col-col2im", "dnn-forward", "dnn-backward")
SYSTEM_ORACLES = (
    "sweep-parallel",
    "batch-vs-serial",
    "batch-cnn-forward",
    "sweep-chaos",
    "service-vs-serial",
    "transport-tcp",
    "fault-noop",
    "cache-roundtrip",
)


class TestRegistry:
    def test_all_expected_oracles_registered(self):
        names = set(registered_oracles())
        assert set(KERNEL_ORACLES) <= names
        assert set(SYSTEM_ORACLES) <= names

    def test_unknown_oracle_rejected(self):
        with pytest.raises(KeyError, match="no-such-oracle"):
            DiffRunner(names=["no-such-oracle"])

    def test_name_filter(self):
        runner = DiffRunner(names=["dnn-forward"])
        assert [o.name for o in runner.oracles] == ["dnn-forward"]


class TestKernelOraclesAgree:
    """With unmodified kernels, every oracle reports zero divergences."""

    def test_im2col_col2im(self):
        assert _oracle_im2col_col2im() == []

    def test_dnn_forward(self):
        assert _oracle_dnn_forward() == []

    def test_dnn_backward(self):
        assert _oracle_dnn_backward() == []


class TestPerturbedKernelsCaught:
    """Flip an optimized kernel to perturbed output; the oracle must fail."""

    def test_perturbed_im2col_caught(self, monkeypatch):
        real = opt.im2col

        def perturbed(x, kh, kw, stride, pad):
            cols, oh, ow = real(x, kh, kw, stride, pad)
            cols = cols.copy()
            cols[0, 0] += 1.0
            return cols, oh, ow

        monkeypatch.setattr(opt, "im2col", perturbed)
        divergences = _oracle_im2col_col2im()
        assert divergences
        first = divergences[0]
        assert first.site == "im2col-col2im"
        assert first.layer.startswith("im2col[")
        assert "element" in first.field

    def test_perturbed_col2im_caught(self, monkeypatch):
        real = opt.col2im

        def perturbed(cols, x_shape, kh, kw, stride, pad, oh, ow):
            out = real(cols, x_shape, kh, kw, stride, pad, oh, ow)
            out[0, 0, 0, 0] += 0.5
            return out

        monkeypatch.setattr(opt, "col2im", perturbed)
        divergences = _oracle_im2col_col2im()
        assert divergences
        first = divergences[0]
        assert first.layer.startswith("col2im[")
        assert first.field == "element[0, 0, 0, 0]"

    def test_perturbed_conv_forward_caught(self, monkeypatch):
        real = opt.Conv2d.forward

        def perturbed(self, x):
            out = real(self, x)
            out[..., 0, 0] *= 1.001  # outside RTOL, inside eyeballing range
            return out

        monkeypatch.setattr(opt.Conv2d, "forward", perturbed)
        divergences = _oracle_dnn_forward()
        assert divergences
        assert divergences[0].layer in ("conv3x3", "conv-s2")
        assert "element" in divergences[0].field

    def test_perturbed_maxpool_backward_caught(self, monkeypatch):
        real = opt.MaxPool2d.backward

        def perturbed(self, grad):
            dx = real(self, grad)
            dx[0, 0, 0, 0] += 1.0
            return dx

        monkeypatch.setattr(opt.MaxPool2d, "backward", perturbed)
        divergences = _oracle_dnn_backward()
        assert any(d.layer == "maxpool2.dx" for d in divergences)

    def test_crashing_oracle_isolated(self, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(opt, "im2col", explode)
        report = DiffRunner(names=["im2col-col2im"]).run()
        assert not report.ok
        assert "kernel exploded" in report.outcomes[0].error


class TestArrayDivergence:
    def test_equal_arrays_pass(self):
        x = np.arange(12.0).reshape(3, 4)
        assert array_divergence("t", x, x.copy(), exact=True) is None

    def test_first_element_reported(self):
        want = np.zeros((2, 3))
        got = want.copy()
        got[1, 2] = 7.0
        got[0, 1] = 5.0
        hit = array_divergence("t", want, got, exact=True)
        assert hit.field == "element[0, 1]"  # row-major first
        assert hit.expected == 0.0
        assert hit.actual == 5.0

    def test_shape_mismatch_reported(self):
        hit = array_divergence("t", np.zeros((2, 2)), np.zeros((2, 3)))
        assert hit.field == "shape"

    def test_tolerance_mode_ignores_reassociation_noise(self):
        want = np.ones(4, dtype=np.float32)
        got = want + np.float32(1e-7)
        assert array_divergence("t", want, got) is None
        assert array_divergence("t", want, got, exact=True) is not None

    def test_layer_and_step_carried_through(self):
        hit = array_divergence(
            "site", np.zeros(1), np.ones(1), layer="conv1", step=9
        )
        assert hit.layer == "conv1"
        assert hit.step == 9
        assert "layer conv1" in hit.describe()
        assert "step 9" in hit.describe()


class TestSystemOracles:
    """The mission-level oracles agree on the current implementation."""

    @pytest.mark.parametrize("name", SYSTEM_ORACLES)
    def test_oracle_agrees(self, name):
        report = DiffRunner(names=[name]).run()
        assert report.ok, "\n" + report.describe()
