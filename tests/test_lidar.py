"""Tests for the lidar sensor, its packets, and its RPC/synchronizer path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import packets as pk
from repro.core.packets import PacketType, decode_packet, encode_packet
from repro.env.rpc import RpcClient, RpcServer
from repro.env.sensors import Lidar, LidarParams
from repro.env.simulator import EnvConfig, EnvSimulator
from repro.errors import PacketError


class TestLidarSensor:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            LidarParams(beams=1)
        with pytest.raises(ValueError):
            LidarParams(fov_rad=10.0)

    def test_scan_shape(self, env_sim):
        scan = env_sim.get_lidar()
        assert scan.ranges.shape == (64,)
        assert scan.ranges.dtype == np.float32
        assert scan.beams == 64
        assert scan.timestamp == env_sim.sim_time

    def test_beam_angles_span_fov(self, env_sim):
        scan = env_sim.get_lidar()
        angles = scan.beam_angles()
        assert angles[0] == pytest.approx(-scan.fov_rad / 2)
        assert angles[-1] == pytest.approx(scan.fov_rad / 2)

    def test_ranges_in_bounds(self, env_sim):
        scan = env_sim.get_lidar()
        assert (scan.ranges >= 0).all()
        assert (scan.ranges <= 30.0 + 1e-6).all()

    def test_side_beams_see_walls(self, env_sim):
        """In the tunnel, the perpendicular beams read ~the half width."""
        params = LidarParams(noise_std=0.0, fov_rad=np.pi)  # +/-90 degrees
        lidar = Lidar(params, seed=1)
        scan = lidar.scan(env_sim.world, env_sim.dynamics)
        # First and last beams point at the walls 1.6 m away.
        assert scan.ranges[0] == pytest.approx(1.6, abs=0.05)
        assert scan.ranges[-1] == pytest.approx(1.6, abs=0.05)

    def test_seeded_determinism(self, env_sim):
        a = Lidar(seed=5).scan(env_sim.world, env_sim.dynamics)
        b = Lidar(seed=5).scan(env_sim.world, env_sim.dynamics)
        np.testing.assert_array_equal(a.ranges, b.ranges)


class TestLidarPackets:
    def test_round_trip(self):
        ranges = np.arange(16, dtype=np.float32)
        packet = pk.lidar_response(4.71, 2.5, ranges.tobytes())
        decoded = decode_packet(encode_packet(packet))
        assert decoded.ptype == PacketType.LIDAR_RESP
        assert decoded.values[0] == 16
        assert decoded.values[1] == pytest.approx(4.71)
        np.testing.assert_array_equal(
            np.frombuffer(decoded.raw, dtype=np.float32), ranges
        )

    def test_request_is_empty(self):
        decoded = decode_packet(encode_packet(pk.lidar_request()))
        assert decoded.values == ()

    def test_unaligned_ranges_rejected(self):
        with pytest.raises(PacketError):
            pk.lidar_response(4.71, 0.0, b"\x00\x01\x02")

    def test_truncated_metadata_rejected(self):
        import struct

        wire = struct.pack(
            pk.HEADER_FORMAT, pk.MAGIC, int(PacketType.LIDAR_RESP), 0, 4
        ) + b"\x00" * 4
        with pytest.raises(PacketError):
            decode_packet(wire)

    def test_is_data_packet(self):
        assert PacketType.LIDAR_REQ.is_data
        assert PacketType.LIDAR_RESP.is_data


class TestLidarRpc:
    def test_get_lidar(self, env_sim):
        client = RpcClient(RpcServer(env_sim))
        scan = client.get_lidar()
        assert scan["beams"] * 4 == len(scan["ranges"])
        assert scan["fov_rad"] > 0
