"""Tests for repro.app.deadline (Equations 3-5) and the dynamic
runtime's deadline-miss accounting through the obs metrics."""

from __future__ import annotations

import math

import pytest

from repro.app.deadline import (
    DEFAULT_ACTUATION_LATENCY_S,
    DEFAULT_SENSOR_LATENCY_S,
    DeadlinePolicy,
    process_deadline,
    time_to_collision,
)
from repro.core.cosim import run_mission
from repro.errors import ConfigError
from repro.obs.demo import demo_missions


class TestTimeToCollision:
    def test_equation_3(self):
        assert time_to_collision(depth_m=18.0, velocity_mps=9.0) == 2.0

    def test_zero_velocity_never_collides(self):
        assert time_to_collision(10.0, 0.0) == math.inf
        assert time_to_collision(10.0, -1.0) == math.inf

    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigError):
            time_to_collision(-0.1, 1.0)


class TestProcessDeadline:
    def test_equation_5_subtracts_fixed_latencies(self):
        budget = process_deadline(18.0, 9.0)
        assert budget == pytest.approx(
            2.0 - DEFAULT_SENSOR_LATENCY_S - DEFAULT_ACTUATION_LATENCY_S
        )

    def test_budget_can_go_negative(self):
        # Already inside the unavoidable-latency envelope: no compute
        # budget remains ("already late" is representable).
        assert process_deadline(0.5, 9.0) < 0

    def test_negative_latencies_rejected(self):
        with pytest.raises(ConfigError):
            process_deadline(10.0, 1.0, sensor_latency_s=-0.01)
        with pytest.raises(ConfigError):
            process_deadline(10.0, 1.0, actuation_latency_s=-0.01)


class TestDeadlinePolicy:
    def test_at_risk_threshold(self):
        policy = DeadlinePolicy(threshold_s=0.40)
        assert not policy.at_risk(depth_m=20.0, velocity_mps=3.0)
        assert policy.at_risk(depth_m=1.0, velocity_mps=3.0)

    def test_meets_deadline_is_equation_4(self):
        policy = DeadlinePolicy()
        budget = process_deadline(18.0, 9.0)
        assert policy.meets_deadline(18.0, 9.0, compute_s=budget)
        assert not policy.meets_deadline(18.0, 9.0, compute_s=budget + 1e-6)

    def test_custom_latencies_flow_through(self):
        policy = DeadlinePolicy(
            threshold_s=0.1, sensor_latency_s=0.0, actuation_latency_s=0.0
        )
        assert policy.meets_deadline(1.0, 1.0, compute_s=1.0)


class TestDeadlineMissAccounting:
    """The dynamic runtime counts Eq. 4/5 outcomes in the obs registry."""

    @pytest.fixture(scope="class")
    def deadline_result(self):
        # The obs demo set's deadline mission: dynamic runtime driven
        # fast toward the wall so both at_risk outcomes and misses occur.
        return run_mission(demo_missions()["obs-deadline"])

    def test_checks_counted_per_outcome(self, deadline_result):
        snap = deadline_result.obs.metrics
        rows = {
            row["labels"]["at_risk"]: row["value"]
            for row in snap["rose_app_deadline_checks_total"]["series"]
        }
        assert set(rows) == {"true", "false"}
        assert all(value > 0 for value in rows.values())
        # One deadline check per control iteration; the mission may end
        # between the final check and its inference, so at most one extra.
        checks = sum(rows.values())
        assert (
            deadline_result.inference_count
            <= checks
            <= deadline_result.inference_count + 1
        )

    def test_misses_counted(self, deadline_result):
        snap = deadline_result.obs.metrics
        misses = sum(
            row["value"]
            for row in snap["rose_app_deadline_misses_total"]["series"]
        )
        checks = sum(
            row["value"]
            for row in snap["rose_app_deadline_checks_total"]["series"]
        )
        assert 0 < misses <= checks

    def test_static_runtime_records_no_checks(self):
        healthy = run_mission(demo_missions()["obs-healthy"])
        snap = healthy.obs.metrics
        assert snap["rose_app_deadline_checks_total"]["series"] == []
        assert snap["rose_app_deadline_misses_total"]["series"] == []
