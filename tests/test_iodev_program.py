"""Tests for the RoSE MMIO device and the target-program runtime API."""

from __future__ import annotations

import pytest

from repro.core import packets as pk
from repro.core.bridge import RoseBridge
from repro.core.packets import DataPacket, PacketType
from repro.errors import TargetProgramError
from repro.soc.iodev import (
    REG_CYCLE,
    REG_RX_COUNT,
    REG_RX_DATA,
    REG_RX_SIZE,
    REG_TX_DATA,
    REG_TX_SPACE,
    RoseIoDevice,
)
from repro.soc.program import TargetRuntime


@pytest.fixture
def bridge():
    return RoseBridge()


@pytest.fixture
def iodev(bridge):
    return RoseIoDevice(bridge)


class TestIoDevice:
    def test_rx_count_empty(self, iodev):
        assert iodev.read(REG_RX_COUNT) == 0
        assert iodev.read(REG_RX_SIZE) == 0

    def test_rx_flow(self, bridge, iodev):
        bridge.host_inject(pk.depth_response(5.0))
        assert iodev.read(REG_RX_COUNT) == 1
        assert iodev.read(REG_RX_SIZE) == 8
        packet = iodev.read(REG_RX_DATA)
        assert packet.values == (5.0,)
        assert iodev.read(REG_RX_COUNT) == 0

    def test_tx_flow(self, bridge, iodev):
        space = iodev.read(REG_TX_SPACE)
        iodev.write(REG_TX_DATA, pk.camera_request())
        assert iodev.read(REG_TX_SPACE) == space
        assert [p.ptype for p in bridge.host_collect()] == [PacketType.CAMERA_REQ]

    def test_cycle_register(self, iodev):
        iodev.attach_cycle_source(lambda: 1234)
        assert iodev.read(REG_CYCLE) == 1234

    def test_write_to_readonly_rejected(self, iodev):
        with pytest.raises(TargetProgramError):
            iodev.write(REG_RX_COUNT, 1)

    def test_read_of_writeonly_rejected(self, iodev):
        with pytest.raises(TargetProgramError):
            iodev.read(REG_TX_DATA)

    def test_non_packet_write_rejected(self, iodev):
        with pytest.raises(TargetProgramError):
            iodev.write(REG_TX_DATA, 42)

    def test_access_counters(self, bridge, iodev):
        iodev.read(REG_RX_COUNT)
        iodev.write(REG_TX_DATA, pk.camera_request())
        assert iodev.reads == 1
        assert iodev.writes == 1


def run_program(gen, responses=None):
    """Drive a target-program generator directly, returning yielded ops.

    ``responses`` maps op kinds to a callable producing the send value.
    """
    responses = responses or {}
    ops = []
    value = None
    try:
        while True:
            op = gen.send(value)
            ops.append(op)
            handler = responses.get(op[0])
            value = handler(op) if handler else None
    except StopIteration as stop:
        return ops, stop.value


class TestTargetRuntime:
    def test_invalid_poll_interval(self):
        with pytest.raises(TargetProgramError):
            TargetRuntime(poll_interval_cycles=0)

    def test_max_below_initial_rejected(self):
        with pytest.raises(TargetProgramError):
            TargetRuntime(poll_interval_cycles=100, max_poll_interval_cycles=10)

    def test_delay_yields_op(self):
        rt = TargetRuntime()
        ops, _ = run_program(rt.delay(500))
        assert ops == [("delay", 500)]

    def test_mmio_read_returns_sent_value(self):
        rt = TargetRuntime()

        def program():
            value = yield from rt.mmio_read(REG_RX_COUNT)
            return value

        ops, result = run_program(program(), {"mmio_read": lambda op: 7})
        assert result == 7

    def test_recv_packet_polls_then_pops(self):
        rt = TargetRuntime(poll_interval_cycles=100)
        counts = iter([0, 0, 1])
        packet = pk.depth_response(1.0)

        def reader(op):
            if op[1] == REG_RX_COUNT:
                return next(counts)
            return packet

        def program():
            result = yield from rt.recv_packet()
            return result

        ops, result = run_program(program(), {"mmio_read": reader})
        assert result is packet
        kinds = [op[0] for op in ops]
        assert kinds.count("delay") == 2  # two empty polls

    def test_recv_packet_backoff_doubles(self):
        rt = TargetRuntime(poll_interval_cycles=100, max_poll_interval_cycles=400)

        def reader(op):
            return 0  # never ready

        def program():
            result = yield from rt.recv_packet(timeout_cycles=1500)
            return result

        ops, result = run_program(program(), {"mmio_read": reader})
        assert result is None
        delays = [op[1] for op in ops if op[0] == "delay"]
        assert delays[:4] == [100, 200, 400, 400]  # exponential, capped

    def test_recv_packet_of_discards_others(self):
        rt = TargetRuntime()
        queue = [pk.imu_response(0, 0, 0, 0, 0), pk.depth_response(2.0)]
        counts = iter([1, 1])

        def reader(op):
            if op[1] == REG_RX_COUNT:
                return 1
            return queue.pop(0)

        def program():
            result = yield from rt.recv_packet_of(PacketType.DEPTH_RESP)
            return result

        _, result = run_program(program(), {"mmio_read": reader})
        assert result.ptype == PacketType.DEPTH_RESP

    def test_send_packet_waits_for_space(self):
        rt = TargetRuntime(poll_interval_cycles=50)
        spaces = iter([0, 0, 1024])
        written = []

        def reader(op):
            return next(spaces)

        def writer(op):
            written.append(op[2])

        def program():
            # A 32-byte TARGET_CMD: must wait until TX_SPACE >= 32.
            yield from rt.send_packet(pk.target_command(1.0, 0.0, 0.0, 1.5))

        ops, _ = run_program(program(), {"mmio_read": reader, "mmio_write": writer})
        assert len(written) == 1
        assert [op[0] for op in ops].count("delay") == 2

    def test_request_response_pattern(self):
        rt = TargetRuntime()
        sent = []

        def reader(op):
            if op[1] == REG_RX_COUNT:
                return 1
            if op[1] == REG_TX_SPACE:
                return 1 << 16
            return pk.depth_response(4.0)

        def writer(op):
            sent.append(op[2])

        def program():
            response = yield from rt.request_response(
                pk.depth_request(), PacketType.DEPTH_RESP
            )
            return response

        _, result = run_program(program(), {"mmio_read": reader, "mmio_write": writer})
        assert sent[0].ptype == PacketType.DEPTH_REQ
        assert result.values == (4.0,)

    def test_run_inference_yields_session(self):
        rt = TargetRuntime()
        marker = object()

        def program():
            report = yield from rt.run_inference(marker)
            return report

        ops, result = run_program(program(), {"inference": lambda op: "report"})
        assert ops[0] == ("inference", marker)
        assert result == "report"
