"""Tests for repro.core.deploy (Table 4 deployments)."""

from __future__ import annotations

import pytest

from repro.core.deploy import (
    CLOUD_AWS,
    DEPLOYMENTS,
    ON_PREMISE,
    Deployment,
    MachineSpec,
    deployment,
)
from repro.soc.firesim import simulation_throughput_mhz, wall_time_per_sync


class TestCatalog:
    def test_both_paper_deployments_present(self):
        assert set(DEPLOYMENTS) == {"on-premise", "cloud-aws"}
        assert DEPLOYMENTS["on-premise"] is ON_PREMISE
        assert DEPLOYMENTS["cloud-aws"] is CLOUD_AWS

    def test_lookup_by_name(self):
        assert deployment("on-premise").name == "on-premise"

    def test_unknown_deployment_raises_with_choices(self):
        with pytest.raises(KeyError) as exc:
            deployment("laptop")
        assert "on-premise" in str(exc.value)

    def test_roles_and_hardware(self):
        for dep in DEPLOYMENTS.values():
            assert dep.airsim.role == "airsim"
            assert dep.firesim.role == "firesim"
            # The renderer needs a GPU; the simulator needs an FPGA.
            assert dep.airsim.gpu is not None
            assert dep.airsim.fpga is None
            assert dep.firesim.fpga is not None
            assert dep.firesim.gpu is None

    def test_cloud_machines_name_instances(self):
        assert CLOUD_AWS.airsim.instance == "g4dn.2xlarge"
        assert CLOUD_AWS.firesim.instance == "f1.2xlarge"
        assert ON_PREMISE.airsim.instance is None


class TestTableRows:
    def test_layout_matches_table4(self):
        rows = ON_PREMISE.table_rows()
        fields = [field for field, _, _ in rows]
        assert fields == ["Instance", "CPU", "Frequency", "GPU", "FPGA", "OS"]

    def test_missing_hardware_renders_placeholders(self):
        by_field = {field: (left, right) for field, left, right in ON_PREMISE.table_rows()}
        assert by_field["Instance"] == ("-", "-")
        assert by_field["GPU"][1] == "N/A"  # FireSim machine has no GPU
        assert by_field["FPGA"][0] == "N/A"  # AirSim machine has no FPGA

    def test_frequency_formatting(self):
        by_field = {field: (left, right) for field, left, right in CLOUD_AWS.table_rows()}
        assert by_field["Frequency"] == ("@2.5GHz", "@2.3GHz")


class TestPerfModels:
    def test_cloud_is_slower_per_sync(self):
        # Cross-instance RPC dominates: the AWS pair pays more per sync.
        cycles = 10_000_000
        assert wall_time_per_sync(
            CLOUD_AWS.perf, cycles
        ) > wall_time_per_sync(ON_PREMISE.perf, cycles)

    def test_throughput_improves_with_granularity(self):
        # Figure 15's shape: coarser sync granularity amortizes overhead.
        for dep in DEPLOYMENTS.values():
            fine = simulation_throughput_mhz(dep.perf, 1_000_000)
            coarse = simulation_throughput_mhz(dep.perf, 100_000_000)
            assert coarse > fine

    def test_throughput_bounded_by_fpga_rate(self):
        for dep in DEPLOYMENTS.values():
            throughput = simulation_throughput_mhz(dep.perf, 100_000_000)
            assert 0 < throughput <= dep.perf.fpga_sim_rate_mhz

    def test_specs_are_frozen(self):
        with pytest.raises(AttributeError):
            ON_PREMISE.name = "other"  # type: ignore[misc]
        with pytest.raises(AttributeError):
            ON_PREMISE.airsim.cpu = "other"  # type: ignore[misc]

    def test_custom_deployment_composes(self):
        dep = Deployment(
            name="bench",
            airsim=MachineSpec(
                role="airsim", cpu="X", frequency_ghz=3.0, gpu="G", fpga=None, os="L"
            ),
            firesim=MachineSpec(
                role="firesim", cpu="Y", frequency_ghz=2.0, gpu=None, fpga="F", os="L"
            ),
            perf=ON_PREMISE.perf,
        )
        assert len(dep.table_rows()) == 6
