"""Unit and property tests for repro.env.geometry."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.geometry import (
    Polyline,
    Pose2,
    Ray2,
    Segment2,
    SegmentSoup,
    angle_difference,
    wrap_angle,
)

finite_angle = st.floats(-50.0, 50.0, allow_nan=False)


class TestWrapAngle:
    def test_zero(self):
        assert wrap_angle(0.0) == 0.0

    def test_pi_maps_to_pi(self):
        assert wrap_angle(math.pi) == pytest.approx(math.pi)

    def test_slightly_over_pi_wraps_negative(self):
        assert wrap_angle(math.pi + 0.1) == pytest.approx(-math.pi + 0.1)

    def test_negative_wrap(self):
        assert wrap_angle(-3 * math.pi / 2) == pytest.approx(math.pi / 2)

    @given(finite_angle)
    def test_range_invariant(self, theta):
        wrapped = wrap_angle(theta)
        assert -math.pi < wrapped <= math.pi + 1e-12

    @given(finite_angle)
    def test_preserves_direction(self, theta):
        wrapped = wrap_angle(theta)
        # Same point on the unit circle.
        assert math.cos(wrapped) == pytest.approx(math.cos(theta), abs=1e-9)
        assert math.sin(wrapped) == pytest.approx(math.sin(theta), abs=1e-9)

    @given(finite_angle, finite_angle)
    def test_angle_difference_antisymmetric(self, a, b):
        assert angle_difference(a, b) == pytest.approx(-angle_difference(b, a), abs=1e-9) or (
            abs(abs(angle_difference(a, b)) - math.pi) < 1e-9
        )


class TestPose2:
    def test_forward_at_zero_yaw(self):
        pose = Pose2(0, 0, 0)
        np.testing.assert_allclose(pose.forward, [1, 0], atol=1e-12)
        np.testing.assert_allclose(pose.left, [0, 1], atol=1e-12)

    def test_forward_at_quarter_turn(self):
        pose = Pose2(0, 0, math.pi / 2)
        np.testing.assert_allclose(pose.forward, [0, 1], atol=1e-12)
        np.testing.assert_allclose(pose.left, [-1, 0], atol=1e-12)

    def test_body_world_round_trip(self):
        pose = Pose2(3.0, -2.0, 0.7)
        point = np.array([5.0, 4.0])
        back = pose.transform_to_world(pose.transform_to_body(point))
        np.testing.assert_allclose(back, point, atol=1e-12)

    @given(
        st.floats(-100, 100),
        st.floats(-100, 100),
        st.floats(-math.pi, math.pi),
        st.floats(-10, 10),
        st.floats(-10, 10),
    )
    @settings(max_examples=50)
    def test_round_trip_property(self, x, y, yaw, px, py):
        pose = Pose2(x, y, yaw)
        point = np.array([px, py])
        back = pose.transform_to_body(pose.transform_to_world(point))
        np.testing.assert_allclose(back, point, atol=1e-8)


class TestSegment2:
    def test_length(self):
        assert Segment2(0, 0, 3, 4).length == pytest.approx(5.0)

    def test_point_at_midpoint(self):
        seg = Segment2(0, 0, 2, 2)
        np.testing.assert_allclose(seg.point_at(0.5), [1, 1])

    def test_distance_to_point_on_segment(self):
        seg = Segment2(0, 0, 10, 0)
        assert seg.distance_to_point(np.array([5.0, 0.0])) == pytest.approx(0.0)

    def test_distance_to_point_perpendicular(self):
        seg = Segment2(0, 0, 10, 0)
        assert seg.distance_to_point(np.array([5.0, 3.0])) == pytest.approx(3.0)

    def test_distance_clamps_to_endpoints(self):
        seg = Segment2(0, 0, 10, 0)
        assert seg.distance_to_point(np.array([13.0, 4.0])) == pytest.approx(5.0)

    def test_degenerate_segment(self):
        seg = Segment2(1, 1, 1, 1)
        assert seg.distance_to_point(np.array([4.0, 5.0])) == pytest.approx(5.0)


class TestSegmentSoup:
    def test_requires_segments(self):
        with pytest.raises(ValueError):
            SegmentSoup([])

    def test_min_distance_picks_nearest(self):
        soup = SegmentSoup([Segment2(0, 1, 10, 1), Segment2(0, -5, 10, -5)])
        assert soup.min_distance(np.array([5.0, 0.0])) == pytest.approx(1.0)

    def test_cast_ray_hit(self):
        soup = SegmentSoup([Segment2(5, -1, 5, 1)])
        assert soup.cast_ray(np.array([0.0, 0.0]), 0.0) == pytest.approx(5.0)

    def test_cast_ray_miss_returns_max_range(self):
        soup = SegmentSoup([Segment2(5, -1, 5, 1)])
        assert soup.cast_ray(np.array([0.0, 0.0]), math.pi, max_range=42.0) == 42.0

    def test_cast_ray_behind_is_miss(self):
        soup = SegmentSoup([Segment2(-5, -1, -5, 1)])
        assert soup.cast_ray(np.array([0.0, 0.0]), 0.0, max_range=42.0) == 42.0

    def test_cast_rays_vectorized_matches_scalar(self):
        soup = SegmentSoup(
            [Segment2(5, -10, 5, 10), Segment2(-3, -10, -3, 10), Segment2(-10, 4, 10, 4)]
        )
        angles = np.linspace(-math.pi, math.pi, 33)
        batch = soup.cast_rays(np.zeros(2), angles, max_range=100.0)
        for angle, expected in zip(angles, batch):
            assert soup.cast_ray(np.zeros(2), float(angle), max_range=100.0) == pytest.approx(
                float(expected)
            )

    def test_parallel_ray_no_hit(self):
        soup = SegmentSoup([Segment2(0, 1, 10, 1)])
        # Ray along the x-axis is parallel to the segment.
        assert soup.cast_ray(np.zeros(2), 0.0, max_range=99.0) == 99.0


class TestPolyline:
    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            Polyline(np.array([[0.0, 0.0]]))

    def test_rejects_degenerate_segment(self):
        with pytest.raises(ValueError):
            Polyline(np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0]]))

    def test_length(self):
        line = Polyline(np.array([[0.0, 0.0], [3.0, 0.0], [3.0, 4.0]]))
        assert line.length == pytest.approx(7.0)

    def test_point_at_arclength(self):
        line = Polyline(np.array([[0.0, 0.0], [3.0, 0.0], [3.0, 4.0]]))
        np.testing.assert_allclose(line.point_at_arclength(5.0), [3.0, 2.0])

    def test_point_at_arclength_clamps(self):
        line = Polyline(np.array([[0.0, 0.0], [1.0, 0.0]]))
        np.testing.assert_allclose(line.point_at_arclength(99.0), [1.0, 0.0])
        np.testing.assert_allclose(line.point_at_arclength(-5.0), [0.0, 0.0])

    def test_tangent_and_normal_orthogonal(self):
        line = Polyline(np.array([[0.0, 0.0], [3.0, 1.0], [5.0, 4.0]]))
        for s in (0.5, 2.0, 4.0):
            t = line.tangent_at_arclength(s)
            n = line.normal_at_arclength(s)
            assert abs(t @ n) < 1e-12
            assert np.linalg.norm(t) == pytest.approx(1.0)

    def test_project_on_straight_line(self):
        line = Polyline(np.array([[0.0, 0.0], [10.0, 0.0]]))
        s, d = line.project(np.array([4.0, 2.0]))
        assert s == pytest.approx(4.0)
        assert d == pytest.approx(2.0)  # left of travel is +y here

    def test_project_right_side_negative(self):
        line = Polyline(np.array([[0.0, 0.0], [10.0, 0.0]]))
        _, d = line.project(np.array([4.0, -2.0]))
        assert d == pytest.approx(-2.0)

    @given(st.floats(0.5, 9.5), st.floats(-3, 3))
    @settings(max_examples=50)
    def test_project_inverts_offset_construction(self, s, d):
        line = Polyline(np.array([[0.0, 0.0], [10.0, 0.0]]))
        point = line.point_at_arclength(s) + d * line.normal_at_arclength(s)
        s2, d2 = line.project(point)
        assert s2 == pytest.approx(s, abs=1e-9)
        assert d2 == pytest.approx(d, abs=1e-9)

    def test_offset_straight(self):
        line = Polyline(np.array([[0.0, 0.0], [10.0, 0.0]]))
        left = line.offset(2.0)
        np.testing.assert_allclose(left.points[:, 1], 2.0)

    def test_offset_preserves_point_count(self):
        pts = np.column_stack([np.linspace(0, 10, 7), np.sin(np.linspace(0, 3, 7))])
        line = Polyline(pts)
        assert len(line.offset(0.5).points) == 7

    def test_to_segments_covers_length(self):
        line = Polyline(np.array([[0.0, 0.0], [3.0, 0.0], [3.0, 4.0]]))
        segs = line.to_segments()
        assert len(segs) == 2
        assert sum(s.length for s in segs) == pytest.approx(line.length)


class TestRay2:
    def test_from_pose(self):
        ray = Ray2.from_pose(Pose2(1, 2, 0.0), relative_angle=math.pi / 2)
        assert (ray.ox, ray.oy) == (1, 2)
        assert ray.dx == pytest.approx(0.0, abs=1e-12)
        assert ray.dy == pytest.approx(1.0)
