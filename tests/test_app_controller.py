"""Tests for the controller application: Equation 2, stats, deadline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.app.controller import (
    AppStats,
    ControllerGains,
    InferenceRecord,
    compute_targets,
)
from repro.app.deadline import (
    DeadlinePolicy,
    process_deadline,
    time_to_collision,
)
from repro.dnn.calibrated import TrailInference
from repro.errors import ConfigError


def inference(angular, lateral):
    angular = np.asarray(angular, dtype=float)
    lateral = np.asarray(lateral, dtype=float)
    return TrailInference(
        angular_probs=angular,
        lateral_probs=lateral,
        angular_pred=int(angular.argmax()),
        lateral_pred=int(lateral.argmax()),
    )


class TestGains:
    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            ControllerGains(beta_lateral=-1.0)

    def test_velocity_scheduling(self):
        gains = ControllerGains(beta_lateral=3.0, beta_angular=1.5)
        bl, ba = gains.at_velocity(4.5)
        assert bl == pytest.approx(1.5)
        assert ba == pytest.approx(0.75)

    def test_reference_velocity_identity(self):
        gains = ControllerGains()
        bl, ba = gains.at_velocity(ControllerGains.REFERENCE_VELOCITY)
        assert (bl, ba) == (gains.beta_lateral, gains.beta_angular)


class TestEquation2:
    GAINS = ControllerGains(beta_lateral=3.0, beta_angular=1.3)
    V = ControllerGains.REFERENCE_VELOCITY  # gains at face value

    def test_centered_inference_no_correction(self):
        result = inference([0, 1, 0], [0, 1, 0])
        vf, vl, yr = compute_targets(result, self.V, self.GAINS)
        assert vf == self.V
        assert vl == 0.0
        assert yr == 0.0

    def test_drone_left_of_trail_corrects_right(self):
        # Lateral class LEFT (index 0): drone is left -> move right
        # (negative lateral velocity; +lateral is leftward).
        result = inference([0, 1, 0], [1, 0, 0])
        _, vl, _ = compute_targets(result, self.V, self.GAINS)
        assert vl == pytest.approx(-3.0)

    def test_drone_right_of_trail_corrects_left(self):
        result = inference([0, 1, 0], [0, 0, 1])
        _, vl, _ = compute_targets(result, self.V, self.GAINS)
        assert vl == pytest.approx(3.0)

    def test_drone_angled_left_turns_clockwise(self):
        result = inference([1, 0, 0], [0, 1, 0])
        _, _, yr = compute_targets(result, self.V, self.GAINS)
        assert yr == pytest.approx(-1.3)

    def test_drone_angled_right_turns_counter_clockwise(self):
        result = inference([0, 0, 1], [0, 1, 0])
        _, _, yr = compute_targets(result, self.V, self.GAINS)
        assert yr == pytest.approx(1.3)

    def test_confidence_scales_magnitude(self):
        weak = inference([0.2, 0.5, 0.3], [0.3, 0.4, 0.3])
        strong = inference([0.02, 0.05, 0.93], [0.0, 0.1, 0.9])
        _, vl_weak, yr_weak = compute_targets(weak, self.V, self.GAINS)
        _, vl_strong, yr_strong = compute_targets(strong, self.V, self.GAINS)
        assert abs(vl_strong) > abs(vl_weak)
        assert abs(yr_strong) > abs(yr_weak)

    def test_argmax_policy_full_gain(self):
        weak = inference([0.2, 0.3, 0.5], [0.45, 0.3, 0.25])
        _, vl, yr = compute_targets(weak, self.V, self.GAINS, argmax_policy=True)
        assert yr == pytest.approx(1.3)  # full angular correction
        assert vl == pytest.approx(-3.0)  # full lateral correction

    def test_forward_velocity_passthrough(self):
        result = inference([0, 1, 0], [0, 1, 0])
        vf, _, _ = compute_targets(result, 12.0, self.GAINS)
        assert vf == 12.0


class TestAppStats:
    def test_record_and_latency(self):
        stats = AppStats()
        stats.record(1_000_000, 99_000_000, "resnet14")
        stats.record(2_000_000, 90_000_000, "resnet6")
        assert stats.inference_count == 2
        assert stats.latency_cycles() == [98_000_000, 88_000_000]
        assert stats.mean_latency_ms(1e9) == pytest.approx(93.0)
        assert stats.inferences_by_model == {"resnet14": 1, "resnet6": 1}

    def test_empty_latency_is_nan(self):
        assert math.isnan(AppStats().mean_latency_ms())

    def test_record_latency_property(self):
        record = InferenceRecord(10, 25, "m")
        assert record.latency_cycles == 15


class TestDeadlineModel:
    def test_equation_3(self):
        assert time_to_collision(18.0, 9.0) == pytest.approx(2.0)

    def test_zero_velocity_never_collides(self):
        assert time_to_collision(5.0, 0.0) == float("inf")

    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigError):
            time_to_collision(-1.0, 3.0)

    def test_equation_5(self):
        budget = process_deadline(
            18.0, 9.0, sensor_latency_s=0.1, actuation_latency_s=0.4
        )
        assert budget == pytest.approx(1.5)

    def test_budget_can_be_negative(self):
        assert process_deadline(0.5, 10.0) < 0

    def test_invalid_latencies_rejected(self):
        with pytest.raises(ConfigError):
            process_deadline(10.0, 1.0, sensor_latency_s=-0.1)

    def test_policy_at_risk(self):
        policy = DeadlinePolicy(threshold_s=0.4, sensor_latency_s=0.0, actuation_latency_s=0.0)
        assert policy.at_risk(depth_m=3.0, velocity_mps=9.0)  # 0.33 s < 0.4
        assert not policy.at_risk(depth_m=9.0, velocity_mps=9.0)  # 1 s

    def test_policy_meets_deadline(self):
        policy = DeadlinePolicy(sensor_latency_s=0.0, actuation_latency_s=0.0)
        assert policy.meets_deadline(depth_m=9.0, velocity_mps=9.0, compute_s=0.5)
        assert not policy.meets_deadline(depth_m=9.0, velocity_mps=9.0, compute_s=1.5)
