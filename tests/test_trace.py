"""Tests for core/trace.py: span nesting, instants, Chrome-trace export."""

from __future__ import annotations

import json

from repro.core.trace import TraceEvent, Tracer


def _chrome_events(tracer: Tracer) -> list[dict]:
    """Non-metadata records of the export, parsed back from JSON."""
    doc = json.loads(tracer.to_chrome_trace())
    return [e for e in doc["traceEvents"] if e.get("cat") != "__metadata"]


class TestEventModel:
    def test_zero_duration_is_instant(self):
        assert TraceEvent("x", "sync", 1.0).instant
        assert not TraceEvent("x", "sync", 1.0, duration_s=0.5).instant

    def test_args_recorded(self):
        tracer = Tracer()
        tracer.instant("grant", "sync", 0.01, step=4)
        tracer.span("infer", "dnn", 0.01, 0.002, track="soc", layer="conv1")
        assert tracer.events[0].args == {"step": 4}
        assert tracer.events[1].args == {"layer": "conv1"}

    def test_by_category(self):
        tracer = Tracer()
        tracer.instant("a", "sync", 0.0)
        tracer.instant("b", "dnn", 0.0)
        tracer.instant("c", "sync", 0.1)
        assert [e.name for e in tracer.by_category("sync")] == ["a", "c"]


class TestSpanNesting:
    """Nested spans export as complete ('X') events whose intervals the
    Chrome trace viewer reconstructs into a stack — the export must
    preserve containment exactly."""

    def test_nested_spans_preserve_containment(self):
        tracer = Tracer()
        tracer.span("step", "sync", start_s=0.10, duration_s=0.10)
        tracer.span("service", "sync", start_s=0.12, duration_s=0.05)
        tracer.span("inference", "dnn", start_s=0.13, duration_s=0.02)
        outer, mid, inner = _chrome_events(tracer)
        for record in (outer, mid, inner):
            assert record["ph"] == "X"
        # Containment in microsecond units: each child fits in its parent.
        assert outer["ts"] <= mid["ts"]
        assert mid["ts"] + mid["dur"] <= outer["ts"] + outer["dur"]
        assert mid["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= mid["ts"] + mid["dur"]

    def test_same_track_shares_tid(self):
        tracer = Tracer()
        tracer.span("a", "sync", 0.0, 0.1, track="synchronizer")
        tracer.span("b", "sync", 0.2, 0.1, track="synchronizer")
        tracer.span("c", "soc", 0.0, 0.1, track="soc")
        a, b, c = _chrome_events(tracer)
        assert a["tid"] == b["tid"]
        assert a["tid"] != c["tid"]

    def test_track_metadata_emitted_once_per_track(self):
        tracer = Tracer()
        tracer.instant("a", "sync", 0.0, track="synchronizer")
        tracer.instant("b", "sync", 0.0, track="soc")
        tracer.instant("c", "sync", 0.0, track="soc")
        doc = json.loads(tracer.to_chrome_trace())
        meta = [e for e in doc["traceEvents"] if e.get("cat") == "__metadata"]
        assert sorted(m["args"]["name"] for m in meta) == ["soc", "synchronizer"]


class TestChromeExport:
    def test_instants_exported_with_phase_i(self):
        tracer = Tracer()
        tracer.instant("grant", "sync", at_s=0.25, step=1)
        (record,) = _chrome_events(tracer)
        assert record["ph"] == "i"
        assert record["s"] == "t"
        assert record["ts"] == 0.25 * 1e6
        assert record["args"] == {"step": 1}
        assert "dur" not in record

    def test_timestamps_scaled_to_microseconds(self):
        tracer = Tracer()
        tracer.span("step", "sync", start_s=1.5, duration_s=0.125)
        (record,) = _chrome_events(tracer)
        assert record["ts"] == 1.5e6
        assert record["dur"] == 0.125e6

    def test_write_output_is_valid_json(self, tmp_path):
        tracer = Tracer()
        tracer.span("step", "sync", 0.0, 0.1)
        tracer.instant("done", "sync", 0.1)
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"step", "done"} <= names

    def test_empty_tracer_exports_valid_document(self):
        doc = json.loads(Tracer().to_chrome_trace())
        assert doc["traceEvents"] == []

    def test_disabled_tracer_skips_everything(self):
        tracer = Tracer(enabled=False)
        tracer.span("step", "sync", 0.0, 0.1)
        tracer.instant("done", "sync", 0.1)
        assert len(tracer) == 0
