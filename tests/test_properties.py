"""Cross-cutting property-based and fuzz tests.

Hypothesis-driven invariants on the wire protocol, the bridge hardware
queues, the synchronization math, and the error hierarchy — the places
where malformed inputs or unusual sequences must degrade *predictably*.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

import repro.errors as errors_module
from repro.core import packets as pk
from repro.core.bridge import BridgeConfig, RoseBridge
from repro.core.config import SyncConfig
from repro.core.manifest import config_from_dict, config_to_dict
from repro.core.config import CoSimConfig
from repro.core.packets import PacketType, decode_packet, encode_packet
from repro.errors import BridgeError, PacketError, ReproError


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        error_types = [
            obj
            for obj in vars(errors_module).values()
            if isinstance(obj, type) and issubclass(obj, Exception)
        ]
        assert len(error_types) >= 10
        for error_type in error_types:
            assert issubclass(error_type, ReproError)

    def test_catchable_at_base(self):
        with pytest.raises(ReproError):
            raise PacketError("boom")


class TestPacketFuzz:
    """decode_packet must never raise anything but PacketError."""

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=300)
    def test_random_bytes(self, data):
        try:
            decode_packet(data)
        except PacketError:
            pass  # the only acceptable failure mode

    @given(st.binary(min_size=0, max_size=32))
    @settings(max_examples=200)
    def test_valid_magic_random_payload(self, payload):
        wire = struct.pack(pk.HEADER_FORMAT, pk.MAGIC, int(PacketType.IMU_RESP), 0, len(payload))
        try:
            decode_packet(wire + payload)
        except PacketError:
            pass

    @given(st.sampled_from(list(PacketType)), st.binary(max_size=16))
    @settings(max_examples=200)
    def test_header_type_with_junk(self, ptype, junk):
        wire = struct.pack(pk.HEADER_FORMAT, pk.MAGIC, int(ptype), 0, len(junk))
        try:
            decode_packet(wire + junk)
        except PacketError:
            pass

    @given(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    )
    @settings(max_examples=100)
    def test_encode_decode_identity(self, a, b, c, d):
        packet = pk.target_command(float(a), float(b), float(c), float(d))
        assert decode_packet(encode_packet(packet)) == packet


class BridgeMachine(RuleBasedStateMachine):
    """Stateful model of the RoSE bridge hardware queues.

    A reference model (plain lists) runs alongside the bridge; every
    observable — counts, sizes, FIFO order, capacity — must agree.
    """

    RX_CAPACITY = 200
    TX_CAPACITY = 120

    def __init__(self):
        super().__init__()
        self.bridge = RoseBridge(
            BridgeConfig(
                rx_capacity_bytes=self.RX_CAPACITY, tx_capacity_bytes=self.TX_CAPACITY
            )
        )
        self.model_rx: list = []
        self.model_tx: list = []
        self._counter = 0.0

    def _fresh_packet(self):
        self._counter += 1.0
        return pk.depth_response(self._counter)  # 8-byte payload

    @rule()
    def inject(self):
        packet = self._fresh_packet()
        size = packet.payload_bytes
        expected_fit = sum(p.payload_bytes for p in self.model_rx) + size <= self.RX_CAPACITY
        accepted = self.bridge.host_inject(packet)
        assert accepted == expected_fit
        if accepted:
            self.model_rx.append(packet)

    @precondition(lambda self: self.model_rx)
    @rule()
    def pop(self):
        packet = self.bridge.target_rx_pop()
        assert packet == self.model_rx.pop(0)  # FIFO order

    @rule()
    def push_tx(self):
        packet = self._fresh_packet()
        size = packet.payload_bytes
        fits = sum(p.payload_bytes for p in self.model_tx) + size <= self.TX_CAPACITY
        if fits:
            self.bridge.target_tx_push(packet)
            self.model_tx.append(packet)
        else:
            with pytest.raises(BridgeError):
                self.bridge.target_tx_push(packet)

    @rule()
    def collect(self):
        packets = self.bridge.host_collect()
        assert packets == self.model_tx
        self.model_tx = []

    @invariant()
    def counts_agree(self):
        assert self.bridge.target_rx_count() == len(self.model_rx)
        assert self.bridge.rx_buffered_bytes == sum(
            p.payload_bytes for p in self.model_rx
        )
        assert self.bridge.tx_buffered_bytes == sum(
            p.payload_bytes for p in self.model_tx
        )

    @invariant()
    def head_size_agrees(self):
        expected = self.model_rx[0].payload_bytes if self.model_rx else 0
        assert self.bridge.target_rx_head_bytes() == expected


TestBridgeStateMachine = BridgeMachine.TestCase


class TestSyncConfigProperties:
    @given(st.integers(10, 4000))
    @settings(max_examples=60)
    def test_equation_1_ratio(self, millions):
        """Equation 1: frames/cycles ratio tracks the frequency ratio."""
        cycles = millions * 1_000_000
        sync = SyncConfig(cycles_per_sync=cycles)
        expected = cycles * sync.frame_rate_hz / sync.soc_frequency_hz
        assert sync.frames_per_sync == round(expected)
        assert sync.frames_per_sync >= 1

    @given(st.integers(10, 4000))
    @settings(max_examples=60)
    def test_period_consistency(self, millions):
        sync = SyncConfig(cycles_per_sync=millions * 1_000_000)
        assert sync.sync_period_seconds * sync.soc_frequency_hz == pytest.approx(
            sync.cycles_per_sync
        )
        assert sync.cycles_per_frame * sync.frames_per_sync == pytest.approx(
            sync.cycles_per_sync
        )


class TestManifestProperties:
    @given(
        st.sampled_from(["tunnel", "s-shape"]),
        st.sampled_from(["A", "B", "C"]),
        st.sampled_from(["resnet6", "resnet11", "resnet14", "resnet18", "resnet34"]),
        st.floats(0.5, 15.0),
        st.integers(0, 1000),
        st.sampled_from([10_000_000, 50_000_000, 400_000_000]),
    )
    @settings(max_examples=60)
    def test_round_trip_any_config(self, world, soc, model, velocity, seed, cycles):
        config = CoSimConfig(
            world=world,
            soc=soc,
            model=model,
            target_velocity=float(velocity),
            seed=seed,
            sync=SyncConfig(cycles_per_sync=cycles),
        )
        assert config_from_dict(config_to_dict(config)) == config


class TestGridProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0.5, 9.5), st.floats(0.5, 9.5), st.floats(-3.1, 3.1)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_occupancy_always_probability(self, scans):
        from repro.slam.grid import GridParams, OccupancyGrid

        grid = OccupancyGrid(
            GridParams(origin_x=0, origin_y=0, width_m=10, height_m=10)
        )
        angles = np.linspace(-1.5, 1.5, 8)
        for x, y, yaw in scans:
            ranges = np.full(8, 3.0)
            grid.integrate_scan(x, y, yaw, angles, ranges, max_range=10.0)
        rng = np.random.default_rng(0)
        points = rng.uniform(-2, 12, (50, 2))
        probs = grid.occupancy_probability(points)
        assert (probs >= 0).all() and (probs <= 1).all()
        assert 0.0 <= grid.observed_fraction <= 1.0
