"""Tests for the golden-trace corpus (repro.verify.golden)."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core.config import CoSimConfig
from repro.verify import (
    DEFAULT_GOLDEN_DIR,
    GoldenRecord,
    check_corpus,
    golden_missions,
    record_corpus,
    record_mission,
)


def _tiny_missions() -> dict[str, CoSimConfig]:
    return {
        "unit-a": CoSimConfig(world="tunnel", model="resnet6", max_sim_time=1.0),
        "unit-b": CoSimConfig(
            world="tunnel", model="resnet6", max_sim_time=1.0, seed=1
        ),
    }


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    """A recorded two-mission corpus shared across this module's tests."""
    root = tmp_path_factory.mktemp("golden")
    report = record_corpus(root, missions=_tiny_missions())
    assert report.ok
    return root


class TestRecordCheckRoundTrip:
    def test_check_after_record_passes(self, corpus_dir):
        report = check_corpus(corpus_dir, missions=_tiny_missions())
        assert report.ok
        assert [c.name for c in report.checks] == ["unit-a", "unit-b"]

    def test_record_is_valid_json_with_format_stamp(self, corpus_dir):
        data = json.loads((corpus_dir / "unit-a.json").read_text())
        assert data["format"] == "rose-golden/1"
        assert data["signature"]
        assert data["metrics"]["sim_time"]
        assert data["payload"]["op_stream"]

    def test_rerecord_identical_behaviour_reports_ok(self, corpus_dir):
        report = record_corpus(corpus_dir, missions=_tiny_missions())
        assert report.ok
        assert all(check.status == "ok" for check in report.checks)

    def test_only_filter_restricts_missions(self, corpus_dir):
        report = check_corpus(corpus_dir, missions=_tiny_missions(), only="unit-a")
        assert [check.name for check in report.checks] == ["unit-a"]


class TestDriftDetection:
    def test_payload_drift_names_step_and_field(self, corpus_dir, tmp_path):
        # Copy the corpus and perturb one op-stream cell of one record.
        work = tmp_path / "drifted"
        work.mkdir()
        for path in corpus_dir.glob("*.json"):
            (work / path.name).write_text(path.read_text())
        record_path = work / "unit-a.json"
        data = json.loads(record_path.read_text())
        # Simulate recorded-then-drifted behaviour: the stored payload and
        # signature reflect a run whose step 3 differed from today's.
        data["payload"]["op_stream"][3][0] = "999999"
        data["signature"] = "0" * 64
        record_path.write_text(json.dumps(data))

        report = check_corpus(work, missions=_tiny_missions())
        assert not report.ok
        (failure,) = report.failures
        assert failure.status == "drift"
        assert failure.divergence is not None
        assert failure.divergence.step == 3
        assert "op_stream" in failure.divergence.field
        assert "step 3" in failure.divergence.describe()

    def test_config_drift_flagged_without_running(self, corpus_dir):
        drifted = _tiny_missions()
        drifted["unit-a"] = replace(drifted["unit-a"], target_velocity=4.0)
        report = check_corpus(corpus_dir, missions=drifted)
        failure = next(c for c in report.checks if c.name == "unit-a")
        assert failure.status == "config-drift"
        assert "target_velocity" in failure.divergence.field

    def test_missing_record_flagged(self, corpus_dir):
        missions = _tiny_missions()
        missions["unit-c"] = CoSimConfig(
            world="tunnel", model="resnet6", max_sim_time=1.0, seed=2
        )
        report = check_corpus(corpus_dir, missions=missions)
        missing = next(c for c in report.checks if c.name == "unit-c")
        assert missing.status == "missing"

    def test_stale_record_flagged(self, corpus_dir, tmp_path):
        work = tmp_path / "stale"
        work.mkdir()
        for path in corpus_dir.glob("*.json"):
            (work / path.name).write_text(path.read_text())
        (work / "gone-mission.json").write_text(
            (corpus_dir / "unit-a.json").read_text()
        )
        report = check_corpus(work, missions=_tiny_missions())
        stale = next(c for c in report.checks if c.name == "gone-mission")
        assert stale.status == "stale"

    def test_unreadable_record_flagged(self, corpus_dir, tmp_path):
        work = tmp_path / "broken"
        work.mkdir()
        for path in corpus_dir.glob("*.json"):
            (work / path.name).write_text(path.read_text())
        (work / "unit-a.json").write_text("{not json")
        report = check_corpus(work, missions=_tiny_missions())
        broken = next(c for c in report.checks if c.name == "unit-a")
        assert broken.status == "drift"
        assert "unreadable" in broken.detail

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="unsupported golden format"):
            GoldenRecord.from_json('{"format": "rose-golden/999"}')

    def test_obs_drift_flagged_even_when_signature_matches(self, corpus_dir, tmp_path):
        # Telemetry drift with an unchanged canonical payload: the
        # signature still matches, so only the obs comparison can catch it.
        work = tmp_path / "obs-drifted"
        work.mkdir()
        for path in corpus_dir.glob("*.json"):
            (work / path.name).write_text(path.read_text())
        record_path = work / "unit-a.json"
        data = json.loads(record_path.read_text())
        steps = data["obs"]["rose_sync_steps_total"]["series"][0]
        steps["value"] += 1
        record_path.write_text(json.dumps(data))

        report = check_corpus(work, missions=_tiny_missions())
        failure = next(c for c in report.checks if c.name == "unit-a")
        assert failure.status == "drift"
        assert "obs" in failure.detail
        assert "rose_sync_steps_total" in failure.divergence.field

    def test_record_without_obs_snapshot_tolerated(self, corpus_dir, tmp_path):
        # Records captured before the observability layer carry no obs
        # key; the checker compares only the signature for them.
        work = tmp_path / "pre-obs"
        work.mkdir()
        for path in corpus_dir.glob("*.json"):
            data = json.loads(path.read_text())
            data.pop("obs", None)
            (work / path.name).write_text(json.dumps(data))
        report = check_corpus(work, missions=_tiny_missions())
        assert report.ok


class TestRecordContents:
    def test_record_mission_signature_matches_payload(self):
        config = CoSimConfig(world="tunnel", model="resnet6", max_sim_time=1.0)
        record = record_mission("unit", config)
        assert set(record.metrics) <= set(record.payload)
        assert record.config["world"] == "tunnel"
        # The record round-trips through its own JSON representation.
        again = GoldenRecord.from_json(record.to_json())
        assert again.signature == record.signature
        assert again.payload == record.payload

    def test_record_carries_obs_snapshot(self):
        config = CoSimConfig(world="tunnel", model="resnet6", max_sim_time=1.0)
        record = record_mission("unit", config)
        assert record.obs is not None
        steps = sum(
            row["value"]
            for row in record.obs["rose_sync_steps_total"]["series"]
        )
        assert steps > 0
        again = GoldenRecord.from_json(record.to_json())
        assert again.obs == json.loads(json.dumps(record.obs))


class TestCommittedCorpus:
    """The committed corpus under tests/golden/ IS the tier-1 drift gate."""

    def test_corpus_defines_at_least_eight_missions(self):
        assert len(golden_missions()) >= 8

    def test_every_mission_has_a_committed_record(self):
        for name in golden_missions():
            assert (DEFAULT_GOLDEN_DIR / f"{name}.json").is_file(), (
                f"golden record for {name!r} missing; run "
                "`python -m repro verify --record` and commit tests/golden/"
            )

    def test_committed_corpus_conforms(self):
        """Behavioural drift against tests/golden/ fails the suite here."""
        report = check_corpus()
        assert report.ok, "\n" + report.describe()
