"""Tests for the SimpleFlight-style cascaded PID flight controller."""

from __future__ import annotations

import pytest

from repro.env.flightctl import (
    Pid,
    PidGains,
    SimpleFlightController,
    VelocityTarget,
)
from repro.env.physics import AccelCommand, DroneState, QuadrotorDynamics
from repro.env.worlds import tunnel_world

DT = 1.0 / 60.0


class TestPid:
    def test_proportional(self):
        pid = Pid(PidGains(kp=2.0))
        assert pid.update(1.5, DT) == pytest.approx(3.0)

    def test_integral_accumulates(self):
        pid = Pid(PidGains(kp=0.0, ki=1.0))
        out1 = pid.update(1.0, 0.5)
        out2 = pid.update(1.0, 0.5)
        assert out2 > out1

    def test_integral_clamped(self):
        pid = Pid(PidGains(kp=0.0, ki=1.0, integral_limit=0.5))
        for _ in range(100):
            out = pid.update(10.0, 0.1)
        assert out == pytest.approx(0.5)

    def test_derivative_reacts_to_change(self):
        pid = Pid(PidGains(kp=0.0, kd=1.0))
        pid.update(0.0, DT)
        out = pid.update(1.0, DT)
        assert out == pytest.approx(1.0 / DT)

    def test_derivative_zero_on_first_call(self):
        pid = Pid(PidGains(kp=0.0, kd=1.0))
        assert pid.update(5.0, DT) == 0.0

    def test_output_limit(self):
        pid = Pid(PidGains(kp=100.0, output_limit=2.0))
        assert pid.update(10.0, DT) == 2.0
        assert pid.update(-10.0, DT) == -2.0

    def test_reset(self):
        pid = Pid(PidGains(kp=1.0, ki=1.0, kd=1.0))
        pid.update(1.0, DT)
        pid.reset()
        # After reset, behaves like the first call again.
        assert pid.update(2.0, DT) == pytest.approx(2.0 + 2.0 * DT)


class TestController:
    def test_unarmed_outputs_nothing(self):
        ctl = SimpleFlightController()
        cmd = ctl.update(DroneState(), DT)
        assert (cmd.a_forward, cmd.a_lateral, cmd.a_vertical, cmd.yaw_accel) == (0, 0, 0, 0)

    def test_arm_sets_altitude_hold(self):
        ctl = SimpleFlightController()
        ctl.arm(altitude=2.0)
        assert ctl.armed
        assert ctl.target.altitude == 2.0
        cmd = ctl.update(DroneState(z=0.0), DT)
        assert cmd.a_vertical > 0.0  # climb toward the hold altitude

    def test_tracks_most_recent_target(self):
        ctl = SimpleFlightController()
        ctl.arm()
        ctl.set_target(VelocityTarget(v_forward=1.0))
        ctl.set_target(VelocityTarget(v_forward=5.0))
        assert ctl.target.v_forward == 5.0
        assert ctl.targets_received == 2

    def test_forward_error_commands_acceleration(self):
        ctl = SimpleFlightController()
        ctl.arm()
        ctl.set_target(VelocityTarget(v_forward=3.0, altitude=1.5))
        cmd = ctl.update(DroneState(u=0.0, z=1.5), DT)
        assert cmd.a_forward > 0.0

    def test_overspeed_commands_braking(self):
        ctl = SimpleFlightController()
        ctl.arm()
        ctl.set_target(VelocityTarget(v_forward=1.0, altitude=1.5))
        cmd = ctl.update(DroneState(u=5.0, z=1.5), DT)
        assert cmd.a_forward < 0.0

    def test_yaw_rate_tracking(self):
        ctl = SimpleFlightController()
        ctl.arm()
        ctl.set_target(VelocityTarget(yaw_rate=0.5, altitude=1.5))
        cmd = ctl.update(DroneState(r=0.0, z=1.5), DT)
        assert cmd.yaw_accel > 0.0

    def test_reset_disarms(self):
        ctl = SimpleFlightController()
        ctl.arm()
        ctl.set_target(VelocityTarget(v_forward=3.0))
        ctl.reset()
        assert not ctl.armed
        assert ctl.targets_received == 0


class TestClosedLoopTracking:
    """Controller + dynamics must actually converge to targets."""

    def simulate(self, target: VelocityTarget, seconds: float = 8.0) -> DroneState:
        world = tunnel_world(length=500.0, width=100.0)  # huge: no walls in play
        dyn = QuadrotorDynamics(world, initial_state=DroneState(x=5.0, y=0.0, z=1.5))
        ctl = SimpleFlightController()
        ctl.arm(altitude=target.altitude)
        ctl.set_target(target)
        for _ in range(int(seconds / DT)):
            dyn.step(ctl.update(dyn.state, DT), DT)
        return dyn.state

    def test_converges_to_forward_velocity(self):
        state = self.simulate(VelocityTarget(v_forward=3.0, altitude=1.5))
        assert state.u == pytest.approx(3.0, abs=0.3)

    def test_converges_to_high_velocity(self):
        state = self.simulate(VelocityTarget(v_forward=9.0, altitude=1.5))
        assert state.u == pytest.approx(9.0, abs=0.9)

    def test_holds_altitude(self):
        state = self.simulate(VelocityTarget(v_forward=3.0, altitude=1.5))
        assert state.z == pytest.approx(1.5, abs=0.3)

    def test_tracks_yaw_rate(self):
        state = self.simulate(VelocityTarget(yaw_rate=0.4, altitude=1.5), seconds=2.0)
        assert state.r == pytest.approx(0.4, abs=0.1)

    def test_lateral_velocity_tracked(self):
        state = self.simulate(VelocityTarget(v_lateral=1.0, altitude=1.5))
        assert state.v == pytest.approx(1.0, abs=0.2)
