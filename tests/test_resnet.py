"""Tests for the ResNet variant specs, graphs, and the trainable model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.graph import Graph, OpType
from repro.dnn.resnet import (
    DEFAULT_INPUT_SHAPE,
    RESNET_NAMES,
    TrailNetModel,
    build_all_graphs,
    build_resnet_graph,
    build_trainable_trailnet,
    resnet_spec,
)
from repro.errors import GraphError


class TestSpecs:
    def test_all_variants_present(self):
        assert set(RESNET_NAMES) == {
            "resnet6",
            "resnet11",
            "resnet14",
            "resnet18",
            "resnet34",
        }

    def test_names_ordered_by_depth(self):
        depths = [resnet_spec(n).depth for n in RESNET_NAMES]
        assert depths == sorted(depths)

    @pytest.mark.parametrize(
        "name,depth",
        [("resnet6", 6), ("resnet11", 10), ("resnet14", 14), ("resnet18", 18), ("resnet34", 34)],
    )
    def test_depth_counting(self, name, depth):
        # resnet11 counts 11 with its downsample convs; the formula counts
        # stem + 2/block + head, which is the conventional naming scheme.
        assert abs(resnet_spec(name).depth - depth) <= 1

    def test_unknown_variant(self):
        with pytest.raises(GraphError):
            resnet_spec("resnet50")


class TestGraphs:
    @pytest.fixture(scope="class")
    def graphs(self) -> dict[str, Graph]:
        return build_all_graphs()

    def test_macs_increase_with_depth(self, graphs):
        macs = [graphs[n].total_macs for n in RESNET_NAMES]
        assert macs == sorted(macs)
        assert macs[0] > 0

    def test_params_increase_with_depth(self, graphs):
        params = [graphs[n].total_params for n in RESNET_NAMES]
        assert params == sorted(params)

    def test_dual_head_outputs(self, graphs):
        for graph in graphs.values():
            assert graph.outputs == ["angular_probs", "lateral_probs"]
            for out in graph.outputs:
                node = graph.node(out)
                assert node.op == OpType.SOFTMAX
                assert node.output_shape == (3,)

    def test_heads_share_trunk(self, graphs):
        g = graphs["resnet14"]
        ang = g.node("angular_logits")
        lat = g.node("lateral_logits")
        assert ang.inputs == lat.inputs  # both read the pooled features

    def test_input_shape_default(self, graphs):
        for graph in graphs.values():
            assert graph.input_shape == DEFAULT_INPUT_SHAPE

    def test_custom_input_shape_scales_macs(self):
        small = build_resnet_graph("resnet14", (3, 64, 64))
        large = build_resnet_graph("resnet14", (3, 128, 128))
        assert large.total_macs > 3 * small.total_macs

    def test_resnet18_macs_plausible(self, graphs):
        # ResNet18 at 128x128 should land near 0.6 GMACs (1.8 G at 224x224
        # scaled by (128/224)^2 ~ 0.33).
        assert 0.4e9 < graphs["resnet18"].total_macs < 0.8e9

    def test_residual_adds_present(self, graphs):
        counts = graphs["resnet34"].count_ops()
        assert counts["add"] == 16  # one per block: 3+4+6+3

    def test_graphs_validate(self, graphs):
        for graph in graphs.values():
            graph.validate()  # must not raise

    def test_serialization_round_trip(self, graphs):
        g = graphs["resnet11"]
        g2 = Graph.from_json(g.to_json())
        assert g2.total_macs == g.total_macs


class TestTrainableModel:
    def test_forward_shape(self):
        model = build_trainable_trailnet(seed=0)
        x = np.random.default_rng(0).random((4, 1, 32, 48)).astype(np.float32)
        logits = model.forward(x)
        assert logits.shape == (4, 6)

    def test_predict_probs_normalized(self):
        model = build_trainable_trailnet(seed=0)
        x = np.random.default_rng(0).random((4, 1, 32, 48)).astype(np.float32)
        ang, lat = model.predict_probs(x)
        np.testing.assert_allclose(ang.sum(axis=1), np.ones(4), rtol=1e-5)
        np.testing.assert_allclose(lat.sum(axis=1), np.ones(4), rtol=1e-5)

    def test_backward_runs(self):
        model = build_trainable_trailnet(seed=0)
        x = np.random.default_rng(0).random((4, 1, 32, 48)).astype(np.float32)
        logits = model.forward(x)
        grad = model.backward(np.ones_like(logits))
        assert grad.shape == x.shape

    def test_parameters_trainable(self):
        model = build_trainable_trailnet(seed=0)
        params = model.parameters()
        assert len(params) > 10
        names = [p.name for p in params]
        assert any("stem" in n for n in names)
        assert any("head" in n for n in names)

    def test_seed_determinism(self):
        a = build_trainable_trailnet(seed=3)
        b = build_trainable_trailnet(seed=3)
        x = np.random.default_rng(1).random((2, 1, 32, 48)).astype(np.float32)
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_custom_input_shape(self):
        model = TrailNetModel(input_shape=(1, 16, 16), stage_blocks=(1,), stage_channels=(4,))
        x = np.zeros((2, 1, 16, 16), dtype=np.float32)
        assert model.forward(x).shape == (2, 6)


class TestGraphMemoization:
    def test_same_instance_for_same_key(self):
        assert build_resnet_graph("resnet6") is build_resnet_graph("resnet6")

    def test_distinct_shapes_distinct_graphs(self):
        small = build_resnet_graph("resnet6", (3, 64, 64))
        assert small is not build_resnet_graph("resnet6")

    def test_list_shape_hits_tuple_cache(self):
        # Shape normalization: list and tuple inputs share one entry.
        assert build_resnet_graph("resnet6", [3, 64, 64]) is build_resnet_graph(
            "resnet6", (3, 64, 64)
        )
