"""Tests for the serve JSON API: dispatch, live HTTP server, CLI surface.

:func:`dispatch` is a pure function, so the full routing/validation
matrix runs in-process against a fake-clock service.  One threaded
:class:`ServiceServer` on an ephemeral port covers the transport shim
(bytes in, bytes out) plus the :class:`ServiceClient` and the CLI
``submit``/``status`` subcommands against a real socket.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.core.config import CoSimConfig
from repro.core.manifest import config_to_dict, dump_manifest
from repro.errors import ServeError
from repro.serve import (
    FakeClock,
    ServiceClient,
    ServiceServer,
    SweepService,
    dispatch,
    report_signature,
    run_job_to_completion,
)

PARAMS = {"shards": 2, "lease_seconds": 30.0}


def _tiny_config(seed: int = 0) -> CoSimConfig:
    return CoSimConfig(
        world="tunnel", target_velocity=3.0, max_sim_time=1.0, seed=seed
    )


def _submit_body(n: int = 2) -> dict:
    return {
        "name": "sweep",
        "tasks": [
            {"name": f"seed{s}", "config": config_to_dict(_tiny_config(s))}
            for s in range(n)
        ],
        "params": dict(PARAMS),
    }


@pytest.fixture
def service(tmp_path):
    with SweepService(tmp_path / "serve", clock=FakeClock()) as svc:
        yield svc


# ---------------------------------------------------------------------------
# dispatch(): the whole routing/validation matrix, no sockets
# ---------------------------------------------------------------------------
class TestDispatch:
    def test_healthz(self, service):
        status, payload = dispatch(service, "GET", "/healthz")
        assert status == 200
        assert payload["ok"] is True
        assert payload["format"] == "rose-jobq/1"
        assert payload["fingerprint"] == service.fingerprint

    def test_submit_then_dedup(self, service):
        status, payload = dispatch(service, "POST", "/v1/jobs", _submit_body())
        assert status == 202
        assert payload["disposition"] == "submitted"
        again_status, again = dispatch(service, "POST", "/v1/jobs", _submit_body())
        assert again_status == 200
        assert again["disposition"] == "deduplicated"
        assert again["job"] == payload["job"]

    @pytest.mark.parametrize(
        "body",
        [
            None,
            {"tasks": []},
            {"tasks": "nope"},
            {"tasks": [{"name": "t"}]},  # no config
            {"tasks": [{"config": {"no_such_field": 1}}]},
            {"tasks": [{"config": config_to_dict(_tiny_config())}],
             "params": "nope"},
            {"tasks": [{"config": config_to_dict(_tiny_config())}],
             "params": {"shards": 0}},
        ],
    )
    def test_bad_submissions_are_400(self, service, body):
        status, payload = dispatch(service, "POST", "/v1/jobs", body)
        assert status == 400
        assert "error" in payload

    def test_job_listing_and_status(self, service):
        _, submitted = dispatch(service, "POST", "/v1/jobs", _submit_body())
        status, listing = dispatch(service, "GET", "/v1/jobs")
        assert status == 200
        assert [job["job"] for job in listing["jobs"]] == [submitted["job"]]
        status, payload = dispatch(service, "GET", f"/v1/jobs/{submitted['job']}")
        assert status == 200
        assert payload["state"] == "queued"
        assert payload["tasks"]["total"] == 2

    def test_unknown_job_is_404(self, service):
        for method, path in [
            ("GET", "/v1/jobs/nope"),
            ("GET", "/v1/jobs/nope/report"),
            ("GET", "/v1/jobs/nope/telemetry"),
            ("POST", "/v1/jobs/nope/cancel"),
        ]:
            status, payload = dispatch(service, method, path)
            assert status == 404, path
            assert "error" in payload

    def test_unknown_route_is_404_and_bad_method_is_405(self, service):
        assert dispatch(service, "GET", "/v2/jobs")[0] == 404
        assert dispatch(service, "GET", "/v1/jobs/x/unknown-action")[0] == 404
        assert dispatch(service, "DELETE", "/v1/jobs")[0] == 405

    def test_report_409_until_done_then_signed(self, service):
        _, submitted = dispatch(service, "POST", "/v1/jobs", _submit_body())
        job_id = submitted["job"]
        status, payload = dispatch(service, "GET", f"/v1/jobs/{job_id}/report")
        assert status == 409
        run_job_to_completion(service, job_id)
        status, payload = dispatch(service, "GET", f"/v1/jobs/{job_id}/report")
        assert status == 200
        assert payload["ok"] is True
        assert payload["signature"] == report_signature(service.report(job_id))
        assert [o["name"] for o in payload["outcomes"]] == ["seed0", "seed1"]
        assert all(o["signature"] for o in payload["outcomes"])
        assert all(o["owner"] for o in payload["outcomes"])
        assert json.loads(json.dumps(payload)) == payload  # JSON-safe

    def test_cancel_and_job_telemetry(self, service):
        _, submitted = dispatch(service, "POST", "/v1/jobs", _submit_body())
        job_id = submitted["job"]
        status, payload = dispatch(service, "GET", f"/v1/jobs/{job_id}/telemetry")
        assert status == 200
        assert payload["completed"] == 0
        status, payload = dispatch(service, "POST", f"/v1/jobs/{job_id}/cancel")
        assert status == 200
        assert payload["cancelled"] is True
        assert payload["state"] == "cancelled"

    def test_requests_metric_counts_by_route_and_status(self, service):
        dispatch(service, "GET", "/healthz")
        dispatch(service, "GET", "/v1/jobs/nope")
        status, payload = dispatch(service, "GET", "/v1/telemetry")
        assert status == 200
        registry = service.registry
        assert registry.value(
            "rose_serve_requests_total", route="healthz", status="200"
        ) == 1
        assert registry.value(
            "rose_serve_requests_total", route="job", status="404"
        ) == 1


# ---------------------------------------------------------------------------
# Live socket: server + client + CLI, one ephemeral-port instance
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-live")
    service = SweepService(root, shards=2, poll_seconds=0.01, tick_seconds=0.05)
    service.start()
    server = ServiceServer(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.address
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=10.0)


class TestLiveServer:
    def test_health_round_trip(self, live_server):
        payload = ServiceClient(live_server).health()
        assert payload["ok"] is True

    def test_submit_wait_report_round_trip(self, live_server):
        client = ServiceClient(live_server)
        submitted = client.submit(
            "live-sweep", [("seed0", _tiny_config(0)), ("seed1", _tiny_config(1))]
        )
        status = client.wait(submitted["job"], timeout=120.0, poll_seconds=0.05)
        assert status["state"] == "done"
        report = client.report(submitted["job"])
        assert report["ok"] is True
        assert len(report["outcomes"]) == 2
        assert client.telemetry()["serve"]["rose_serve_leases_granted_total"][
            "series"
        ]

    def test_client_maps_http_errors_to_serve_errors(self, live_server):
        with pytest.raises(ServeError) as excinfo:
            ServiceClient(live_server).status("not-a-job")
        assert excinfo.value.status == 404

    def test_client_maps_connection_failure_to_502(self):
        with pytest.raises(ServeError) as excinfo:
            ServiceClient("http://127.0.0.1:1", timeout=1.0).health()
        assert excinfo.value.status == 502

    def test_bad_json_body_is_400(self, live_server):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            live_server + "/v1/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 400


class TestServeCli:
    @pytest.fixture
    def manifest(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(
            dump_manifest(
                {"seed0": _tiny_config(0), "seed1": _tiny_config(1)}
            )
        )
        return str(path)

    def test_parser_defaults(self):
        from repro.cli import build_parser

        serve = build_parser().parse_args(["serve", "/tmp/root"])
        assert serve.port == 8321 and serve.shards == 2
        submit = build_parser().parse_args(["submit", "m.json", "--wait"])
        assert submit.url == "http://127.0.0.1:8321" and submit.wait

    def test_submit_wait_and_status_exit_zero(self, live_server, manifest,
                                              capsys, tmp_path):
        code = main([
            "submit", manifest, "--url", live_server,
            "--wait", "--timeout", "120",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "done" in out
        job_id = out.split()[1].rstrip(":")
        json_path = tmp_path / "status.json"
        assert main([
            "status", job_id, "--url", live_server,
            "--report", "--telemetry", "--json", str(json_path),
        ]) == 0
        payload = json.loads(json_path.read_text())
        assert payload["status"]["state"] == "done"
        assert payload["report"]["ok"] is True
        assert payload["telemetry"]["completed"] == 2

    def test_status_listing(self, live_server, capsys):
        client = ServiceClient(live_server)
        submitted = client.submit("listing", [("seed0", _tiny_config(0))])
        client.wait(submitted["job"], timeout=120.0, poll_seconds=0.05)
        assert main(["status", "--url", live_server]) == 0
        out = capsys.readouterr().out
        assert submitted["job"] in out
        assert "done" in out

    def test_unknown_job_exits_two(self, live_server, capsys):
        assert main(["status", "not-a-job", "--url", live_server]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unreachable_service_exits_two(self, manifest, capsys):
        assert main([
            "submit", manifest, "--url", "http://127.0.0.1:1",
        ]) == 2
        assert "error:" in capsys.readouterr().err
