"""Tests for the analysis package (table/figure data generators)."""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    fig12_data,
    fig15_data,
    fig16_data,
    table2_rows,
    table3_rows,
    table4_rows,
)
from repro.analysis.render import format_table
from repro.app.mission import (
    compare_static_dynamic,
    sweep_models,
    sweep_sync_granularity,
    sweep_velocities,
)
from repro.core.config import CoSimConfig
from repro.core.deploy import CLOUD_AWS, ON_PREMISE


class TestRender:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) <= max(len(l) for l in lines) for line in lines)

    def test_title(self):
        text = format_table(["h"], [["v"]], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_separator_row(self):
        text = format_table(["col"], [["val"]])
        assert "---" in text.splitlines()[1]


class TestTables:
    def test_table2(self):
        rows = table2_rows()
        assert rows == [
            ("A", "3-wide BOOM", "Gemmini"),
            ("B", "Rocket", "Gemmini"),
            ("C", "3-wide BOOM", "None"),
        ]

    def test_table3_shape(self):
        rows = table3_rows(accuracy_samples=800)
        assert [r["model"] for r in rows] == [
            "resnet6",
            "resnet11",
            "resnet14",
            "resnet18",
            "resnet34",
        ]
        for row in rows:
            assert row["latency_rocket_ms"] > row["latency_boom_ms"]
            assert row["accuracy"] == pytest.approx(row["target_accuracy"], abs=0.06)
        accs = [r["accuracy"] for r in rows]
        assert accs[-1] > accs[0]  # deeper -> more accurate

    def test_table4(self):
        deployments = table4_rows()
        assert deployments["on-premise"] is ON_PREMISE
        assert deployments["cloud-aws"] is CLOUD_AWS


class TestPerfFigures:
    def test_fig15_monotone_saturating(self):
        points = fig15_data()
        rates = [p.throughput_mhz for p in points]
        assert rates == sorted(rates)
        assert rates[-1] <= ON_PREMISE.perf.fpga_sim_rate_mhz
        # Fine granularity is far below the FPGA bound.
        assert rates[0] < 0.5 * rates[-1]

    def test_fig15_sync_only_upper_bound(self):
        for point in fig15_data():
            assert point.sync_only_mhz >= point.throughput_mhz

    def test_fig15_cloud_slower_at_fine_granularity(self):
        on_prem = fig15_data(ON_PREMISE)[0]
        cloud = fig15_data(CLOUD_AWS)[0]
        assert cloud.throughput_mhz < on_prem.throughput_mhz


class TestClosedLoopDataGenerators:
    """Smoke tests with truncated missions (full sweeps live in benches)."""

    def test_fig12_structure(self):
        data = fig12_data(seeds=(0,), velocities=(9.0,))
        entry = data[9.0]
        assert entry["runs"] == 1
        assert entry["mean_mission_time"] > 0

    def test_fig16_latency_monotone_at_extremes(self):
        data = fig16_data(granularities=(10_000_000, 400_000_000))
        fine = data[10_000_000]
        coarse = data[400_000_000]
        assert coarse.mean_inference_latency_ms > fine.mean_inference_latency_ms


class TestMissionSweepHelpers:
    BASE = CoSimConfig(world="tunnel", model="resnet6", target_velocity=3.0, max_sim_time=4.0)

    def test_sweep_models_keys(self):
        results = sweep_models(self.BASE, models=("resnet6",))
        assert set(results) == {"resnet6"}

    def test_sweep_velocities_keys(self):
        results = sweep_velocities(self.BASE, velocities=(3.0,))
        assert set(results) == {3.0}
        assert results[3.0].config.target_velocity == 3.0

    def test_sweep_sync_granularity(self):
        results = sweep_sync_granularity(self.BASE, cycles_per_sync=(10_000_000,))
        assert results[10_000_000].config.sync.cycles_per_sync == 10_000_000

    def test_compare_static_dynamic_keys(self):
        results = compare_static_dynamic(self.BASE, static_models=("resnet6",))
        assert set(results) == {"resnet6", "dynamic"}
        assert results["dynamic"].config.dynamic_runtime
