"""Tests for the energy model and roofline safety analysis."""

from __future__ import annotations

import pytest

from repro.app.roofline import (
    ControllerSafety,
    max_safe_velocity,
    min_required_depth,
    safe_velocity_curve,
)
from repro.errors import ConfigError
from repro.soc.energy import EnergyParams, EnergyReport, estimate_energy, soc_energy
from repro.soc.soc import CONFIG_A, Soc


class TestEnergyModel:
    def test_breakdown_sums(self):
        report = estimate_energy(
            total_cycles=1_000_000_000,
            cpu_busy_cycles=400_000_000,
            gemmini_busy_cycles=300_000_000,
        )
        assert report.total_mj == pytest.approx(
            report.cpu_mj + report.gemmini_mj + report.leakage_mj
        )
        assert report.dynamic_mj == pytest.approx(report.cpu_mj + report.gemmini_mj)

    def test_known_values(self):
        params = EnergyParams(
            cpu_active_pj_per_cycle=100.0,
            gemmini_active_pj_per_cycle=200.0,
            leakage_mw=10.0,
            frequency_hz=1e9,
        )
        report = estimate_energy(1_000_000_000, 500_000_000, 250_000_000, params)
        assert report.cpu_mj == pytest.approx(50.0)  # 0.5e9 * 100 pJ
        assert report.gemmini_mj == pytest.approx(50.0)
        assert report.leakage_mj == pytest.approx(10.0)  # 10 mW * 1 s

    def test_idle_soc_pays_leakage_only(self):
        report = estimate_energy(10**9, 0, 0)
        assert report.dynamic_mj == 0.0
        assert report.leakage_mj > 0.0

    def test_busy_exceeding_total_rejected(self):
        with pytest.raises(ConfigError):
            estimate_energy(100, 200, 0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError):
            estimate_energy(-1, 0, 0)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            EnergyParams(leakage_mw=-1.0)
        with pytest.raises(ConfigError):
            EnergyParams(frequency_hz=0.0)

    def test_average_power(self):
        report = EnergyReport(cpu_mj=30.0, gemmini_mj=20.0, leakage_mj=50.0)
        assert report.average_power_mw(2.0) == pytest.approx(50.0)
        with pytest.raises(ConfigError):
            report.average_power_mw(0.0)

    def test_soc_energy_reads_counters(self):
        soc = Soc(CONFIG_A)

        def program(rt):
            yield from rt.compute(1_000_000)

        soc.load_program(program)
        soc.step(2_000_000)
        report = soc_energy(soc)
        assert report.cpu_mj > 0
        assert report.total_mj > report.cpu_mj  # leakage adds

    def test_lower_activity_is_lower_energy(self):
        """Figure 13's energy motivation: fewer busy cycles, less energy."""
        busy = estimate_energy(10**9, 10**8, 6 * 10**8)
        idle = estimate_energy(10**9, 10**8, 3 * 10**8)
        assert idle.total_mj < busy.total_mj


class TestRoofline:
    def test_equation_inversion(self):
        # v = D / (ts + tp + ta)
        v = max_safe_velocity(10.0, 0.5, sensor_latency_s=0.25, actuation_latency_s=0.25)
        assert v == pytest.approx(10.0)

    def test_round_trip_with_min_depth(self):
        v = max_safe_velocity(12.0, 0.3)
        depth = min_required_depth(v, 0.3)
        assert depth == pytest.approx(12.0)

    def test_faster_dnn_flies_faster(self):
        slow = max_safe_velocity(10.0, 0.225)  # ResNet34-class latency
        fast = max_safe_velocity(10.0, 0.077)  # ResNet6-class latency
        assert fast > slow

    def test_zero_latency_unbounded(self):
        assert max_safe_velocity(10.0, 0.0, 0.0, 0.0) == float("inf")

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigError):
            max_safe_velocity(-1.0, 0.1)
        with pytest.raises(ConfigError):
            max_safe_velocity(1.0, -0.1)
        with pytest.raises(ConfigError):
            min_required_depth(-1.0, 0.1)

    def test_curve_sorted_fastest_first(self):
        curve = safe_velocity_curve(
            {"resnet6": 0.077, "resnet14": 0.085, "resnet34": 0.225}, depth_m=15.0
        )
        assert [c.name for c in curve] == ["resnet6", "resnet14", "resnet34"]
        velocities = [c.max_safe_velocity for c in curve]
        assert velocities == sorted(velocities, reverse=True)
        assert all(isinstance(c, ControllerSafety) for c in curve)
