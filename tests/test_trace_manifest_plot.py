"""Tests for tracing, experiment manifests, and terminal plotting."""

from __future__ import annotations

import json

import pytest

from repro import CoSimConfig, SyncConfig, run_mission
from repro.analysis.plot import sparkline, trajectory_plot
from repro.core.manifest import (
    MANIFEST_FORMAT,
    config_from_dict,
    config_to_dict,
    dump_manifest,
    load_manifest,
)
from repro.core.trace import TraceEvent, Tracer
from repro.env.worlds import tunnel_world
from repro.errors import ConfigError


class TestTracer:
    def test_instant_and_span(self):
        tracer = Tracer()
        tracer.instant("CAMERA_REQ", "packet", 0.5, track="io")
        tracer.span("sync-step 0", "sync", 0.0, 0.01, step=0)
        assert len(tracer) == 2
        assert tracer.by_category("packet")[0].name == "CAMERA_REQ"
        assert tracer.by_category("sync")[0].duration_s == 0.01

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.instant("x", "c", 0.0)
        tracer.span("y", "c", 0.0, 1.0)
        assert len(tracer) == 0

    def test_chrome_trace_schema(self):
        tracer = Tracer()
        tracer.span("sync-step 0", "sync", 0.0, 0.01)
        tracer.instant("IMU_REQ", "packet", 0.005, track="io")
        data = json.loads(tracer.to_chrome_trace())
        events = data["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i"} <= phases
        span = next(e for e in events if e["ph"] == "X")
        assert span["ts"] == 0.0
        assert span["dur"] == pytest.approx(10_000.0)  # 10 ms in us
        # Distinct tracks get distinct tids.
        tids = {e["tid"] for e in events if e["ph"] != "M"}
        assert len(tids) == 2

    def test_write(self, tmp_path):
        tracer = Tracer()
        tracer.instant("x", "c", 0.0)
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        assert json.loads(path.read_text())["traceEvents"]

    def test_mission_tracing_end_to_end(self):
        tracer = Tracer()
        config = CoSimConfig(
            world="tunnel", model="resnet6", target_velocity=3.0, max_sim_time=3.0
        )
        run_mission(config, tracer=tracer)
        sync_steps = tracer.by_category("sync")
        # 3 s at 10 ms per step (+1 possible from float accumulation).
        assert 300 <= len(sync_steps) <= 301
        assert tracer.by_category("packet-from-rtl")
        assert tracer.by_category("packet-to-rtl")
        # The trace exports without error and is substantial.
        assert len(tracer.to_chrome_trace()) > 10_000


class TestManifest:
    def test_round_trip(self):
        config = CoSimConfig(
            world="s-shape",
            soc="B",
            model="resnet6",
            target_velocity=9.0,
            sync=SyncConfig(cycles_per_sync=50_000_000),
            dynamic_runtime=False,
            seed=7,
            world_params={"amplitude": 8.0},
        )
        restored = config_from_dict(config_to_dict(config))
        assert restored == config

    def test_manifest_round_trip(self):
        configs = {
            "fig10-a": CoSimConfig(world="tunnel", soc="A"),
            "fig11-r6": CoSimConfig(world="s-shape", model="resnet6", target_velocity=9.0),
        }
        restored = load_manifest(dump_manifest(configs))
        assert restored == configs

    def test_manifest_format_stamped(self):
        data = json.loads(dump_manifest({"x": CoSimConfig()}))
        assert data["format"] == MANIFEST_FORMAT

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigError):
            load_manifest("{nope")

    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigError):
            load_manifest('{"format": "other/9", "experiments": {}}')

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigError):
            config_from_dict({"world": "tunnel", "warp_drive": True})

    def test_validation_still_applies(self):
        with pytest.raises(ConfigError):
            config_from_dict({"target_velocity": -1.0})


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([5, 5, 5, 5])
        assert len(line) == 4
        assert len(set(line)) == 1

    def test_monotone_series_rises(self):
        line = sparkline(range(10))
        assert line[0] == " "
        assert line[-1] == "@"

    def test_downsampling(self):
        line = sparkline(range(1000), width=50)
        assert len(line) == 50


class TestTrajectoryPlot:
    def test_renders_walls_and_path(self):
        world = tunnel_world()

        class P:
            def __init__(self, x, y):
                self.x, self.y = x, y

        samples = [P(x, 0.0) for x in range(1, 49)]
        text = trajectory_plot(world, {"a-run": samples}, width=80, height=12)
        lines = text.splitlines()
        assert len(lines) == 13  # raster + legend
        assert any("#" in line for line in lines)  # walls
        assert any("a" in line for line in lines)  # trajectory glyph
        assert "a=a-run" in lines[-1]

    def test_multiple_trajectories(self):
        world = tunnel_world()

        class P:
            def __init__(self, x, y):
                self.x, self.y = x, y

        text = trajectory_plot(
            world,
            {"a": [P(10, 0.5)], "b": [P(20, -0.5)]},
            width=60,
            height=10,
        )
        assert "a" in text and "b" in text
