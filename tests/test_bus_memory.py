"""Tests for the system bus and memory models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.soc.bus import SystemBus
from repro.soc.memory import DramModel, Sram


class TestSystemBus:
    def test_default_is_128_bit(self):
        bus = SystemBus()
        assert bus.bytes_per_beat == 16

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigError):
            SystemBus(width_bits=13)

    def test_transfer_cycles_single_beat(self):
        bus = SystemBus(width_bits=128, latency_cycles=10)
        assert bus.transfer_cycles(16) == 11
        assert bus.transfer_cycles(1) == 11

    def test_transfer_cycles_multi_beat(self):
        bus = SystemBus(width_bits=128, latency_cycles=10)
        assert bus.transfer_cycles(160) == 20

    def test_zero_transfer(self):
        bus = SystemBus(latency_cycles=10)
        assert bus.transfer_cycles(0) == 10

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            SystemBus().transfer_cycles(-1)

    def test_counters_accumulate(self):
        bus = SystemBus()
        bus.transfer_cycles(32)
        bus.transfer_cycles(32)
        assert bus.bytes_transferred == 64
        assert bus.transfer_cycles_total > 0

    def test_streaming_cycles(self):
        bus = SystemBus(width_bits=128)
        assert bus.streaming_cycles(1600) == 100.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_transfer_at_least_latency(self, nbytes):
        bus = SystemBus(latency_cycles=7)
        assert bus.transfer_cycles(nbytes) >= 7


class TestMmioRouting:
    def test_route_to_registered_region(self):
        bus = SystemBus()
        bus.register_region("dev", 0x1000, 0x100)
        assert bus.route(0x1050).name == "dev"

    def test_route_unmapped_raises(self):
        bus = SystemBus()
        with pytest.raises(ConfigError):
            bus.route(0xDEAD)

    def test_overlapping_regions_rejected(self):
        bus = SystemBus()
        bus.register_region("a", 0x1000, 0x100)
        with pytest.raises(ConfigError):
            bus.register_region("b", 0x1080, 0x100)

    def test_adjacent_regions_allowed(self):
        bus = SystemBus()
        bus.register_region("a", 0x1000, 0x100)
        bus.register_region("b", 0x1100, 0x100)
        assert bus.route(0x10FF).name == "a"
        assert bus.route(0x1100).name == "b"


class TestDram:
    def test_stream_cycles(self):
        dram = DramModel(bandwidth_bytes_per_cycle=16, latency_cycles=30)
        assert dram.stream_cycles(160) == pytest.approx(40.0)

    def test_zero_stream_free(self):
        assert DramModel().stream_cycles(0) == 0.0

    def test_random_access(self):
        dram = DramModel(latency_cycles=30)
        assert dram.random_access_cycles(10) == 300

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigError):
            DramModel(bandwidth_bytes_per_cycle=0)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ConfigError):
            DramModel().stream_cycles(-1)
        with pytest.raises(ConfigError):
            DramModel().random_access_cycles(-1)


class TestSram:
    def test_alloc_and_offsets(self):
        sram = Sram("sp", 1024)
        assert sram.alloc(100) == 0
        assert sram.alloc(100) == 100
        assert sram.allocated_bytes == 200
        assert sram.free_bytes == 824

    def test_overflow_raises(self):
        sram = Sram("sp", 128)
        sram.alloc(100)
        with pytest.raises(ConfigError):
            sram.alloc(100)

    def test_reset(self):
        sram = Sram("sp", 128)
        sram.alloc(100)
        sram.reset()
        assert sram.free_bytes == 128

    def test_fits(self):
        sram = Sram("sp", 128)
        assert sram.fits(128)
        assert not sram.fits(129)

    def test_passes_required(self):
        sram = Sram("sp", 100)
        assert sram.passes_required(0) == 1
        assert sram.passes_required(100) == 1
        assert sram.passes_required(101) == 2
        assert sram.passes_required(1000) == 10

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            Sram("sp", 0)

    @given(st.integers(1, 10_000), st.integers(1, 10_000))
    @settings(max_examples=30)
    def test_passes_cover_buffer(self, capacity, nbytes):
        sram = Sram("sp", capacity)
        passes = sram.passes_required(nbytes)
        assert passes * capacity >= nbytes
        assert (passes - 1) * capacity < nbytes
