"""Tests for repro.app.monitor (background DNN contention workload)."""

from __future__ import annotations

import pytest

from repro.app.monitor import MonitorConfig, MonitorStats, dnn_monitor_app
from repro.core.config import CoSimConfig
from repro.core.cosim import run_mission
from repro.errors import ConfigError
from repro.soc.iodev import REG_CYCLE
from repro.soc.program import TargetRuntime


class TestMonitorConfig:
    def test_default_rate(self):
        assert MonitorConfig().rate_hz == 10.0

    @pytest.mark.parametrize("rate", [0.0, -5.0])
    def test_non_positive_rate_rejected(self, rate):
        with pytest.raises(ConfigError):
            MonitorConfig(rate_hz=rate)


class TestMonitorStats:
    def test_mean_latency(self):
        stats = MonitorStats(inferences=4, total_cycles=8_000_000)
        assert stats.mean_latency_cycles == 2_000_000

    def test_mean_latency_empty_is_zero(self):
        assert MonitorStats().mean_latency_cycles == 0.0


class FakeSession:
    pass


class FakeCpu:
    frequency_hz = 1e9


class FakeReport:
    total_cycles = 2_000_000


def drive_monitor(app, iterations: int) -> tuple[int, list[int]]:
    """Interpret the generator's ops with a minimal fake engine.

    Returns the final cycle count and the delay lengths the app slept.
    """
    cycle = 0
    delays: list[int] = []
    inferences = 0
    op = app.send(None)
    while inferences < iterations:
        kind = op[0]
        if kind == "mmio_read":
            assert op[1] == REG_CYCLE  # the monitor only reads the clock
            op = app.send(cycle)
        elif kind == "inference":
            cycle += FakeReport.total_cycles
            inferences += 1
            op = app.send(FakeReport())
        elif kind in ("delay", "cpu"):
            cycle += op[1]
            if kind == "delay":
                delays.append(op[1])
            op = app.send(None)
        else:  # pragma: no cover - unexpected op means the test must fail
            raise AssertionError(f"unexpected op {op!r}")
    return cycle, delays


class TestMonitorApp:
    def test_periodic_cadence(self):
        stats = MonitorStats()
        app = dnn_monitor_app(
            TargetRuntime(),
            FakeSession(),
            FakeCpu(),
            config=MonitorConfig(rate_hz=10.0),
            stats=stats,
        )
        cycle, delays = drive_monitor(app, iterations=3)
        period = int(FakeCpu.frequency_hz / 10.0)
        assert stats.inferences == 3
        assert stats.total_cycles == 3 * FakeReport.total_cycles
        assert stats.mean_latency_cycles == FakeReport.total_cycles
        # Each completed iteration sleeps the period remainder (the driver
        # stops mid-iteration after the final inference, so 2 full sleeps).
        assert delays == [period - FakeReport.total_cycles] * 2

    def test_no_sleep_when_inference_exceeds_period(self):
        # At 1 kHz the period (1M cycles) is shorter than the 2M-cycle
        # inference: the app must not sleep (and must not sleep negative).
        stats = MonitorStats()
        app = dnn_monitor_app(
            TargetRuntime(),
            FakeSession(),
            FakeCpu(),
            config=MonitorConfig(rate_hz=1000.0),
            stats=stats,
        )
        _, delays = drive_monitor(app, iterations=3)
        assert delays == []


class TestMonitorIntegration:
    def test_background_monitor_runs_and_is_observable(self):
        result = run_mission(
            CoSimConfig(
                world="tunnel",
                model="resnet6",
                target_velocity=3.0,
                max_sim_time=5.0,
                background="dnn-monitor",
            )
        )
        stats = result.monitor_stats
        assert stats is not None
        assert stats.inferences > 0
        assert stats.mean_latency_cycles > 0
        # Both tenants' inferences land in the per-model app counter via
        # their own sessions; the SoC-level counter sees the total.
        snap = result.obs.metrics
        soc_inferences = sum(
            row["value"] for row in snap["rose_soc_inferences_total"]["series"]
        )
        assert soc_inferences >= stats.inferences + result.inference_count
