"""Tests for the sweep engine: determinism, caching, fingerprinting."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.config import CoSimConfig
from repro.core.cosim import run_mission
from repro.sweep import (
    ResultCache,
    SweepRunner,
    SweepTask,
    code_fingerprint,
    config_key,
    mission_signature,
    sweep_missions,
)


def _tiny_config(seed: int = 0) -> CoSimConfig:
    """A mission short enough to run many times in a test."""
    return CoSimConfig(
        world="tunnel", target_velocity=3.0, max_sim_time=3.0, seed=seed
    )


@pytest.fixture(scope="module")
def tiny_configs():
    return [_tiny_config(seed) for seed in range(4)]


@pytest.fixture(scope="module")
def serial_signatures(tiny_configs):
    report = SweepRunner(workers=1).run(tiny_configs)
    return [mission_signature(result) for result in report.results()]


class TestConfigKey:
    def test_stable_across_equal_configs(self):
        assert config_key(_tiny_config(3)) == config_key(_tiny_config(3))

    def test_sensitive_to_any_field(self):
        base = _tiny_config(0)
        assert config_key(base) != config_key(replace(base, seed=1))
        assert config_key(base) != config_key(replace(base, target_velocity=4.0))

    def test_fingerprint_is_stable_hex(self):
        fingerprint = code_fingerprint()
        assert fingerprint == code_fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)


class TestDeterminism:
    """The hard invariant: serial == parallel == cache-hit, bitwise."""

    def test_parallel_matches_serial(self, tiny_configs, serial_signatures):
        report = SweepRunner(workers=2).run(tiny_configs)
        parallel = [mission_signature(result) for result in report.results()]
        assert parallel == serial_signatures

    def test_warm_cache_matches_serial(
        self, tiny_configs, serial_signatures, tmp_path
    ):
        SweepRunner(workers=1, cache=ResultCache(tmp_path)).run(tiny_configs)
        warm = SweepRunner(workers=1, cache=ResultCache(tmp_path)).run(tiny_configs)
        assert all(outcome.from_cache for outcome in warm.outcomes)
        cached = [mission_signature(result) for result in warm.results()]
        assert cached == serial_signatures

    def test_signature_matches_direct_run_mission(
        self, tiny_configs, serial_signatures
    ):
        assert mission_signature(run_mission(tiny_configs[0])) == serial_signatures[0]

    def test_signature_ignores_stage_timings(self, tiny_configs):
        result = run_mission(tiny_configs[1])
        before = mission_signature(result)
        result.stage_timings = {"env_step": 123.0}
        assert mission_signature(result) == before

    def test_results_preserve_task_order(self, tiny_configs):
        report = SweepRunner(workers=2).run(
            [SweepTask(f"s{i}", config) for i, config in enumerate(tiny_configs)]
        )
        assert [outcome.name for outcome in report.outcomes] == [
            "s0",
            "s1",
            "s2",
            "s3",
        ]
        assert [outcome.config.seed for outcome in report.outcomes] == [0, 1, 2, 3]


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _tiny_config(0)
        assert cache.get(config) is None
        result = run_mission(config)
        cache.put(config, result)
        again = cache.get(config)
        assert again is not None
        assert mission_signature(again) == mission_signature(result)
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1, "corrupt": 0}

    def test_entries_scoped_by_fingerprint(self, tmp_path):
        config = _tiny_config(0)
        cache = ResultCache(tmp_path, fingerprint="a" * 64)
        cache.put(config, run_mission(config))
        other = ResultCache(tmp_path, fingerprint="b" * 64)
        assert other.get(config) is None

    def test_corrupt_entry_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _tiny_config(0)
        path = cache.put(config, run_mission(config))
        path.write_bytes(b"not a pickle")
        assert cache.get(config) is None
        assert not path.exists()  # key vacated for the recompute
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.is_file()  # evidence preserved, not deleted
        assert quarantined.read_bytes() == b"not a pickle"
        assert cache.corrupt == 1
        assert cache.stats()["corrupt"] == 1
        report = SweepRunner(workers=1, cache=cache).run([config])
        assert not report.outcomes[0].from_cache
        metrics = report.sweep_metrics or {}
        series = metrics.get("rose_cache_corrupt_total", {}).get("series", [])
        assert sum(row["value"] for row in series) == 1

    def test_prune_removes_other_fingerprints(self, tmp_path):
        config = _tiny_config(0)
        result = run_mission(config)
        stale = ResultCache(tmp_path, fingerprint="c" * 64)
        stale.put(config, result)
        live = ResultCache(tmp_path)
        live.put(config, result)
        assert live.prune() == 1
        assert live.get(config) is not None

    def test_stage_timings_recorded(self):
        result = run_mission(_tiny_config(0))
        assert result.stage_timings is not None
        assert result.stage_timings["env_step"] > 0.0
        assert result.stage_timings["soc_step"] > 0.0


class TestSweepMissions:
    def test_env_default_is_serial_uncached(self, tiny_configs, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
        results = sweep_missions(tiny_configs[:2])
        assert len(results) == 2

    def test_env_cache_dir_enables_cache(self, tiny_configs, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        sweep_missions(tiny_configs[:2])
        # Second call should be served from the cache directory.
        results = sweep_missions(tiny_configs[:2])
        assert len(list(tmp_path.rglob("*.pkl"))) == 2
        assert len(results) == 2


class TestCacheKeyCoversFullConfig:
    """Regression: the cache key must include the fault plan and the
    invariant-check flag — a stale hit across either would silently
    return the wrong mission."""

    def test_fault_plan_changes_key(self):
        from repro.core.faults import FaultPlan

        base = _tiny_config(0)
        faulty = replace(base, faults=FaultPlan.sensor_response_drop(0.2, seed=3))
        assert config_key(base) != config_key(faulty)
        # Different plans differ from each other too, not just from None.
        other = replace(base, faults=FaultPlan.sensor_response_drop(0.2, seed=4))
        assert config_key(faulty) != config_key(other)

    def test_invariant_flag_changes_key(self):
        base = _tiny_config(0)
        assert config_key(base) != config_key(replace(base, check_invariants=True))
        assert config_key(replace(base, check_invariants=True)) != config_key(
            replace(base, check_invariants=False)
        )

    def test_no_stale_hit_across_fault_plans(self, tmp_path):
        from repro.core.faults import FaultPlan

        cache = ResultCache(tmp_path)
        clean = _tiny_config(0)
        cache.put(clean, run_mission(clean))
        faulty = replace(clean, faults=FaultPlan.sensor_response_drop(0.5, seed=1))
        assert cache.get(faulty) is None  # must NOT serve the clean result

    def test_no_stale_hit_across_invariant_flag(self, tmp_path):
        cache = ResultCache(tmp_path)
        on = _tiny_config(0)
        cache.put(on, run_mission(on))
        assert cache.get(replace(on, check_invariants=True)) is None


class TestSweepResume:
    """Resuming a sweep over a damaged cache recomputes only the damage."""

    def test_one_corrupt_one_valid(self, tmp_path):
        configs = [_tiny_config(0), _tiny_config(1)]
        first = SweepRunner(workers=1, cache=ResultCache(tmp_path)).run(configs)
        baseline = [mission_signature(r) for r in first.results()]

        # Damage exactly one entry on disk.
        cache = ResultCache(tmp_path)
        corrupt_path = cache._path(cache.key_for(configs[0]))
        assert corrupt_path.is_file()
        corrupt_path.write_bytes(b"\x00 damaged pickle \x00")

        resumed = SweepRunner(workers=1, cache=cache).run(configs)
        assert [o.from_cache for o in resumed.outcomes] == [False, True]
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1, "corrupt": 1}
        # The re-executed mission is bit-identical to the original run.
        assert [mission_signature(r) for r in resumed.results()] == baseline
        # And the repaired entry now serves warm.
        warm = SweepRunner(workers=1, cache=ResultCache(tmp_path)).run(configs)
        assert all(o.from_cache for o in warm.outcomes)
        assert [mission_signature(r) for r in warm.results()] == baseline
