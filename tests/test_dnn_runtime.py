"""Tests for the DNN runtime (ONNX-Runtime analog)."""

from __future__ import annotations

import pytest

from repro.dnn.graph import GraphBuilder
from repro.dnn.resnet import RESNET_NAMES, build_all_graphs, build_resnet_graph
from repro.dnn.runtime import (
    SESSION_SWITCH_CYCLES,
    InferenceSession,
    latency_table,
)
from repro.soc.cpu import boom_core, rocket_core
from repro.soc.gemmini import default_gemmini

#: Table 3's latency columns (ms).
PAPER_BOOM = {"resnet6": 77, "resnet11": 83, "resnet14": 85, "resnet18": 130, "resnet34": 225}
PAPER_ROCKET = {"resnet6": 101, "resnet11": 108, "resnet14": 125, "resnet18": 185, "resnet34": 300}


@pytest.fixture(scope="module")
def graphs():
    return build_all_graphs()


class TestPlacement:
    def test_matmuls_on_gemmini(self, graphs):
        session = InferenceSession(graphs["resnet14"], boom_core(), default_gemmini())
        for cost in session.report.node_costs:
            if cost.op in ("conv", "linear"):
                assert cost.backend == "gemmini"
            else:
                assert cost.backend == "cpu"

    def test_cpu_fallback_without_gemmini(self, graphs):
        session = InferenceSession(graphs["resnet14"], boom_core(), None)
        assert all(c.backend == "cpu" for c in session.report.node_costs)
        assert session.report.gemmini_cycles == 0

    def test_flatten_free(self):
        b = GraphBuilder("g", (4, 8, 8))
        b.globalavgpool()
        b.linear(3)
        b.softmax()
        b.output()
        session = InferenceSession(b.build(), boom_core(), None)
        # No flatten in this graph; just sanity that INPUT costs nothing.
        input_cost = session.report.node_costs[0]
        assert input_cost.cycles == 0


class TestReports:
    def test_total_is_sum_of_parts(self, graphs):
        session = InferenceSession(graphs["resnet6"], boom_core(), default_gemmini())
        report = session.report
        node_sum = sum(c.cycles for c in report.node_costs)
        assert report.total_cycles == (
            node_sum + report.dispatch_cycles + report.session_fixed_cycles
        )
        assert report.cpu_cycles == report.total_cycles - report.gemmini_cycles

    def test_latency_units(self, graphs):
        session = InferenceSession(graphs["resnet6"], boom_core(), default_gemmini())
        report = session.report
        assert report.latency_ms(1e9) == pytest.approx(report.total_cycles / 1e6)
        assert report.latency_seconds(1e9) == pytest.approx(report.total_cycles / 1e9)

    def test_run_is_deterministic(self, graphs):
        session = InferenceSession(graphs["resnet6"], boom_core(), default_gemmini())
        assert session.run() == session.run()
        assert session.inferences_run == 2

    def test_run_accounts_gemmini(self, graphs):
        gemmini = default_gemmini()
        session = InferenceSession(graphs["resnet6"], boom_core(), gemmini)
        session.run()
        assert gemmini.busy_cycles == session.report.gemmini_cycles


class TestTable3Shape:
    """The modeled latencies must reproduce Table 3's qualitative shape."""

    def test_latency_monotone_in_depth(self, graphs):
        table = latency_table(graphs, boom_core(), default_gemmini())
        latencies = [table[n].latency_ms() for n in RESNET_NAMES]
        assert latencies == sorted(latencies)

    def test_rocket_slower_than_boom(self, graphs):
        boom = latency_table(graphs, boom_core(), default_gemmini())
        rocket = latency_table(graphs, rocket_core(), default_gemmini())
        for name in RESNET_NAMES:
            assert rocket[name].total_cycles > boom[name].total_cycles

    @pytest.mark.parametrize("name", RESNET_NAMES)
    def test_boom_latency_within_2x_of_paper(self, graphs, name):
        table = latency_table(graphs, boom_core(), default_gemmini())
        measured = table[name].latency_ms()
        paper = PAPER_BOOM[name]
        assert paper / 2 < measured < paper * 2

    @pytest.mark.parametrize("name", RESNET_NAMES)
    def test_rocket_latency_within_2x_of_paper(self, graphs, name):
        table = latency_table(graphs, rocket_core(), default_gemmini())
        measured = table[name].latency_ms()
        paper = PAPER_ROCKET[name]
        assert paper / 2 < measured < paper * 2

    def test_resnet34_to_resnet14_ratio(self, graphs):
        # Paper: 225/85 = 2.6x on BOOM.  Shape check: clearly super-2x.
        table = latency_table(graphs, boom_core(), default_gemmini())
        ratio = table["resnet34"].total_cycles / table["resnet14"].total_cycles
        assert 1.8 < ratio < 3.5

    def test_cpu_only_resnet14_near_6s(self, graphs):
        """Section 5.1: ~6 s image-to-target latency on BOOM without
        Gemmini."""
        table = latency_table(graphs, boom_core(), None)
        seconds = table["resnet14"].latency_seconds(1e9)
        assert 4.0 < seconds < 8.0

    def test_gemmini_speedup_large(self, graphs):
        with_acc = latency_table(graphs, boom_core(), default_gemmini())
        without = latency_table(graphs, boom_core(), None)
        speedup = without["resnet14"].total_cycles / with_acc["resnet14"].total_cycles
        assert speedup > 20


class TestSessionSwitch:
    def test_switch_cost_positive(self):
        assert SESSION_SWITCH_CYCLES > 0

    def test_two_sessions_independent(self, graphs):
        gemmini = default_gemmini()
        hi = InferenceSession(graphs["resnet14"], boom_core(), gemmini)
        lo = InferenceSession(graphs["resnet6"], boom_core(), gemmini)
        hi.run()
        lo.run()
        assert hi.inferences_run == 1
        assert lo.inferences_run == 1
        assert gemmini.busy_cycles == (
            hi.report.gemmini_cycles + lo.report.gemmini_cycles
        )
