"""Tests for the numpy NN layer library, including numeric gradient checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnn.layers import (
    BatchNorm2d,
    Conv2d,
    CrossEntropyLoss,
    DualHead,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Relu,
    ResidualBlock,
    Sequential,
    col2im,
    im2col,
    softmax,
)

RNG = np.random.default_rng(42)


def numeric_gradient(f, x, eps=1e-3):
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f()
        flat[i] = orig - eps
        f_minus = f()
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def check_input_gradient(layer, x, atol=2e-2):
    """Compare layer.backward against a numeric gradient of sum(output).

    Comparison is on the relative norm of the difference rather than
    elementwise: central differences are unreliable for the handful of
    elements whose pre-activations sit within epsilon of a ReLU kink.
    """
    x = x.astype(np.float64)

    def loss():
        return float(layer.forward(x).sum())

    loss()  # populate cache
    analytic = layer.backward(np.ones_like(layer.forward(x)))
    numeric = numeric_gradient(loss, x)
    error = np.linalg.norm(analytic - numeric) / (np.linalg.norm(numeric) + 1.0)
    assert error < atol, f"gradient mismatch: relative error {error:.4f}"


class TestIm2col:
    def test_shapes(self):
        x = RNG.random((2, 3, 8, 8)).astype(np.float32)
        cols, oh, ow = im2col(x, 3, 3, 1, 1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 64, 27)

    def test_stride(self):
        x = RNG.random((1, 1, 8, 8)).astype(np.float32)
        cols, oh, ow = im2col(x, 2, 2, 2, 0)
        assert (oh, ow) == (4, 4)

    def test_values_identity_kernel(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols, oh, ow = im2col(x, 1, 1, 1, 0)
        np.testing.assert_array_equal(cols.reshape(-1), x.reshape(-1))

    def test_col2im_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> (adjoint property).
        x = RNG.random((2, 3, 6, 6))
        cols, oh, ow = im2col(x, 3, 3, 1, 1)
        y = RNG.random(cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, 3, 1, 1, oh, ow)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)


def _col2im_reference(cols, x_shape, kh, kw, stride, pad, oh, ow):
    """The original kernel-offset-loop col2im, kept as the ground truth."""
    n, c, h, w = x_shape
    x_pad = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        for j in range(kw):
            x_pad[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += cols[
                :, :, i, j
            ]
    if pad > 0:
        return x_pad[:, :, pad : pad + h, pad : pad + w]
    return x_pad


class TestCol2imEquivalence:
    """The vectorized col2im must match the reference loop bit-for-bit."""

    CASES = [
        # (n, c, h, w, kh, kw, stride, pad) — overlapping-window cases
        (2, 3, 8, 8, 3, 3, 1, 1),
        (1, 2, 7, 9, 3, 3, 2, 1),
        (2, 1, 12, 12, 5, 5, 2, 2),
        (1, 1, 6, 6, 3, 3, 2, 0),
        # disjoint-window cases (stride >= kernel: the scatter fast path)
        (2, 3, 8, 8, 2, 2, 2, 0),
        (1, 2, 9, 9, 2, 2, 2, 0),  # last window stops short of the edge
        (2, 4, 8, 8, 1, 1, 2, 0),  # 1x1/2 projection conv
        (1, 1, 7, 7, 2, 2, 3, 1),  # stride > kernel leaves gaps
        (1, 2, 10, 10, 3, 3, 3, 0),
    ]

    @pytest.mark.parametrize("n,c,h,w,kh,kw,stride,pad", CASES)
    def test_matches_reference_exactly(self, n, c, h, w, kh, kw, stride, pad):
        oh = (h + 2 * pad - kh) // stride + 1
        ow = (w + 2 * pad - kw) // stride + 1
        cols = RNG.random((n * oh * ow, c * kh * kw)).astype(np.float32)
        got = col2im(cols, (n, c, h, w), kh, kw, stride, pad, oh, ow)
        want = _col2im_reference(cols, (n, c, h, w), kh, kw, stride, pad, oh, ow)
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("n,c,h,w,kh,kw,stride,pad", CASES)
    def test_im2col_round_trip_counts(self, n, c, h, w, kh, kw, stride, pad):
        # col2im(ones) counts how many windows cover each input pixel.
        x = np.ones((n, c, h, w), dtype=np.float32)
        cols, oh, ow = im2col(x, kh, kw, stride, pad)
        counts = col2im(cols, x.shape, kh, kw, stride, pad, oh, ow)
        if pad == 0:  # with padding, window entries in the pad are cropped
            assert counts.sum() == cols.sum()
        if stride >= kh and stride >= kw:
            assert counts.max() <= 1.0  # genuinely disjoint windows


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=RNG)
        out = conv.forward(RNG.random((2, 3, 8, 8)).astype(np.float32))
        assert out.shape == (2, 8, 4, 4)

    def test_matches_direct_convolution(self):
        conv = Conv2d(2, 3, 3, padding=1, rng=RNG)
        x = RNG.random((1, 2, 5, 5)).astype(np.float32)
        out = conv.forward(x)
        # Direct computation at one output location.
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        patch = xp[0, :, 2:5, 2:5]
        expected = (conv.weight.value[1] * patch).sum() + conv.bias.value[1]
        assert out[0, 1, 2, 2] == pytest.approx(float(expected), rel=1e-5)

    def test_input_gradient(self):
        conv = Conv2d(2, 3, 3, padding=1, rng=RNG)
        check_input_gradient(conv, RNG.random((1, 2, 5, 5)))

    def test_weight_gradient(self):
        conv = Conv2d(1, 2, 3, rng=RNG)
        x = RNG.random((1, 1, 5, 5))

        def loss():
            return float(conv.forward(x).sum())

        loss()
        conv.weight.zero_grad()
        conv.backward(np.ones((1, 2, 3, 3), dtype=np.float32))
        numeric = numeric_gradient(loss, conv.weight.value)
        np.testing.assert_allclose(conv.weight.grad, numeric, atol=2e-2)

    def test_bias_gradient_is_output_count(self):
        conv = Conv2d(1, 1, 3, rng=RNG)
        conv.forward(RNG.random((2, 1, 5, 5)).astype(np.float32))
        conv.bias.zero_grad()
        conv.backward(np.ones((2, 1, 3, 3), dtype=np.float32))
        assert conv.bias.grad[0] == pytest.approx(2 * 9)

    def test_no_bias_mode(self):
        conv = Conv2d(1, 1, 3, bias=False, rng=RNG)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_backward_before_forward_raises(self):
        conv = Conv2d(1, 1, 3, rng=RNG)
        with pytest.raises(RuntimeError):
            conv.backward(np.ones((1, 1, 3, 3)))


class TestBatchNorm2d:
    def test_normalizes_in_training(self):
        bn = BatchNorm2d(4)
        x = RNG.normal(3.0, 2.0, (8, 4, 6, 6)).astype(np.float32)
        out = bn.forward(x)
        assert abs(out.mean()) < 1e-5
        assert out.std() == pytest.approx(1.0, abs=0.01)

    def test_running_stats_converge(self):
        bn = BatchNorm2d(2, momentum=0.5)
        for _ in range(30):
            bn.forward(RNG.normal(5.0, 1.0, (16, 2, 4, 4)).astype(np.float32))
        assert bn.running_mean == pytest.approx(np.full(2, 5.0), abs=0.3)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2, momentum=0.3)
        for _ in range(40):
            bn.forward(RNG.normal(5.0, 1.0, (16, 2, 4, 4)).astype(np.float32))
        bn.eval()
        x = np.full((1, 2, 2, 2), 5.0, dtype=np.float32)
        out = bn.forward(x)
        assert abs(out.mean()) < 0.3

    def test_input_gradient_training(self):
        bn = BatchNorm2d(2)
        check_input_gradient(bn, RNG.random((4, 2, 3, 3)) + 0.5)

    def test_gamma_beta_gradients(self):
        bn = BatchNorm2d(2)
        x = RNG.random((4, 2, 3, 3))

        def loss():
            return float((bn.forward(x) ** 2).sum())

        out = bn.forward(x)
        bn.gamma.zero_grad()
        bn.beta.zero_grad()
        bn.backward(2 * out)
        np.testing.assert_allclose(bn.gamma.grad, numeric_gradient(loss, bn.gamma.value), atol=2e-2)
        np.testing.assert_allclose(bn.beta.grad, numeric_gradient(loss, bn.beta.value), atol=2e-2)


class TestActivationsAndPooling:
    def test_relu_forward(self):
        relu = Relu()
        out = relu.forward(np.array([[-1.0, 2.0]], dtype=np.float32))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_relu_gradient_masks(self):
        relu = Relu()
        relu.forward(np.array([[-1.0, 2.0]], dtype=np.float32))
        grad = relu.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_maxpool_forward(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradient_routes_to_max(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        assert grad[0, 0, 1, 1] == 1.0  # position of value 5
        assert grad[0, 0, 0, 0] == 0.0
        assert grad.sum() == 4.0

    def test_maxpool_input_gradient(self):
        pool = MaxPool2d(2)
        # Distinct values so argmax is stable under epsilon perturbation.
        x = RNG.permutation(np.arange(32, dtype=np.float64)).reshape(1, 2, 4, 4)
        check_input_gradient(pool, x)

    def test_global_avg_pool(self):
        gap = GlobalAvgPool2d()
        x = np.ones((2, 3, 4, 4), dtype=np.float32)
        np.testing.assert_allclose(gap.forward(x), np.ones((2, 3)))

    def test_global_avg_pool_gradient(self):
        gap = GlobalAvgPool2d()
        check_input_gradient(gap, RNG.random((2, 3, 4, 4)))

    def test_flatten_round_trip(self):
        flat = Flatten()
        x = RNG.random((2, 3, 4, 5)).astype(np.float32)
        out = flat.forward(x)
        assert out.shape == (2, 60)
        assert flat.backward(out).shape == x.shape


class TestLinear:
    def test_forward(self):
        lin = Linear(3, 2, rng=RNG)
        x = RNG.random((4, 3)).astype(np.float32)
        out = lin.forward(x)
        np.testing.assert_allclose(out, x @ lin.weight.value.T + lin.bias.value, rtol=1e-5)

    def test_input_gradient(self):
        lin = Linear(3, 2, rng=RNG)
        check_input_gradient(lin, RNG.random((4, 3)))

    def test_weight_gradient(self):
        lin = Linear(3, 2, rng=RNG)
        x = RNG.random((4, 3))

        def loss():
            return float(lin.forward(x).sum())

        loss()
        lin.weight.zero_grad()
        lin.backward(np.ones((4, 2)))
        np.testing.assert_allclose(lin.weight.grad, numeric_gradient(loss, lin.weight.value), atol=2e-2)


class TestComposite:
    def test_sequential_runs_in_order(self):
        seq = Sequential(Linear(4, 3, rng=RNG), Relu(), Linear(3, 2, rng=RNG))
        out = seq.forward(RNG.random((2, 4)).astype(np.float32))
        assert out.shape == (2, 2)
        assert len(seq.parameters()) == 4

    def test_sequential_gradient(self):
        seq = Sequential(Linear(4, 3, rng=RNG), Relu(), Linear(3, 2, rng=RNG))
        check_input_gradient(seq, RNG.random((2, 4)) + 0.1)

    def test_residual_block_shape(self):
        block = ResidualBlock(4, 8, stride=2, rng=RNG)
        out = block.forward(RNG.random((2, 4, 8, 8)).astype(np.float32))
        assert out.shape == (2, 8, 4, 4)

    def test_residual_identity_path(self):
        block = ResidualBlock(4, 4, stride=1, rng=RNG)
        assert block.downsample is None

    def test_residual_block_gradient(self):
        block = ResidualBlock(2, 2, rng=RNG)
        check_input_gradient(block, RNG.random((2, 2, 4, 4)) + 0.2, atol=5e-2)

    def test_dual_head_concat(self):
        head = DualHead(8, classes=3, rng=RNG)
        out = head.forward(RNG.random((2, 8)).astype(np.float32))
        assert out.shape == (2, 6)

    def test_dual_head_gradient_splits(self):
        head = DualHead(4, classes=3, rng=RNG)
        check_input_gradient(head, RNG.random((2, 4)))

    def test_train_eval_propagate(self):
        block = ResidualBlock(2, 2, rng=RNG)
        block.eval()
        for layer in block.body.layers:
            assert not layer.training
        block.train()
        for layer in block.body.layers:
            assert layer.training


class TestSoftmaxAndLoss:
    def test_softmax_sums_to_one(self):
        probs = softmax(RNG.random((5, 3)) * 10)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), rtol=1e-6)

    def test_softmax_stability(self):
        probs = softmax(np.array([[1000.0, 1000.0, 0.0]]))
        assert np.isfinite(probs).all()

    @given(st.integers(0, 2))
    @settings(max_examples=10)
    def test_cross_entropy_perfect_prediction(self, label):
        loss_fn = CrossEntropyLoss()
        logits = np.full((1, 3), -100.0)
        logits[0, label] = 100.0
        loss, _ = loss_fn(logits, np.array([label]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient(self):
        loss_fn = CrossEntropyLoss()
        logits = RNG.random((4, 3))
        labels = np.array([0, 1, 2, 1])

        def loss():
            return loss_fn(logits, labels)[0]

        _, analytic = loss_fn(logits, labels)
        numeric = numeric_gradient(loss, logits)
        np.testing.assert_allclose(analytic, numeric, atol=1e-3)

    def test_uniform_loss_is_log_classes(self):
        loss_fn = CrossEntropyLoss()
        loss, _ = loss_fn(np.zeros((2, 3)), np.array([0, 2]))
        assert loss == pytest.approx(np.log(3.0), rel=1e-6)
