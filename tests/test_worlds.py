"""Tests for the corridor worlds (tunnel / s-shape)."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.geometry import Pose2
from repro.env.worlds import World, make_world, s_shape_world, tunnel_world
from repro.errors import SimulationError


class TestTunnelWorld:
    def test_dimensions_match_paper(self, tunnel):
        # 50 m long, 3.2 m wide: walls at y = +/-1.6.
        assert tunnel.half_width == pytest.approx(1.6)
        assert tunnel.centerline.length == pytest.approx(50.0)

    def test_walls_at_plus_minus_half_width(self, tunnel):
        np.testing.assert_allclose(tunnel.left_wall.points[:, 1], 1.6)
        np.testing.assert_allclose(tunnel.right_wall.points[:, 1], -1.6)

    def test_center_is_clear(self, tunnel):
        assert not tunnel.in_collision(np.array([25.0, 0.0]), radius=0.3)

    def test_wall_contact_collides(self, tunnel):
        assert tunnel.in_collision(np.array([25.0, 1.5]), radius=0.3)

    def test_outside_collides(self, tunnel):
        assert tunnel.in_collision(np.array([25.0, 5.0]), radius=0.3)

    def test_clearance_at_center(self, tunnel):
        assert tunnel.wall_clearance(np.array([25.0, 0.0])) == pytest.approx(1.6, abs=0.01)

    def test_depth_straight_ahead(self, tunnel):
        # Looking down the corridor from x=10: the far cap is 40 m away.
        depth = tunnel.depth_along(Pose2(10.0, 0.0, 0.0), max_range=100.0)
        assert depth == pytest.approx(40.0, abs=0.1)

    def test_depth_toward_wall(self, tunnel):
        depth = tunnel.depth_along(Pose2(10.0, 0.0, math.pi / 2), max_range=100.0)
        assert depth == pytest.approx(1.6, abs=0.01)

    def test_goal_near_end(self, tunnel):
        assert not tunnel.reached_goal(np.array([10.0, 0.0]))
        assert tunnel.reached_goal(np.array([49.5, 0.0]))

    def test_course_coordinates(self, tunnel):
        s, d = tunnel.course_coordinates(np.array([12.0, 0.8]))
        assert s == pytest.approx(12.0)
        assert d == pytest.approx(0.8)

    def test_heading_error_straight_course(self, tunnel):
        assert tunnel.heading_error(Pose2(10, 0, 0.3)) == pytest.approx(0.3)

    @given(st.floats(1.0, 49.0), st.floats(-1.2, 1.2))
    @settings(max_examples=40)
    def test_interior_points_clear(self, s, d):
        world = tunnel_world()
        point = np.array([s, d])
        assert world.in_collision(point, radius=0.3) == (abs(d) > 1.3 - 1e-9)


class TestSShapeWorld:
    def test_length_covers_80m(self, s_shape):
        # The S path is longer than its 80 m x-extent.
        assert s_shape.centerline.length >= 80.0

    def test_wider_than_tunnel(self, s_shape, tunnel):
        assert s_shape.half_width > tunnel.half_width

    def test_is_actually_s_shaped(self, s_shape):
        ys = s_shape.centerline.points[:, 1]
        assert ys.max() > 5.0
        assert ys.min() < -5.0

    def test_centerline_clear_along_course(self, s_shape):
        for s in np.linspace(1, s_shape.centerline.length - 1, 25):
            point = s_shape.centerline.point_at_arclength(float(s))
            assert not s_shape.in_collision(point, radius=0.3), f"collision at s={s}"

    def test_walls_offset_by_half_width(self, s_shape):
        for s in np.linspace(5, 75, 15):
            center = s_shape.centerline.point_at_arclength(float(s))
            assert s_shape.wall_clearance(center) == pytest.approx(
                s_shape.half_width, rel=0.1
            )

    def test_spawn_pose_on_course(self, s_shape):
        pose = s_shape.spawn_pose()
        assert not s_shape.in_collision(pose.position, radius=0.3)
        assert abs(s_shape.heading_error(pose)) < 0.05


class TestSpawnPose:
    def test_initial_angle_applied(self, tunnel):
        pose = tunnel.spawn_pose(initial_angle=math.radians(20))
        assert tunnel.heading_error(pose) == pytest.approx(math.radians(20))

    def test_lateral_offset_applied(self, tunnel):
        pose = tunnel.spawn_pose(lateral_offset=0.5)
        _, d = tunnel.course_coordinates(pose.position)
        assert d == pytest.approx(0.5)

    def test_offset_into_wall_rejected(self, tunnel):
        with pytest.raises(SimulationError):
            tunnel.spawn_pose(lateral_offset=2.0)


class TestWorldValidation:
    def test_negative_width_rejected(self, tunnel):
        with pytest.raises(SimulationError):
            World(
                name="bad",
                centerline=tunnel.centerline,
                half_width=-1.0,
                goal_arclength=10.0,
            )

    def test_goal_beyond_centerline_rejected(self, tunnel):
        with pytest.raises(SimulationError):
            World(
                name="bad",
                centerline=tunnel.centerline,
                half_width=1.0,
                goal_arclength=1e9,
            )

    def test_make_world_by_name(self):
        assert make_world("tunnel").name == "tunnel"
        assert make_world("s-shape").name == "s-shape"
        assert make_world("s_shape").name == "s-shape"

    def test_make_world_unknown(self):
        with pytest.raises(SimulationError):
            make_world("warehouse")

    def test_make_world_params_forwarded(self):
        world = make_world("s-shape", amplitude=3.0)
        assert world.centerline.points[:, 1].max() < 4.0

    def test_panorama_matches_depth(self, tunnel):
        pose = Pose2(10.0, 0.3, 0.1)
        angles = np.array([-0.4, 0.0, 0.4])
        pano = tunnel.panorama(pose, angles, max_range=100.0)
        for angle, expected in zip(angles, pano):
            assert tunnel.depth_along(pose, relative_angle=float(angle), max_range=100.0) == (
                pytest.approx(float(expected))
            )

    def test_rays_cannot_escape_caps(self, s_shape):
        # End caps close the corridor: every ray from inside must hit.
        pose = s_shape.spawn_pose()
        angles = np.linspace(-math.pi, math.pi, 73)
        pano = s_shape.panorama(pose, angles, max_range=1e6)
        assert pano.max() < 1e6


class TestCenterlineArrays:
    """The precomputed per-segment geometry every frame consumer reads."""

    def test_matches_fresh_computation(self, tunnel):
        arrays = tunnel.centerline_arrays
        pts = tunnel.centerline.points
        dirs = np.diff(pts, axis=0)
        lens = np.sqrt((dirs**2).sum(axis=1))
        np.testing.assert_array_equal(arrays.starts, pts[:-1])
        np.testing.assert_array_equal(arrays.dirs, dirs)
        np.testing.assert_array_equal(arrays.lens, lens)
        np.testing.assert_array_equal(arrays.units, dirs / lens[:, None])

    def test_arrays_are_read_only(self, s_shape):
        arrays = s_shape.centerline_arrays
        with pytest.raises(ValueError):
            arrays.units[0, 0] = 99.0

    def test_batch_course_frames_uses_cache(self, s_shape):
        # Same answers as the per-point scalar projection.
        points = np.array([[5.0, 1.0], [20.0, -2.0], [40.0, 3.0]])
        offsets, yaws = s_shape.batch_course_frames(points)
        for point, offset in zip(points, offsets):
            _, d = s_shape.course_coordinates(point)
            assert offset == pytest.approx(d, abs=1e-9)


class TestCachedWorld:
    def test_same_instance_for_same_params(self):
        from repro.env.worlds import cached_world

        assert cached_world("tunnel") is cached_world("tunnel")
        assert cached_world("s-shape", amplitude=8.0) is cached_world(
            "s-shape", amplitude=8.0
        )

    def test_distinct_params_distinct_instances(self):
        from repro.env.worlds import cached_world

        assert cached_world("tunnel") is not cached_world("tunnel", length=40.0)

    def test_matches_uncached_build(self):
        from repro.env.worlds import cached_world

        cached = cached_world("s-shape")
        fresh = make_world("s-shape")
        np.testing.assert_array_equal(
            cached.centerline.points, fresh.centerline.points
        )
        assert cached.goal_arclength == fresh.goal_arclength

    def test_unhashable_params_fall_back(self):
        from repro.env.worlds import cached_world

        # Builders reject unknown kwargs; unhashable values must not
        # break the memo key construction before that.
        with pytest.raises(TypeError):
            cached_world("tunnel", bogus=[1, 2])


class TestCourseHelpers:
    """The shared centerline generators (repro.env.courses)."""

    def test_straight_matches_legacy_tunnel(self):
        from repro.env.courses import straight_centerline

        pts = straight_centerline(50.0)
        np.testing.assert_array_equal(pts, tunnel_world().centerline.points)

    def test_sine_single_period_matches_legacy(self):
        from repro.env.courses import sine_centerline

        pts = sine_centerline(80.0, 10.0, 161)
        np.testing.assert_array_equal(pts, s_shape_world().centerline.points)

    def test_sine_periods_parameter(self):
        from repro.env.courses import sine_centerline

        two = sine_centerline(80.0, 10.0, 161, periods=2.0)
        # Two full periods: y returns to zero at the quarter points.
        assert two[80][1] == pytest.approx(0.0, abs=1e-9)
        assert two[0][1] == pytest.approx(0.0, abs=1e-9)

    def test_zigzag_alternates(self):
        from repro.env.courses import zigzag_centerline

        pts = zigzag_centerline(64.0, 2.0, 8)
        assert pts.shape == (9, 2)
        assert pts[1][1] == 2.0 and pts[2][1] == -2.0
        assert pts[0][1] == 0.0 and pts[-1][1] == 0.0


class TestEdgeGeometry:
    """Degenerate and boundary world geometry."""

    def test_short_centerline_still_builds(self):
        # The shortest legal course: a two-point centerline.
        from repro.env.geometry import Polyline

        world = World(
            name="short",
            centerline=Polyline(np.array([[0.0, 0.0], [20.0, 0.0]])),
            half_width=1.0,
            goal_arclength=19.0,
        )
        assert world.reached_goal(np.array([19.5, 0.0]))
        assert not world.in_collision(np.array([10.0, 0.0]), radius=0.3)

    def test_single_point_centerline_rejected(self):
        from repro.env.geometry import Polyline

        with pytest.raises(ValueError):
            Polyline(np.array([[0.0, 0.0]]))

    def test_duplicate_point_centerline_rejected(self):
        from repro.env.geometry import Polyline

        with pytest.raises(ValueError):
            Polyline(np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0]]))

    def test_obstacle_touching_wall_still_collides(self):
        # An obstacle whose rim touches the wall: both surfaces are solid.
        from repro.scenario import ObstacleSpec, Scenario, world_from_scenario
        from repro.scenario.schema import GeometrySpec

        world = world_from_scenario(
            Scenario(
                name="wall-hugger",
                geometry=GeometrySpec(family="straight"),
                obstacles=(ObstacleSpec(s=25.0, d=1.6, radius=0.4),),
            )
        )
        # Positions near the obstacle's inner rim and near the wall both
        # register as collisions.
        assert world.in_collision(np.array([25.0, 1.2]), radius=0.1)
        assert world.in_collision(np.array([25.0, 1.55]), radius=0.1)

    def test_empty_obstacles_identical_soup(self):
        # A World with obstacles=() must build the exact pre-obstacle
        # segment list (golden-trace invariance of the refactor).
        legacy = tunnel_world()
        explicit = World(
            name="tunnel",
            centerline=legacy.centerline,
            half_width=legacy.half_width,
            goal_arclength=legacy.goal_arclength,
            obstacles=(),
        )
        want = [(s.ax, s.ay, s.bx, s.by) for s in legacy.walls.segments]
        got = [(s.ax, s.ay, s.bx, s.by) for s in explicit.walls.segments]
        assert want == got


class TestScenarioWorldCaching:
    def test_dict_params_cache_by_canonical_json(self):
        from repro.env.worlds import cached_world

        spec = {"geometry": {"family": "straight"}, "obstacles": []}
        a = cached_world("scenario", spec=spec)
        b = cached_world("scenario", spec=json.loads(json.dumps(spec)))
        assert a is b

    def test_different_specs_distinct(self):
        from repro.env.worlds import cached_world

        a = cached_world("scenario", spec={"geometry": {"family": "straight"}})
        b = cached_world(
            "scenario", spec={"geometry": {"family": "straight", "length": 60.0}}
        )
        assert a is not b
