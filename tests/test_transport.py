"""Tests for the in-process and TCP transports."""

from __future__ import annotations

import pytest

from repro.core import packets as pk
from repro.core.packets import PacketType
from repro.core.transport import InProcessTransport, TcpTransport, transport_pair
from repro.errors import TransportError


@pytest.fixture(params=["inprocess", "tcp"])
def pair(request):
    a, b = transport_pair(request.param)
    yield a, b
    a.close()
    b.close()


class TestBothTransports:
    def test_send_recv(self, pair):
        a, b = pair
        a.send(pk.depth_request())
        packet = b.recv_blocking(timeout=2.0)
        assert packet.ptype == PacketType.DEPTH_REQ

    def test_recv_empty_returns_none(self, pair):
        a, b = pair
        assert b.recv() is None

    def test_bidirectional(self, pair):
        a, b = pair
        a.send(pk.camera_request())
        b.send(pk.depth_response(3.0))
        assert b.recv_blocking().ptype == PacketType.CAMERA_REQ
        assert a.recv_blocking().ptype == PacketType.DEPTH_RESP

    def test_ordering_preserved(self, pair):
        a, b = pair
        for i in range(20):
            a.send(pk.sync_grant(i))
        received = []
        while len(received) < 20:
            packet = b.recv_blocking()
            received.append(packet.values[0])
        assert received == list(range(20))

    def test_large_camera_packet(self, pair):
        a, b = pair
        pixels = bytes(i % 256 for i in range(64 * 48))
        a.send(pk.camera_response(64, 48, 0.5, 0.0, 0.0, 1.6, pixels))
        packet = b.recv_blocking(timeout=5.0)
        assert packet.raw == pixels

    def test_drain_collects_all(self, pair):
        a, b = pair
        for i in range(5):
            a.send(pk.sync_grant(i))
        import time

        time.sleep(0.05)  # let TCP bytes land
        packets = b.drain()
        assert len(packets) == 5

    def test_counters(self, pair):
        a, b = pair
        a.send(pk.depth_request())
        b.recv_blocking()
        assert a.packets_sent == 1
        assert a.bytes_sent > 0
        assert b.bytes_received > 0

    def test_recv_blocking_timeout(self, pair):
        _, b = pair
        with pytest.raises(TransportError):
            b.recv_blocking(timeout=0.05)


class TestInProcessSpecific:
    def test_closed_send_rejected(self):
        a, b = transport_pair("inprocess")
        a.close()
        with pytest.raises(TransportError):
            a.send(pk.depth_request())


class TestTcpSpecific:
    def test_partial_frame_buffered(self):
        """A receiver must not yield a packet until the frame completes."""
        a, b = transport_pair("tcp")
        try:
            wire = pk.encode_packet(pk.depth_response(7.0))
            # Send the frame in two raw halves.
            a._sock.setblocking(True)
            a._sock.sendall(wire[: len(wire) // 2])
            import time

            time.sleep(0.05)
            assert b.recv() is None
            a._sock.sendall(wire[len(wire) // 2 :])
            packet = b.recv_blocking(timeout=2.0)
            assert packet.values == (7.0,)
        finally:
            a.close()
            b.close()

    def test_many_packets_one_read(self):
        """Multiple frames arriving in one TCP segment all decode."""
        a, b = transport_pair("tcp")
        try:
            for i in range(10):
                a.send(pk.sync_grant(i))
            got = []
            while len(got) < 10:
                got.append(b.recv_blocking(timeout=2.0).values[0])
            assert got == list(range(10))
        finally:
            a.close()
            b.close()


def test_unknown_kind_rejected():
    with pytest.raises(TransportError):
        transport_pair("carrier-pigeon")
