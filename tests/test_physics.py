"""Tests for the quadrotor dynamics and collision response."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.env.physics import (
    AccelCommand,
    DroneState,
    QuadrotorDynamics,
    QuadrotorParams,
)
from repro.env.worlds import tunnel_world

DT = 1.0 / 60.0


@pytest.fixture
def dyn(tunnel):
    return QuadrotorDynamics(
        tunnel, initial_state=DroneState(x=5.0, y=0.0, z=1.5, yaw=0.0)
    )


def step_n(dyn, command, n):
    for _ in range(n):
        dyn.step(command, DT)


class TestBasicDynamics:
    def test_time_advances(self, dyn):
        step_n(dyn, AccelCommand(), 60)
        assert dyn.time == pytest.approx(1.0)

    def test_zero_command_keeps_position(self, dyn):
        x0, y0 = dyn.state.x, dyn.state.y
        step_n(dyn, AccelCommand(), 30)
        assert dyn.state.x == pytest.approx(x0)
        assert dyn.state.y == pytest.approx(y0)

    def test_forward_accel_moves_forward(self, dyn):
        step_n(dyn, AccelCommand(a_forward=3.0), 60)
        assert dyn.state.x > 5.5
        assert dyn.state.u > 1.0
        assert abs(dyn.state.y) < 1e-6

    def test_lateral_accel_moves_left(self, dyn):
        step_n(dyn, AccelCommand(a_lateral=2.0), 30)
        assert dyn.state.y > 0.05  # +lateral = left = +y at yaw 0

    def test_yaw_accel_turns(self, dyn):
        step_n(dyn, AccelCommand(yaw_accel=2.0), 30)
        assert dyn.state.yaw > 0.05
        assert dyn.state.r > 0.0

    def test_vertical_accel_climbs(self, dyn):
        step_n(dyn, AccelCommand(a_vertical=2.0), 30)
        assert dyn.state.z > 1.5

    def test_actuator_lag_delays_response(self, dyn):
        dyn.step(AccelCommand(a_forward=6.0), DT)
        # After one frame the applied accel is well below the command.
        assert dyn.applied_acceleration.a_forward < 3.0

    def test_drag_caps_speed(self):
        world = tunnel_world(length=2000.0, width=100.0)  # no walls in play
        dyn = QuadrotorDynamics(world, initial_state=DroneState(x=5.0, z=1.5))
        step_n(dyn, AccelCommand(a_forward=6.0), 60 * 30)
        params = dyn.params
        # Terminal velocity: a = drag * v  ->  v = a / drag, capped by max.
        expected = min(params.max_linear_accel / params.linear_drag, params.max_speed)
        assert dyn.state.u == pytest.approx(expected, rel=0.05)

    def test_acceleration_clipped(self, dyn):
        step_n(dyn, AccelCommand(a_forward=1e9), 10)
        assert dyn.applied_acceleration.a_forward <= dyn.params.max_linear_accel + 1e-9

    def test_yaw_rate_clipped(self, dyn):
        step_n(dyn, AccelCommand(yaw_accel=1e9), 120)
        assert dyn.state.r <= dyn.params.max_yaw_rate + 1e-9


class TestWorldVelocity:
    def test_world_velocity_rotates_with_yaw(self):
        state = DroneState(u=2.0, v=0.0, yaw=math.pi / 2)
        np.testing.assert_allclose(state.world_velocity, [0.0, 2.0], atol=1e-12)

    def test_speed(self):
        assert DroneState(u=3.0, v=4.0).speed == pytest.approx(5.0)

    def test_copy_is_independent(self):
        a = DroneState(x=1.0)
        b = a.copy()
        b.x = 9.0
        assert a.x == 1.0


class TestCollisions:
    def test_flying_into_wall_collides(self, dyn):
        step_n(dyn, AccelCommand(a_lateral=6.0), 60 * 5)
        assert len(dyn.collisions) >= 1
        # Position held out of the wall by the collision radius.
        assert abs(dyn.state.y) <= 1.6

    def test_collision_sheds_speed(self, tunnel):
        dyn = QuadrotorDynamics(
            tunnel, initial_state=DroneState(x=5.0, y=0.0, z=1.5, yaw=math.pi / 2, u=5.0)
        )
        speed_before = dyn.state.speed
        step_n(dyn, AccelCommand(), 60)
        assert dyn.collisions
        assert dyn.state.speed < speed_before * 0.5

    def test_recovery_window(self, tunnel):
        dyn = QuadrotorDynamics(
            tunnel, initial_state=DroneState(x=5.0, y=0.0, z=1.5, yaw=math.pi / 2, u=5.0)
        )
        step_n(dyn, AccelCommand(), 30)
        assert dyn.collisions
        assert dyn.recovering
        # During recovery, commands are ignored (drone brakes).
        step_n(dyn, AccelCommand(a_forward=6.0), 5)
        assert dyn.state.u < 1.0

    def test_no_duplicate_collision_during_recovery(self, tunnel):
        dyn = QuadrotorDynamics(
            tunnel, initial_state=DroneState(x=5.0, y=0.0, z=1.5, yaw=math.pi / 2, u=5.0)
        )
        # One continuous push into the wall during the recovery window
        # registers exactly one collision event.
        recovery_frames = int(dyn.params.recovery_time / DT) - 5
        step_n(dyn, AccelCommand(a_lateral=6.0), recovery_frames)
        assert len(dyn.collisions) == 1

    def test_collision_event_records_state(self, tunnel):
        dyn = QuadrotorDynamics(
            tunnel, initial_state=DroneState(x=5.0, y=0.0, z=1.5, yaw=math.pi / 2, u=5.0)
        )
        step_n(dyn, AccelCommand(), 60)
        event = dyn.collisions[0]
        assert event.time >= 0.0
        assert event.speed > 0.0
        assert abs(event.y) > 1.0  # near the wall


class TestReset:
    def test_reset_clears_state(self, dyn):
        step_n(dyn, AccelCommand(a_forward=5.0), 60)
        dyn.reset(DroneState(x=1.0, y=0.5, z=0.0, yaw=0.1))
        assert dyn.time == 0.0
        assert dyn.collisions == []
        assert dyn.state.x == 1.0
        assert dyn.state.u == 0.0
        assert not dyn.recovering

    def test_reset_clears_actuator_state(self, dyn):
        step_n(dyn, AccelCommand(a_forward=6.0), 30)
        dyn.reset(DroneState(x=5.0))
        assert dyn.applied_acceleration.a_forward == 0.0


class TestParams:
    def test_custom_params_respected(self, tunnel):
        params = QuadrotorParams(max_speed=2.0)
        dyn = QuadrotorDynamics(
            tunnel, params=params, initial_state=DroneState(x=5.0, z=1.5)
        )
        step_n(dyn, AccelCommand(a_forward=6.0), 60 * 10)
        assert dyn.state.speed <= 2.0 + 1e-9
