"""Tests for the FireSim host: bridge driver + throughput model."""

from __future__ import annotations

import pytest

from repro.core import packets as pk
from repro.core.bridge import BridgeConfig, RoseBridge
from repro.core.packets import PacketType
from repro.core.transport import transport_pair
from repro.errors import SyncError
from repro.soc.firesim import (
    FireSimHost,
    HostPerfParams,
    simulation_throughput_mhz,
    wall_time_per_sync,
)
from repro.soc.iodev import REG_RX_COUNT, REG_TX_DATA
from repro.soc.soc import CONFIG_A, Soc


def idle_program(rt):
    while True:
        yield from rt.delay(1_000)


def make_host(program=idle_program, bridge=None):
    soc = Soc(CONFIG_A, bridge=bridge)
    soc.load_program(program)
    sync_end, firesim_end = transport_pair("inprocess")
    host = FireSimHost(soc, firesim_end)
    return host, sync_end


class TestHostProtocol:
    def test_set_steps_programs_bridge(self):
        host, sync_end = make_host()
        sync_end.send(pk.sync_set_steps(5_000_000, 2))
        host.service()
        assert host.bridge.cycles_per_sync == 5_000_000
        assert host.bridge.frames_per_sync == 2

    def test_grant_steps_soc_and_reports_done(self):
        host, sync_end = make_host()
        sync_end.send(pk.sync_set_steps(1_000_000, 1))
        sync_end.send(pk.sync_grant(0))
        host.service()
        done = sync_end.recv()
        assert done.ptype == PacketType.SYNC_DONE
        assert done.values == (0, 1_000_000)
        assert host.soc.cycle == 1_000_000
        assert host.steps_completed == 1

    def test_multiple_grants_processed_in_order(self):
        host, sync_end = make_host()
        sync_end.send(pk.sync_set_steps(100_000, 1))
        for i in range(3):
            sync_end.send(pk.sync_grant(i))
        host.service()
        indices = [p.values[0] for p in sync_end.drain() if p.ptype == PacketType.SYNC_DONE]
        assert indices == [0, 1, 2]
        assert host.soc.cycle == 300_000

    def test_data_injected_before_step(self):
        seen = []

        def program(rt):
            count = yield from rt.mmio_read(REG_RX_COUNT)
            seen.append(count)
            while True:
                yield from rt.delay(1000)

        host, sync_end = make_host(program)
        sync_end.send(pk.sync_set_steps(1_000_000, 1))
        sync_end.send(pk.depth_response(3.0))
        sync_end.send(pk.sync_grant(0))
        host.service()
        assert seen == [1]

    def test_soc_output_forwarded(self):
        def program(rt):
            yield from rt.mmio_write(REG_TX_DATA, pk.camera_request())
            while True:
                yield from rt.delay(1000)

        host, sync_end = make_host(program)
        sync_end.send(pk.sync_set_steps(1_000_000, 1))
        sync_end.send(pk.sync_grant(0))
        host.service()
        types = [p.ptype for p in sync_end.drain()]
        assert PacketType.CAMERA_REQ in types
        assert PacketType.SYNC_DONE in types

    def test_shutdown_flag(self):
        host, sync_end = make_host()
        sync_end.send(pk.sync_shutdown())
        host.service()
        assert host.shutdown_requested

    def test_reset_clears_pending_grants(self):
        host, sync_end = make_host()
        sync_end.send(pk.sync_set_steps(1_000_000, 1))
        # Reset arrives before the grants are executed (same service batch):
        # the grant is dropped.
        sync_end.send(pk.sync_grant(0))
        sync_end.send(pk.sync_reset())
        host.service()
        assert host.steps_completed == 0

    def test_unexpected_packet_raises(self):
        host, sync_end = make_host()
        sync_end.send(pk.sync_done(0, 1))  # DONE should never reach the host
        with pytest.raises(SyncError):
            host.service()

    def test_overflow_injection_deferred(self):
        bridge = RoseBridge(BridgeConfig(rx_capacity_bytes=8, tx_capacity_bytes=1024))
        consumed = []

        def program(rt):
            while True:
                packet = yield from rt.recv_packet()
                consumed.append(packet.values[0])

        host, sync_end = make_host(program, bridge=bridge)
        sync_end.send(pk.sync_set_steps(1_000_000, 1))
        # Two 8-byte packets: only one fits the queue at a time.
        sync_end.send(pk.depth_response(1.0))
        sync_end.send(pk.depth_response(2.0))
        sync_end.send(pk.sync_grant(0))
        sync_end.send(pk.sync_grant(1))
        host.service()
        # Both eventually delivered, in order, across steps.
        assert consumed == [1.0, 2.0]


class TestThroughputModel:
    PARAMS = HostPerfParams(name="test", fpga_sim_rate_mhz=30.0, sync_overhead_s=2e-3)

    def test_invalid_params(self):
        with pytest.raises(SyncError):
            HostPerfParams(name="bad", fpga_sim_rate_mhz=0.0)

    def test_wall_time_positive(self):
        assert wall_time_per_sync(self.PARAMS, 10_000_000) > 0

    def test_wall_time_rejects_bad_granularity(self):
        with pytest.raises(SyncError):
            wall_time_per_sync(self.PARAMS, 0)

    def test_throughput_monotone_in_granularity(self):
        grans = [10**5, 10**6, 10**7, 10**8, 10**9]
        rates = [simulation_throughput_mhz(self.PARAMS, g) for g in grans]
        assert rates == sorted(rates)

    def test_throughput_saturates_at_fpga_rate(self):
        rate = simulation_throughput_mhz(self.PARAMS, 10**11)
        assert rate == pytest.approx(30.0, rel=0.01)
        assert rate < 30.0  # never exceeds the FPGA bound

    def test_fine_granularity_overhead_bound(self):
        # At tiny granularity (sync-only) throughput ~ cycles / overhead.
        rate = simulation_throughput_mhz(self.PARAMS, 1000, with_env=False)
        assert rate == pytest.approx(1000 / 2e-3 / 1e6, rel=0.05)

    def test_fine_granularity_with_env_pays_frame_time(self):
        # With the environment in the loop, even a tiny period renders at
        # least one frame, so the frame wall time bounds throughput.
        rate = simulation_throughput_mhz(self.PARAMS, 1000, with_env=True)
        expected = 1000 / (self.PARAMS.env_frame_wall_s + 2e-3) / 1e6
        assert rate == pytest.approx(expected, rel=0.05)

    def test_sync_only_at_least_env_rate(self):
        for g in (10**6, 10**7, 10**8):
            with_env = simulation_throughput_mhz(self.PARAMS, g, with_env=True)
            sync_only = simulation_throughput_mhz(self.PARAMS, g, with_env=False)
            assert sync_only >= with_env

    def test_env_bound_when_rendering_slow(self):
        slow_env = HostPerfParams(
            name="slow-env",
            fpga_sim_rate_mhz=1000.0,
            sync_overhead_s=0.0,
            env_frame_wall_s=0.1,
            env_frame_rate_hz=60.0,
        )
        # 1e9 cycles = 1 s target time = 60 frames = 6 s of rendering.
        rate = simulation_throughput_mhz(slow_env, 10**9)
        assert rate == pytest.approx(1e9 / 6.0 / 1e6, rel=0.05)
