"""Tests for the SLAM substrate: grid, scan matcher, pipeline, app."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import CoSimConfig, run_mission
from repro.env.geometry import Pose2
from repro.env.worlds import s_shape_world, tunnel_world
from repro.errors import ConfigError
from repro.slam.grid import GridParams, OccupancyGrid
from repro.slam.pipeline import SlamPipeline, slam_grid_for_world
from repro.slam.scanmatch import MatcherParams, ScanMatcher

BEAMS = 64
FOV = 4.7124
MAX_RANGE = 30.0
ANGLES = np.linspace(-FOV / 2, FOV / 2, BEAMS)


def small_grid() -> OccupancyGrid:
    return OccupancyGrid(
        GridParams(origin_x=0.0, origin_y=0.0, width_m=10.0, height_m=10.0, resolution=0.25)
    )


def scan_from(world, pose: Pose2, noise=0.0, seed=0) -> np.ndarray:
    ranges = world.panorama(pose, ANGLES, max_range=MAX_RANGE)
    if noise:
        ranges = ranges + np.random.default_rng(seed).normal(0, noise, BEAMS)
    return np.clip(ranges, 0.0, MAX_RANGE)


class TestGridBasics:
    def test_param_validation(self):
        with pytest.raises(ConfigError):
            GridParams(0, 0, width_m=-1, height_m=1)
        with pytest.raises(ConfigError):
            GridParams(0, 0, width_m=1, height_m=1, resolution=0)

    def test_world_to_cell_round_trip(self):
        grid = small_grid()
        rows, cols, valid = grid.world_to_cell(np.array([[1.3, 2.7]]))
        assert valid[0]
        center = grid.cell_center(int(rows[0]), int(cols[0]))
        assert abs(center[0] - 1.3) < grid.params.resolution
        assert abs(center[1] - 2.7) < grid.params.resolution

    def test_out_of_bounds_detected(self):
        grid = small_grid()
        _, _, valid = grid.world_to_cell(np.array([[50.0, 50.0], [-1.0, 2.0]]))
        assert not valid.any()

    def test_fresh_grid_is_unknown(self):
        grid = small_grid()
        probs = grid.occupancy_probability(np.array([[5.0, 5.0]]))
        assert probs[0] == pytest.approx(0.5)
        assert grid.observed_fraction == 0.0


class TestScanIntegration:
    def test_hit_marks_occupied_and_path_free(self):
        grid = small_grid()
        # A single beam from (1, 5) pointing +x hitting at range 4.
        touched = grid.integrate_scan(1.0, 5.0, 0.0, np.array([0.0]), np.array([4.0]), MAX_RANGE)
        assert touched > 0
        probs = grid.occupancy_probability(np.array([[5.0, 5.0], [3.0, 5.0]]))
        assert probs[0] > 0.5  # endpoint occupied
        assert probs[1] < 0.5  # along the ray: free

    def test_max_range_miss_carves_but_no_hit(self):
        grid = small_grid()
        # Two passes: one miss update (-0.35) does not cross the -0.5
        # "known free" evidence threshold by itself.
        for _ in range(2):
            grid.integrate_scan(
                1.0, 5.0, 0.0, np.array([0.0]), np.array([MAX_RANGE]), MAX_RANGE
            )
        # No occupied endpoint anywhere on the ray.
        assert grid.occupied_cells == 0
        assert grid.free_cells > 0

    def test_logodds_clamped(self):
        grid = small_grid()
        for _ in range(30):
            grid.integrate_scan(1.0, 5.0, 0.0, np.array([0.0]), np.array([4.0]), MAX_RANGE)
        assert grid.logodds.max() <= grid.params.clamp
        assert grid.logodds.min() >= -grid.params.clamp

    def test_mismatched_shapes_rejected(self):
        grid = small_grid()
        with pytest.raises(ConfigError):
            grid.integrate_scan(1, 5, 0, np.array([0.0, 0.1]), np.array([4.0]), MAX_RANGE)

    def test_counters(self):
        grid = small_grid()
        grid.integrate_scan(1.0, 5.0, 0.0, np.array([0.0]), np.array([4.0]), MAX_RANGE)
        assert grid.updates == 1
        assert grid.cells_touched_total > 0

    def test_tunnel_scan_maps_both_walls(self, tunnel):
        grid = slam_grid_for_world(tunnel)
        pose = Pose2(10.0, 0.0, 0.0)
        grid.integrate_scan(10.0, 0.0, 0.0, ANGLES, scan_from(tunnel, pose), MAX_RANGE)
        probs = grid.occupancy_probability(np.array([[10.0, 1.6], [10.0, -1.6], [10.0, 0.0]]))
        assert probs[0] > 0.5
        assert probs[1] > 0.5
        assert probs[2] < 0.5  # center is free

    def test_endpoint_evidence_known_mask(self):
        grid = small_grid()
        grid.integrate_scan(1.0, 5.0, 0.0, np.array([0.0]), np.array([4.0]), MAX_RANGE)
        probs, known = grid.endpoint_evidence(np.array([[5.0, 5.0], [5.0, 9.0]]))
        assert known[0] and not known[1]


class TestScanMatcher:
    def test_matcher_param_validation(self):
        with pytest.raises(ConfigError):
            MatcherParams(step_shrink=1.5)
        with pytest.raises(ConfigError):
            MatcherParams(max_iterations=0)

    def test_empty_map_returns_initial_pose(self, tunnel):
        grid = slam_grid_for_world(tunnel)
        matcher = ScanMatcher(grid)
        pose = Pose2(10.0, 0.0, 0.0)
        result = matcher.match(10.0, 0.0, 0.0, ANGLES, scan_from(tunnel, pose), MAX_RANGE)
        assert (result.x, result.y, result.yaw) == (10.0, 0.0, 0.0)
        assert result.iterations == 0

    def test_recovers_lateral_offset(self, s_shape):
        grid = slam_grid_for_world(s_shape)
        true_pose = Pose2(10.0, float(s_shape.centerline.project(np.array([10.0, 0.0]))[1]), 0.4)
        # Build a map from a few nearby true poses.
        for s in (3.0, 5.0, 7.0, 9.0):
            c = s_shape.centerline.point_at_arclength(s)
            t = s_shape.centerline.tangent_at_arclength(s)
            yaw = math.atan2(t[1], t[0])
            pose = Pose2(float(c[0]), float(c[1]), yaw)
            grid.integrate_scan(pose.x, pose.y, pose.yaw, ANGLES, scan_from(s_shape, pose), MAX_RANGE)
        # Now match a scan from a known pose, starting laterally offset.
        c = s_shape.centerline.point_at_arclength(8.0)
        t = s_shape.centerline.tangent_at_arclength(8.0)
        yaw = math.atan2(t[1], t[0])
        truth = Pose2(float(c[0]), float(c[1]), yaw)
        scan = scan_from(s_shape, truth)
        result = ScanMatcher(grid).match(
            truth.x + 0.3, truth.y - 0.3, truth.yaw, ANGLES, scan, MAX_RANGE
        )
        err_before = math.hypot(0.3, 0.3)
        err_after = math.hypot(result.x - truth.x, result.y - truth.y)
        assert err_after < err_before
        assert result.iterations >= 1
        assert result.evaluations > result.iterations

    def test_correction_bounded_by_window(self, tunnel):
        grid = slam_grid_for_world(tunnel)
        pose = Pose2(10.0, 0.0, 0.0)
        for x in (6.0, 8.0, 10.0):
            p = Pose2(x, 0.0, 0.0)
            grid.integrate_scan(p.x, p.y, p.yaw, ANGLES, scan_from(tunnel, p), MAX_RANGE)
        params = MatcherParams(max_correction_linear=0.5)
        result = ScanMatcher(grid, params).match(
            10.0, 0.0, 0.0, ANGLES, scan_from(tunnel, pose), MAX_RANGE
        )
        assert abs(result.x - 10.0) <= 0.5 + 1e-9
        assert abs(result.y - 0.0) <= 0.5 + 1e-9


class TestPipeline:
    def _drive(self, world, n=60, odo_noise=0.04, seed=0):
        rng = np.random.default_rng(seed)
        sp = world.spawn_pose()
        pipe = SlamPipeline(slam_grid_for_world(world), sp.x, sp.y, sp.yaw)
        prev = sp
        s = 0.5
        slam_errs, odo_errs = [], []
        ox, oy, oyaw = sp.x, sp.y, sp.yaw
        for _ in range(n):
            s += 0.3
            c = world.centerline.point_at_arclength(s)
            t = world.centerline.tangent_at_arclength(s)
            yaw = math.atan2(t[1], t[0])
            pose = Pose2(float(c[0]), float(c[1]), yaw)
            scan = np.clip(
                world.panorama(pose, ANGLES, max_range=MAX_RANGE)
                + rng.normal(0, 0.03, BEAMS),
                0,
                MAX_RANGE,
            )
            dxw, dyw = pose.x - prev.x, pose.y - prev.y
            cl, sl = math.cos(prev.yaw), math.sin(prev.yaw)
            dxb = dxw * cl + dyw * sl + rng.normal(0, odo_noise)
            dyb = -dxw * sl + dyw * cl + rng.normal(0, odo_noise)
            dyaw = math.atan2(
                math.sin(pose.yaw - prev.yaw), math.cos(pose.yaw - prev.yaw)
            ) + rng.normal(0, 0.015)
            pipe.process(dxb, dyb, dyaw, ANGLES, scan, MAX_RANGE)
            co, so = math.cos(oyaw), math.sin(oyaw)
            ox += dxb * co - dyb * so
            oy += dxb * so + dyb * co
            oyaw += dyaw
            slam_errs.append(math.hypot(pose.x - pipe.x, pose.y - pipe.y))
            odo_errs.append(math.hypot(pose.x - ox, pose.y - oy))
            prev = pose
        return pipe, slam_errs, odo_errs

    def test_map_coverage_grows(self, s_shape):
        pipe, _, _ = self._drive(s_shape, n=40)
        assert pipe.grid.observed_fraction > 0.02
        assert pipe.grid.occupied_cells > 20
        assert pipe.scans_processed == 40

    def test_localization_bounded(self, s_shape):
        _, slam_errs, _ = self._drive(s_shape, n=80)
        assert max(slam_errs) < 3.0

    def test_slam_beats_odometry_in_rich_geometry(self, s_shape):
        _, slam_errs, odo_errs = self._drive(s_shape, n=200, odo_noise=0.05)
        assert np.mean(slam_errs) < np.mean(odo_errs)
        assert slam_errs[-1] < odo_errs[-1]

    def test_flops_accumulate(self, tunnel):
        pipe, _, _ = self._drive(tunnel, n=20)
        assert pipe.total_flops > 0

    def test_invalid_max_range(self, tunnel):
        pipe = SlamPipeline(slam_grid_for_world(tunnel), 0.5, 0.0, 0.0)
        with pytest.raises(ConfigError):
            pipe.process(0.1, 0, 0, ANGLES, np.full(BEAMS, 5.0), max_range=0.0)


class TestSlamNavigationMission:
    def test_slam_mission_completes(self):
        result = run_mission(
            CoSimConfig(
                world="s-shape",
                controller="slam",
                target_velocity=6.0,
                max_sim_time=45.0,
            )
        )
        assert result.completed
        assert result.collisions == 0
        stats = result.slam_stats
        assert stats.updates > 50
        # Localization stays useful (the controller steered from it).
        assert stats.mean_pose_error < 2.0
        # Data-dependent compute happened.
        assert stats.mean_iterations > 1
        assert stats.total_flops > 0

    def test_slam_uses_no_accelerator(self):
        result = run_mission(
            CoSimConfig(
                world="tunnel",
                controller="slam",
                target_velocity=3.0,
                max_sim_time=10.0,
            )
        )
        assert result.activity_factor == 0.0
