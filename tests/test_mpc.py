"""Tests for the MPC controller (data-dependent classical workload)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CoSimConfig, run_mission
from repro.app.mpc import MpcConfig, MpcController, MpcStats, MpcSolution
from repro.env.worlds import tunnel_world
from repro.errors import ConfigError


@pytest.fixture
def controller():
    return MpcController(tunnel_world(), target_velocity=3.0)


class TestConfigValidation:
    def test_bad_horizon(self):
        with pytest.raises(ConfigError):
            MpcConfig(horizon=0)

    def test_bad_iteration_limits(self):
        with pytest.raises(ConfigError):
            MpcConfig(min_iterations=10, max_iterations=5)

    def test_bad_dt(self):
        with pytest.raises(ConfigError):
            MpcConfig(step_dt=0.0)

    def test_bad_target_velocity(self):
        with pytest.raises(ConfigError):
            MpcController(tunnel_world(), target_velocity=0.0)

    def test_flops_per_iteration(self):
        cfg = MpcConfig(horizon=10, flops_per_stage=260)
        assert cfg.flops_per_iteration == 2600


class TestSolver:
    def test_centered_state_converges_fast(self, controller):
        solution = controller.solve(10.0, 0.0, 0.0)
        assert solution.iterations <= controller.config.min_iterations + 2
        assert abs(solution.v_lateral) < 0.5
        assert abs(solution.yaw_rate) < 0.3

    def test_offset_state_commands_correction(self, controller):
        # Drone left of center: MPC must command rightward (negative
        # lateral) motion and/or a clockwise turn.
        solution = controller.solve(10.0, 1.0, 0.0)
        assert solution.v_lateral < -0.1 or solution.yaw_rate < -0.05

    def test_heading_error_commands_turn(self, controller):
        solution = controller.solve(10.0, 0.0, 0.5)  # angled left
        assert solution.yaw_rate < -0.1  # turn clockwise back

    def test_data_dependent_iterations(self):
        """The §6 property: disturbed states need more solver iterations."""
        calm = MpcController(tunnel_world(), target_velocity=3.0)
        disturbed = MpcController(tunnel_world(), target_velocity=3.0)
        calm_sol = calm.solve(10.0, 0.0, 0.0)
        disturbed_sol = disturbed.solve(10.0, 1.2, 0.45)
        assert disturbed_sol.iterations > calm_sol.iterations

    def test_flops_scale_with_iterations(self, controller):
        solution = controller.solve(10.0, 1.2, 0.4)
        assert solution.flops == solution.iterations * controller.config.flops_per_iteration

    def test_controls_respect_limits(self, controller):
        solution = controller.solve(10.0, 1.5, -0.6)
        assert abs(solution.v_lateral) <= controller.config.max_lateral_velocity + 1e-9
        assert abs(solution.yaw_rate) <= controller.config.max_yaw_rate + 1e-9

    def test_warm_start_reduces_iterations(self):
        controller = MpcController(tunnel_world(), target_velocity=3.0)
        first = controller.solve(10.0, 1.0, 0.3)
        # Same state again: warm start should converge no slower.
        second = controller.solve(10.0, 1.0, 0.3)
        assert second.iterations <= first.iterations

    def test_batched_rollout_matches_scalar(self, controller):
        rng = np.random.default_rng(0)
        state = (10.0, 0.5, 0.1)
        batch = rng.uniform(-1, 1, (5, controller.config.horizon, 2))
        batched = controller._rollout_costs(batch, state)
        for i in range(5):
            assert controller._rollout_cost(batch[i], state) == pytest.approx(
                float(batched[i]), rel=1e-9
            )


class TestStats:
    def test_record(self):
        stats = MpcStats()
        stats.record(MpcSolution(0.1, 0.0, iterations=5, cost=1.0, flops=500))
        stats.record(MpcSolution(0.1, 0.0, iterations=7, cost=1.0, flops=700))
        assert stats.solves == 2
        assert stats.mean_iterations == 6.0
        assert stats.iteration_history == [5, 7]

    def test_empty_mean(self):
        assert MpcStats().mean_iterations == 0.0


class TestClosedLoopMpc:
    def test_mpc_flies_tunnel(self):
        config = CoSimConfig(
            world="tunnel",
            controller="mpc",
            target_velocity=3.0,
            initial_angle_deg=20.0,
            max_sim_time=40.0,
        )
        result = run_mission(config)
        assert result.completed
        assert result.collisions == 0
        assert result.mpc_stats.solves > 100
        # No DNN ran: the accelerator stayed idle.
        assert result.activity_factor == 0.0
        assert result.inference_count == 0

    def test_mpc_iterations_spike_on_disturbance(self):
        """The initial 20-degree error forces extra solver iterations."""
        config = CoSimConfig(
            world="tunnel",
            controller="mpc",
            target_velocity=3.0,
            initial_angle_deg=20.0,
            max_sim_time=10.0,
        )
        result = run_mission(config)
        history = result.mpc_stats.iteration_history
        early = max(history[:20])
        late = max(history[-20:])
        assert early > late  # converged after the initial correction

    def test_mpc_rejects_dynamic_runtime(self):
        with pytest.raises(ConfigError):
            CoSimConfig(controller="mpc", dynamic_runtime=True)

    def test_unknown_controller_rejected(self):
        with pytest.raises(ConfigError):
            CoSimConfig(controller="fuzzy-logic")
