"""Tests for the calibrated behavioural classifier."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnn.calibrated import (
    CalibratedTrailClassifier,
    ClassifierProfile,
    classification_accuracy,
    classifier_profile,
    fit_sigma,
)
from repro.dnn.dataset import ANGULAR_BOUNDARY
from repro.dnn.resnet import RESNET_NAMES

#: Table 3's accuracy column.
PAPER_ACCURACY = {
    "resnet6": 0.72,
    "resnet11": 0.78,
    "resnet14": 0.82,
    "resnet18": 0.83,
    "resnet34": 0.86,
}


class TestAccuracyModel:
    def test_zero_noise_is_perfect(self):
        assert classification_accuracy(1e-9) == pytest.approx(1.0, abs=1e-3)

    def test_huge_noise_approaches_chance(self):
        # With unbounded noise on a 3-class problem the perceived value is
        # nearly independent of the truth.
        assert classification_accuracy(50.0) < 0.45

    def test_monotone_decreasing(self):
        sigmas = [0.2, 0.5, 1.0, 2.0, 4.0]
        accs = [classification_accuracy(s) for s in sigmas]
        assert accs == sorted(accs, reverse=True)

    @given(st.floats(0.45, 0.98))
    @settings(max_examples=15, deadline=None)
    def test_fit_sigma_inverts(self, target):
        sigma = fit_sigma(target)
        assert classification_accuracy(sigma) == pytest.approx(target, abs=5e-3)

    def test_fit_sigma_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            fit_sigma(0.2)
        with pytest.raises(ValueError):
            fit_sigma(1.0)


class TestProfiles:
    def test_all_variants_have_profiles(self):
        for name in RESNET_NAMES:
            profile = classifier_profile(name)
            assert profile.validation_accuracy == PAPER_ACCURACY[name]

    def test_deeper_is_more_accurate_and_sharper(self):
        profiles = [classifier_profile(n) for n in RESNET_NAMES]
        accs = [p.validation_accuracy for p in profiles]
        temps = [p.temperature for p in profiles]
        sigmas = [p.sigma for p in profiles]
        assert accs == sorted(accs)
        assert temps == sorted(temps, reverse=True)
        assert sigmas == sorted(sigmas, reverse=True)

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            classifier_profile("resnet50")

    def test_profile_cached(self):
        assert classifier_profile("resnet14") is classifier_profile("resnet14")


class TestClassifierBehaviour:
    def test_probs_normalized(self):
        clf = CalibratedTrailClassifier(classifier_profile("resnet14"), seed=0)
        result = clf.infer(0.1, 0.2, 1.6)
        assert result.angular_probs.sum() == pytest.approx(1.0)
        assert result.lateral_probs.sum() == pytest.approx(1.0)

    def test_extreme_pose_classified_correctly(self):
        clf = CalibratedTrailClassifier(classifier_profile("resnet34"), seed=0)
        # Far beyond the boundary: even a noisy perception gets it right.
        result = clf.infer(math.radians(30), -1.2, 1.6)
        assert result.angular_pred == 0  # LEFT
        assert result.lateral_pred == 2  # RIGHT

    def test_validation_accuracy_matches_table3(self):
        for name in RESNET_NAMES:
            clf = CalibratedTrailClassifier(classifier_profile(name), seed=11)
            acc_ang, acc_lat = clf.validation_accuracy(samples=4000)
            target = PAPER_ACCURACY[name]
            assert acc_ang == pytest.approx(target, abs=0.035), name
            assert acc_lat == pytest.approx(target, abs=0.035), name

    def test_deeper_networks_more_confident(self):
        # Average winner probability at a mildly off-center pose.
        def mean_confidence(name):
            clf = CalibratedTrailClassifier(classifier_profile(name), seed=5)
            vals = []
            for _ in range(400):
                result = clf.infer(math.radians(12), 0.0, 1.6)
                vals.append(result.angular_probs.max())
            return float(np.mean(vals))

        assert mean_confidence("resnet34") > mean_confidence("resnet14") > mean_confidence("resnet6")

    def test_seeded_determinism(self):
        a = CalibratedTrailClassifier(classifier_profile("resnet14"), seed=3)
        b = CalibratedTrailClassifier(classifier_profile("resnet14"), seed=3)
        ra = a.infer(0.1, 0.2, 1.6, timestamp=0.0)
        rb = b.infer(0.1, 0.2, 1.6, timestamp=0.0)
        np.testing.assert_array_equal(ra.angular_probs, rb.angular_probs)


class TestTemporalCorrelation:
    def test_nearby_timestamps_correlated(self):
        profile = ClassifierProfile.from_accuracy("x", 0.7, 1.0, correlation_time=1.0)
        clf = CalibratedTrailClassifier(profile, seed=0)
        # Two inferences 1 ms apart perceive nearly the same error.
        r1 = clf.infer(0.0, 0.0, 1.6, timestamp=0.0)
        r2 = clf.infer(0.0, 0.0, 1.6, timestamp=0.001)
        np.testing.assert_allclose(r1.angular_probs, r2.angular_probs, atol=0.05)

    def test_distant_timestamps_decorrelate(self):
        profile = ClassifierProfile.from_accuracy("x", 0.7, 1.0, correlation_time=0.1)
        clf = CalibratedTrailClassifier(profile, seed=0)
        firsts, laters = [], []
        for i in range(300):
            clf2 = CalibratedTrailClassifier(profile, seed=i)
            firsts.append(clf2.infer(0.0, 0.0, 1.6, timestamp=0.0).angular_probs[0])
            laters.append(clf2.infer(0.0, 0.0, 1.6, timestamp=100.0).angular_probs[0])
        corr = np.corrcoef(firsts, laters)[0, 1]
        assert abs(corr) < 0.2

    def test_marginal_distribution_preserved(self):
        """OU-correlated errors must keep the calibrated accuracy."""
        clf = CalibratedTrailClassifier(classifier_profile("resnet14"), seed=21)
        # Closed-loop-style regular timestamps, poses near the boundary.
        correct = 0
        n = 4000
        rng = np.random.default_rng(0)
        for i in range(n):
            truth = float(rng.uniform(1.15, 4.0)) * ANGULAR_BOUNDARY  # LEFT class
            result = clf.infer(truth, 0.0, 1.6, timestamp=i * 0.1)
            correct += result.angular_pred == 0
        # Compare against the same marginal computed without timestamps.
        clf_iid = CalibratedTrailClassifier(classifier_profile("resnet14"), seed=22)
        correct_iid = 0
        for i in range(n):
            truth = float(rng.uniform(1.15, 4.0)) * ANGULAR_BOUNDARY
            result = clf_iid.infer(truth, 0.0, 1.6)
            correct_iid += result.angular_pred == 0
        assert correct / n == pytest.approx(correct_iid / n, abs=0.05)
