"""End-to-end co-simulation integration tests.

These fly real (short) missions through the full stack: environment
simulator -> RPC -> synchronizer -> transport -> FireSim host -> SoC ->
controller application -> bridge -> flight controller.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import CoSimConfig, SyncConfig, run_mission
from repro.core.cosim import CoSimulation


@pytest.fixture(scope="module")
def tunnel_mission():
    """One completed tunnel mission shared by assertions below."""
    config = CoSimConfig(
        world="tunnel",
        soc="A",
        model="resnet14",
        target_velocity=3.0,
        initial_angle_deg=20.0,
        max_sim_time=40.0,
    )
    return run_mission(config)


class TestTunnelMission(object):
    def test_mission_completes(self, tunnel_mission):
        assert tunnel_mission.completed
        assert tunnel_mission.collisions == 0
        assert tunnel_mission.mission_time < 25.0

    def test_velocity_near_target(self, tunnel_mission):
        assert tunnel_mission.average_velocity == pytest.approx(3.0, abs=0.6)

    def test_inference_latency_near_table3(self, tunnel_mission):
        # ResNet14 on BOOM+Gemmini ~98 ms compute + sync alignment.
        assert 90 < tunnel_mission.mean_inference_latency_ms < 130

    def test_activity_factor_in_range(self, tunnel_mission):
        assert 0.1 < tunnel_mission.activity_factor < 0.9

    def test_trajectory_progresses_monotonically(self, tunnel_mission):
        s_values = [p.s for p in tunnel_mission.trajectory]
        # Progress may stall but must not regress substantially.
        assert s_values[-1] > 45.0
        drops = sum(1 for a, b in zip(s_values, s_values[1:]) if b < a - 0.5)
        assert drops == 0

    def test_trajectory_stays_in_corridor(self, tunnel_mission):
        assert all(abs(p.d) < 1.6 for p in tunnel_mission.trajectory)

    def test_initial_angle_correction_visible(self, tunnel_mission):
        # Started at +20 degrees: early lateral drift, then recentered.
        final_d = tunnel_mission.trajectory[-1].d
        assert abs(final_d) < 1.0

    def test_csv_log_written(self, tunnel_mission):
        assert len(tunnel_mission.logger) > 100
        text = tunnel_mission.logger.to_csv()
        assert text.startswith("step,")

    def test_app_stats_recorded(self, tunnel_mission):
        assert tunnel_mission.app_stats.inference_count == tunnel_mission.inference_count
        assert tunnel_mission.inference_count > 50

    def test_summary_text(self, tunnel_mission):
        text = tunnel_mission.summary()
        assert "completed" in text
        assert "A/resnet14@3m/s" in text


class TestDeterminism:
    def test_same_seed_same_result(self):
        config = CoSimConfig(
            world="tunnel", model="resnet6", target_velocity=3.0, max_sim_time=8.0, seed=5
        )
        a = run_mission(config)
        b = run_mission(config)
        assert a.sim_time == b.sim_time
        assert a.inference_count == b.inference_count
        assert [(p.x, p.y) for p in a.trajectory] == [(p.x, p.y) for p in b.trajectory]

    def test_different_seed_diverges(self):
        config = CoSimConfig(
            world="tunnel", model="resnet6", target_velocity=3.0, max_sim_time=8.0
        )
        a = run_mission(replace(config, seed=1))
        b = run_mission(replace(config, seed=2))
        assert [(p.x, p.y) for p in a.trajectory] != [(p.x, p.y) for p in b.trajectory]


class TestTransports:
    def test_tcp_transport_mission_matches_inprocess(self):
        base = CoSimConfig(
            world="tunnel", model="resnet6", target_velocity=3.0, max_sim_time=5.0, seed=3
        )
        inproc = run_mission(replace(base, transport="inprocess"))
        tcp = run_mission(replace(base, transport="tcp"))
        # The transport must not change simulated behaviour at all.
        assert tcp.inference_count == inproc.inference_count
        assert tcp.soc_cycles == inproc.soc_cycles
        assert [(p.x, p.y) for p in tcp.trajectory] == [
            (p.x, p.y) for p in inproc.trajectory
        ]


class TestDynamicRuntime:
    def test_dynamic_mission_runs_both_models(self):
        config = CoSimConfig(
            world="s-shape",
            soc="A",
            target_velocity=9.0,
            dynamic_runtime=True,
            max_sim_time=20.0,
        )
        result = run_mission(config)
        by_model = result.app_stats.inferences_by_model
        assert "resnet14" in by_model
        assert "resnet6" in by_model
        assert result.app_stats.session_switches >= 1

    def test_dynamic_lowers_activity_vs_static(self):
        base = CoSimConfig(world="s-shape", soc="A", target_velocity=9.0, max_sim_time=30.0)
        static = run_mission(replace(base, model="resnet14"))
        dynamic = run_mission(replace(base, dynamic_runtime=True))
        assert dynamic.activity_factor < static.activity_factor


class TestSyncGranularityEffects:
    def test_coarse_sync_increases_latency(self):
        base = CoSimConfig(
            world="tunnel",
            model="resnet14",
            target_velocity=3.0,
            initial_angle_deg=20.0,
            max_sim_time=6.0,
        )
        fine = run_mission(replace(base, sync=SyncConfig(cycles_per_sync=10_000_000)))
        coarse = run_mission(replace(base, sync=SyncConfig(cycles_per_sync=400_000_000)))
        assert coarse.mean_inference_latency_ms > 2.5 * fine.mean_inference_latency_ms

    def test_trajectories_diverge_with_granularity(self):
        base = CoSimConfig(
            world="tunnel",
            model="resnet14",
            target_velocity=3.0,
            initial_angle_deg=20.0,
            max_sim_time=6.0,
        )
        fine = run_mission(replace(base, sync=SyncConfig(cycles_per_sync=10_000_000)))
        coarse = run_mission(replace(base, sync=SyncConfig(cycles_per_sync=200_000_000)))
        # Same initial conditions, different sync: paths differ (Fig 16).
        fine_y = {round(p.time, 2): p.y for p in fine.trajectory}
        diffs = [
            abs(fine_y[round(p.time, 2)] - p.y)
            for p in coarse.trajectory
            if round(p.time, 2) in fine_y and p.time > 2.0
        ]
        assert max(diffs) > 0.1


class TestHardwareConfigC:
    def test_cpu_only_fails_tunnel(self):
        config = CoSimConfig(
            world="tunnel",
            soc="C",
            model="resnet14",
            target_velocity=3.0,
            initial_angle_deg=20.0,
            max_sim_time=15.0,
        )
        result = run_mission(config)
        # Section 5.1: ~6 s latency -> collides before navigating.
        assert not result.completed
        assert result.collisions >= 1
        assert result.activity_factor == 0.0


class TestCoSimulationAssembly:
    def test_world_params_forwarded(self):
        config = CoSimConfig(world="s-shape", world_params={"amplitude": 2.0}, max_sim_time=5.0)
        cosim = CoSimulation(config)
        assert cosim.env.world.centerline.points[:, 1].max() < 3.0

    def test_custom_gains_forwarded(self):
        config = CoSimConfig(beta_lateral=9.9, max_sim_time=5.0)
        cosim = CoSimulation(config)
        # The gains land in the loaded application closure; verify via the
        # program by running one step and checking no error, plus the
        # config plumbing.
        assert config.beta_lateral == 9.9


class TestSessionReuse:
    def test_one_session_per_model_within_simulation(self):
        config = CoSimConfig(
            world="tunnel",
            model="resnet6",
            background="dnn-monitor",
            target_velocity=3.0,
            max_sim_time=2.0,
        )
        sim = CoSimulation(config)
        # The trail app and the background monitor both use resnet6 and
        # must share one InferenceSession (one graph, one cycle plan).
        assert set(sim._sessions) == {"resnet6"}
        assert sim._session("resnet6") is sim._session("resnet6")

    def test_stage_timer_wired_through(self):
        result = run_mission(
            CoSimConfig(world="tunnel", target_velocity=3.0, max_sim_time=2.0)
        )
        timings = result.stage_timings
        assert set(timings) >= {"env_step", "soc_step", "sync_overhead", "inference"}
        assert all(seconds >= 0.0 for seconds in timings.values())
        # Inference happens inside the SoC step, so it can never exceed it.
        assert timings["inference"] <= timings["soc_step"]
