"""Tests for the reproduction-report generator and world frame batching."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.report import (
    PAPER_TABLE3,
    fig15_section,
    quick_report,
    table3_section,
)
from repro.env.geometry import Pose2
from repro.env.worlds import s_shape_world, tunnel_world


class TestReportSections:
    def test_table3_section_rows(self):
        lines = table3_section()
        assert lines[0].startswith("## Table 3")
        for model in PAPER_TABLE3:
            assert any(model in line for line in lines), model
        # Every data row carries both paper and measured cells.
        data_rows = [l for l in lines if l.startswith("| resnet")]
        assert len(data_rows) == 5
        for row in data_rows:
            assert row.count("|") == 8

    def test_fig15_section_monotone(self):
        lines = fig15_section()
        rates = [
            float(line.split("|")[2].strip().split()[0])
            for line in lines
            if line.startswith("| ") and "MHz" in line
        ]
        assert rates == sorted(rates)

    def test_quick_report_smoke(self):
        text = quick_report(seed=0)
        assert text.startswith("# Reproduction report")
        assert "## Table 3" in text
        assert "## Figure 12" in text
        assert "## Figure 15" in text
        # The 9 m/s optimum flies clean.
        fig12 = text.split("## Figure 12")[1].split("##")[0]
        nine = next(line for line in fig12.splitlines() if line.startswith("| 9 m/s"))
        assert "(0 coll.)" in nine


class TestBatchCourseFrames:
    """The vectorized course-frame query must match the scalar one."""

    @pytest.mark.parametrize("world_builder", [tunnel_world, s_shape_world])
    def test_matches_scalar_projection(self, world_builder):
        world = world_builder()
        rng = np.random.default_rng(3)
        s_values = rng.uniform(2.0, world.centerline.length - 2.0, 25)
        d_values = rng.uniform(-0.8, 0.8, 25) * world.half_width
        points = np.array(
            [
                world.centerline.point_at_arclength(float(s))
                + float(d) * world.centerline.normal_at_arclength(float(s))
                for s, d in zip(s_values, d_values)
            ]
        )
        offsets, course_yaws = world.batch_course_frames(points)
        for i, point in enumerate(points):
            s, d = world.centerline.project(point)
            assert offsets[i] == pytest.approx(d, abs=1e-6)
            tangent = world.centerline.tangent_at_arclength(s)
            expected_yaw = math.atan2(tangent[1], tangent[0])
            assert course_yaws[i] == pytest.approx(expected_yaw, abs=1e-9)

    def test_heading_error_consistency(self):
        world = s_shape_world()
        pose = world.spawn_pose(initial_angle=0.25)
        offsets, course_yaws = world.batch_course_frames(pose.position[None, :])
        assert pose.yaw - course_yaws[0] == pytest.approx(
            world.heading_error(pose), abs=1e-9
        )
