"""Tests for the repro.obs observability layer.

Covers the metrics registry semantics, the declarations catalog, the
flight recorder, exporters and schema validation (both the jsonschema
and the structural fallback paths), snapshot merging, the legacy-stats
thin views, sweep-level telemetry aggregation (parallel == serial,
cache hits reconstitute their telemetry), and the ``obs`` CLI.
"""

from __future__ import annotations

import builtins
import json

import pytest

from repro.cli import main
from repro.core.config import CoSimConfig
from repro.core.cosim import run_mission
from repro.core.faults import FaultPlan
from repro.core.synchronizer import SyncStats
from repro.app.controller import AppStats
from repro.app.fusion import FusionStats
from repro.errors import ConfigError
from repro.obs import (
    COVERAGE_EXEMPT,
    DECLARED_METRICS,
    FlightRecord,
    MetricSpec,
    MetricsRegistry,
    OBS_FORMAT,
    exercised_metrics,
    merge_snapshots,
    mission_registry,
    parse_prometheus,
    spec_for,
    to_prometheus,
    trace_summary,
    validate_artifact,
)
from repro.obs.schema import _structural_errors
from repro.sweep.cache import ResultCache
from repro.sweep.runner import SweepRunner


def tiny_config(**overrides) -> CoSimConfig:
    base = dict(
        world="tunnel", soc="A", model="resnet6", max_sim_time=1.0
    )
    base.update(overrides)
    return CoSimConfig(**base)


@pytest.fixture(scope="module")
def faulty_result():
    """One short faulty mission, shared across the integration tests."""
    return run_mission(
        tiny_config(seed=5, faults=FaultPlan.sensor_response_drop(0.2, seed=3))
    )


# ---------------------------------------------------------------------------
# MetricSpec validation
# ---------------------------------------------------------------------------
class TestMetricSpec:
    def test_valid_spec(self):
        spec = MetricSpec("rose_x_total", "counter", "help", labels=("kind",))
        assert spec.labels == ("kind",)

    def test_bad_name_rejected(self):
        with pytest.raises(ConfigError):
            MetricSpec("Rose-X", "counter", "help")

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError):
            MetricSpec("rose_x", "timer", "help")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigError):
            MetricSpec("rose_x", "counter", "help", labels=("a", "a"))

    def test_histogram_needs_buckets(self):
        with pytest.raises(ConfigError):
            MetricSpec("rose_h", "histogram", "help")

    def test_histogram_buckets_strictly_increasing(self):
        with pytest.raises(ConfigError):
            MetricSpec("rose_h", "histogram", "help", buckets=(1.0, 1.0, 2.0))

    def test_counter_must_not_declare_buckets(self):
        with pytest.raises(ConfigError):
            MetricSpec("rose_x", "counter", "help", buckets=(1.0,))


# ---------------------------------------------------------------------------
# MetricsRegistry semantics
# ---------------------------------------------------------------------------
def small_registry() -> MetricsRegistry:
    return MetricsRegistry(
        [
            MetricSpec("rose_ops_total", "counter", "ops", labels=("kind",)),
            MetricSpec("rose_level", "gauge", "level"),
            MetricSpec(
                "rose_latency", "histogram", "latency", buckets=(1.0, 10.0, 100.0)
            ),
        ]
    )


class TestRegistry:
    def test_counter_inc_and_value(self):
        reg = small_registry()
        reg.inc("rose_ops_total", kind="a")
        reg.inc("rose_ops_total", 2, kind="a")
        reg.inc("rose_ops_total", kind="b")
        assert reg.value("rose_ops_total", kind="a") == 3
        assert reg.total("rose_ops_total") == 4

    def test_counter_values_stay_int(self):
        # fault_summary() feeds the canonical payload; int -> float here
        # would change every golden signature.
        reg = small_registry()
        reg.inc("rose_ops_total", kind="a")
        value = reg.value("rose_ops_total", kind="a")
        assert type(value) is int
        row = reg.snapshot()["rose_ops_total"]["series"][0]
        assert type(row["value"]) is int

    def test_counter_negative_inc_rejected(self):
        with pytest.raises(ConfigError):
            small_registry().inc("rose_ops_total", -1, kind="a")

    def test_advance_to_is_monotonic(self):
        reg = small_registry()
        reg.advance_to("rose_ops_total", 5, kind="a")
        reg.advance_to("rose_ops_total", 5, kind="a")  # no-op is fine
        reg.advance_to("rose_ops_total", 9, kind="a")
        assert reg.value("rose_ops_total", kind="a") == 9
        with pytest.raises(ConfigError):
            reg.advance_to("rose_ops_total", 3, kind="a")

    def test_gauge_set_overwrites(self):
        reg = small_registry()
        reg.set("rose_level", 2.5)
        reg.set("rose_level", 1.25)
        assert reg.value("rose_level") == 1.25

    def test_histogram_bucket_boundaries(self):
        reg = small_registry()
        # A value exactly on an edge lands in that edge's bucket.
        reg.observe("rose_latency", 1.0)
        reg.observe("rose_latency", 5.0)
        reg.observe("rose_latency", 1000.0)  # above the last edge: overflow
        row = reg.snapshot()["rose_latency"]["series"][0]
        assert row["buckets"] == [1, 1, 0, 1]
        assert row["count"] == 3
        assert row["sum"] == pytest.approx(1006.0)

    def test_histogram_weighted_observation(self):
        reg = small_registry()
        reg.observe("rose_latency", 5.0, count=4)
        reg.observe("rose_latency", 5.0, count=0)  # no-op
        row = reg.snapshot()["rose_latency"]["series"][0]
        assert row["count"] == 4
        assert row["sum"] == pytest.approx(20.0)
        assert reg.total("rose_latency") == 4

    def test_kind_mismatch_rejected(self):
        reg = small_registry()
        with pytest.raises(ConfigError):
            reg.inc("rose_level")
        with pytest.raises(ConfigError):
            reg.set("rose_ops_total", 1, kind="a")
        with pytest.raises(ConfigError):
            reg.observe("rose_ops_total", 1, kind="a")
        with pytest.raises(ConfigError):
            reg.value("rose_latency")

    def test_unregistered_name_rejected(self):
        with pytest.raises(ConfigError):
            small_registry().inc("rose_nope_total")

    def test_wrong_label_set_rejected(self):
        reg = small_registry()
        with pytest.raises(ConfigError):
            reg.inc("rose_ops_total")  # missing the kind label
        with pytest.raises(ConfigError):
            reg.inc("rose_ops_total", kind="a", extra="b")

    def test_duplicate_registration_rejected(self):
        reg = small_registry()
        with pytest.raises(ConfigError):
            reg.register(MetricSpec("rose_level", "gauge", "again"))

    def test_unwritten_series_reads_zero(self):
        reg = small_registry()
        assert reg.value("rose_ops_total", kind="never") == 0
        assert reg.series_count("rose_ops_total") == 0

    def test_snapshot_sorted_and_complete(self):
        reg = small_registry()
        reg.inc("rose_ops_total", kind="b")
        reg.inc("rose_ops_total", kind="a")
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        # Unwritten metrics appear with empty series (coverage reads this).
        assert snap["rose_level"]["series"] == []
        kinds = [row["labels"]["kind"] for row in snap["rose_ops_total"]["series"]]
        assert kinds == ["a", "b"]
        assert exercised_metrics(snap) == {"rose_ops_total"}

    def test_snapshot_is_json_stable(self):
        reg = small_registry()
        reg.inc("rose_ops_total", kind="a")
        reg.observe("rose_latency", 2.0)
        a = json.dumps(reg.snapshot(), sort_keys=True)
        b = json.dumps(reg.snapshot(), sort_keys=True)
        assert a == b


# ---------------------------------------------------------------------------
# Declarations catalog
# ---------------------------------------------------------------------------
class TestDeclarations:
    def test_mission_registry_covers_mission_catalog(self):
        from repro.obs import MISSION_METRICS

        reg = mission_registry()
        assert set(reg.names()) == {spec.name for spec in MISSION_METRICS}

    def test_sweep_registry_covers_sweep_catalog(self):
        from repro.obs import SWEEP_METRICS, sweep_registry

        reg = sweep_registry()
        assert set(reg.names()) == {spec.name for spec in SWEEP_METRICS}
        # Disjoint catalogs: a sweep metric can never leak into a mission
        # snapshot (which the golden corpus hashes byte-for-byte).
        assert not set(reg.names()) & set(mission_registry().names())

    def test_declared_is_mission_plus_sweep_plus_serve(self):
        from repro.obs import MISSION_METRICS, SERVE_METRICS, SWEEP_METRICS

        assert DECLARED_METRICS == MISSION_METRICS + SWEEP_METRICS + SERVE_METRICS

    def test_serve_registry_covers_serve_catalog(self):
        from repro.obs import SERVE_METRICS, serve_registry

        reg = serve_registry()
        assert set(reg.names()) == {spec.name for spec in SERVE_METRICS}
        # Same disjointness contract as sweep metrics: service ops series
        # must never leak into mission or sweep snapshots.
        assert not set(reg.names()) & set(mission_registry().names())

    def test_spec_for(self):
        assert spec_for("rose_sync_steps_total") is not None
        assert spec_for("rose_nope") is None

    def test_exemptions_are_declared(self):
        declared = {spec.name for spec in DECLARED_METRICS}
        assert COVERAGE_EXEMPT <= declared


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------
class TestFlightRecord:
    def record(self) -> FlightRecord:
        reg = small_registry()
        reg.inc("rose_ops_total", kind="a")
        return FlightRecord(
            label="demo",
            config_key="abc123",
            metrics=reg.snapshot(),
            stage_timings={"env_step": 0.5},
            trace={"events": 2, "by_category": {"sync": 2}},
        )

    def test_json_round_trip(self):
        record = self.record()
        back = FlightRecord.from_json(record.to_json())
        assert back == record

    def test_wrong_format_rejected(self):
        data = self.record().to_dict()
        data["format"] = "rose-obs/999"
        with pytest.raises(ConfigError):
            FlightRecord.from_dict(data)

    def test_deterministic_view_excludes_host_fields(self):
        view = self.record().deterministic_view()
        assert view["format"] == OBS_FORMAT
        assert "stage_timings" not in view
        assert "trace" not in view

    def test_trace_summary_counts_only(self):
        class Event:
            def __init__(self, category):
                self.category = category

        summary = trace_summary([Event("sync"), Event("sync"), Event("env")])
        assert summary == {"events": 3, "by_category": {"env": 1, "sync": 2}}


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
class TestPrometheus:
    def test_counter_round_trip(self):
        reg = small_registry()
        reg.inc("rose_ops_total", 3, kind="a")
        reg.inc("rose_ops_total", 1, kind="b")
        text = to_prometheus(reg.snapshot())
        assert "# TYPE rose_ops_total counter" in text
        assert 'rose_ops_total{kind="a"} 3' in text
        back = parse_prometheus(text)
        assert back["rose_ops_total"]["series"] == [
            {"labels": {"kind": "a"}, "value": 3},
            {"labels": {"kind": "b"}, "value": 1},
        ]

    def test_histogram_cumulative_and_back(self):
        reg = small_registry()
        reg.observe("rose_latency", 0.5)
        reg.observe("rose_latency", 5.0, count=2)
        reg.observe("rose_latency", 500.0)
        text = to_prometheus(reg.snapshot())
        assert 'rose_latency_bucket{le="10.0"} 3' in text
        assert 'rose_latency_bucket{le="+Inf"} 4' in text
        back = parse_prometheus(text)
        row = back["rose_latency"]["series"][0]
        assert row["buckets"] == [1, 2, 0, 1]
        assert row["count"] == 4
        assert back["rose_latency"]["buckets"] == [1.0, 10.0, 100.0]

    def test_label_escaping_round_trip(self):
        reg = MetricsRegistry(
            [MetricSpec("rose_x_total", "counter", "x", labels=("actor",))]
        )
        tricky = 'he said "hi\\there"\nbye'
        reg.inc("rose_x_total", actor=tricky)
        back = parse_prometheus(to_prometheus(reg.snapshot()))
        assert back["rose_x_total"]["series"][0]["labels"]["actor"] == tricky

    def test_help_line_from_catalog(self):
        reg = mission_registry()
        reg.inc("rose_sync_steps_total")
        text = to_prometheus(reg.snapshot())
        assert text.startswith("# HELP rose_sync_steps_total ")

    def test_sample_without_type_rejected(self):
        with pytest.raises(ConfigError):
            parse_prometheus("rose_mystery_total 3\n")

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(small_registry().snapshot()) == ""
        assert parse_prometheus("") == {}


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------
class TestMergeSnapshots:
    def test_counters_and_histograms_sum(self):
        a, b = small_registry(), small_registry()
        a.inc("rose_ops_total", 2, kind="x")
        b.inc("rose_ops_total", 3, kind="x")
        b.inc("rose_ops_total", 1, kind="y")
        a.observe("rose_latency", 5.0)
        b.observe("rose_latency", 50.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        values = {
            row["labels"]["kind"]: row["value"]
            for row in merged["rose_ops_total"]["series"]
        }
        assert values == {"x": 5, "y": 1}
        row = merged["rose_latency"]["series"][0]
        assert row["buckets"] == [0, 1, 1, 0]
        assert row["count"] == 2

    def test_empty_merge(self):
        assert merge_snapshots([]) == {}

    def test_kind_mismatch_rejected(self):
        a = {"rose_x": {"kind": "counter", "labels": [], "series": []}}
        b = {"rose_x": {"kind": "gauge", "labels": [], "series": []}}
        with pytest.raises(ConfigError):
            merge_snapshots([a, b])

    def test_merge_keeps_unexercised_metrics(self):
        a, b = small_registry(), small_registry()
        a.inc("rose_ops_total", kind="x")
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["rose_level"]["series"] == []


# ---------------------------------------------------------------------------
# Schema validation (both paths)
# ---------------------------------------------------------------------------
class TestSchema:
    def artifact(self) -> dict:
        reg = small_registry()
        reg.inc("rose_ops_total", kind="a")
        reg.observe("rose_latency", 5.0)
        return FlightRecord(
            label="m", config_key="k", metrics=reg.snapshot()
        ).to_dict()

    def test_valid_artifact(self):
        assert validate_artifact(self.artifact()) == []

    def test_structural_fallback_matches(self, monkeypatch):
        # Simulate the CI environment where jsonschema is not installed.
        real_import = builtins.__import__

        def no_jsonschema(name, *args, **kwargs):
            if name == "jsonschema":
                raise ImportError("blocked for test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_jsonschema)
        assert validate_artifact(self.artifact()) == []

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda data: data.update(format="rose-obs/999"),
            lambda data: data.pop("config_key"),
            lambda data: data["metrics"]["rose_latency"]["series"][0].pop(
                "buckets"
            ),
            lambda data: data["metrics"]["rose_ops_total"]["series"][0].update(
                value="three"
            ),
        ],
    )
    def test_invalid_artifacts_flagged_by_both_paths(self, mutate):
        data = self.artifact()
        mutate(data)
        assert validate_artifact(json.loads(json.dumps(data))) != []
        assert _structural_errors(json.loads(json.dumps(data))) != []

    def test_label_name_mismatch_is_structural(self):
        # "row labels must match the declared label names" is a
        # cross-field constraint JSON Schema cannot express; the
        # structural validator carries it on both paths' behalf.
        data = self.artifact()
        data["metrics"]["rose_ops_total"]["series"][0]["labels"]["extra"] = "x"
        assert any(
            "label names" in error for error in _structural_errors(data)
        )

    def test_non_object_rejected(self):
        assert _structural_errors([1, 2]) == ["artifact is not a JSON object"]


# ---------------------------------------------------------------------------
# Legacy stats thin views
# ---------------------------------------------------------------------------
class TestStatsViews:
    def test_sync_stats_views_read_registry(self):
        stats = SyncStats()
        stats.packets_dropped += 1
        stats.packets_dropped += 1
        stats.corrupt_discards = 3
        assert stats.packets_dropped == 2
        assert stats.corrupt_discards == 3
        assert stats.registry.value("rose_link_faults_total", kind="drop") == 2
        assert stats.registry.value("rose_link_crc_discards_total") == 3

    def test_sync_stats_decrease_rejected(self):
        stats = SyncStats()
        stats.sync_regrants = 4
        with pytest.raises(ConfigError):
            stats.sync_regrants = 2

    def test_fault_summary_reads_views(self):
        stats = SyncStats()
        stats.packets_corrupted += 1
        stats.sensor_faults += 2
        summary = stats.fault_summary()
        assert summary["packets_corrupted"] == 1
        assert summary["sensor_faults"] == 2
        assert all(type(v) is int for v in summary.values())

    def test_app_stats_views(self):
        stats = AppStats()
        stats.sensor_timeouts += 1
        stats.stale_frames_reused += 1
        assert stats.sensor_timeouts == 1
        assert stats.registry.value("rose_app_sensor_timeouts_total") == 1
        assert stats.registry.value("rose_app_stale_frames_total") == 1

    def test_app_stats_record_feeds_metrics(self):
        stats = AppStats()
        stats.record(100, 300, "resnet6")
        stats.record(100, 500, "resnet6")
        assert stats.inference_count == 2
        assert (
            stats.registry.value("rose_app_inferences_total", model="resnet6") == 2
        )
        snap = stats.registry.snapshot()
        row = snap["rose_app_inference_latency_cycles"]["series"][0]
        assert row["count"] == 2
        assert row["sum"] == pytest.approx(600.0)

    def test_fusion_stats_views(self):
        stats = FusionStats()
        stats.imu_timeouts += 2
        stats.camera_timeouts += 1
        stats.sensor_retries += 3
        assert stats.imu_timeouts == 2
        assert (
            stats.registry.value("rose_fusion_sensor_timeouts_total", sensor="imu")
            == 2
        )
        assert (
            stats.registry.value(
                "rose_fusion_sensor_timeouts_total", sensor="camera"
            )
            == 1
        )
        assert stats.registry.value("rose_fusion_sensor_retries_total") == 3


# ---------------------------------------------------------------------------
# Mission integration
# ---------------------------------------------------------------------------
class TestMissionObs:
    def test_flight_record_attached_and_valid(self, faulty_result):
        record = faulty_result.obs
        assert record is not None
        assert validate_artifact(record.to_dict()) == []
        assert record.config_key
        assert record.stage_timings  # wall-clock stages present

    def test_metrics_agree_with_result(self, faulty_result):
        snap = faulty_result.obs.metrics
        total = sum(
            row["value"] for row in snap["rose_soc_cycles_total"]["series"]
        )
        assert total == faulty_result.soc_cycles
        inferences = sum(
            row["value"] for row in snap["rose_app_inferences_total"]["series"]
        )
        assert inferences == faulty_result.inference_count
        steps = sum(
            row["value"] for row in snap["rose_sync_steps_total"]["series"]
        )
        assert steps == faulty_result.sync_stats.steps

    def test_fault_metrics_recorded(self, faulty_result):
        snap = faulty_result.obs.metrics
        dropped = sum(
            row["value"]
            for row in snap["rose_link_faults_total"]["series"]
            if row["labels"]["kind"] == "drop"
        )
        assert dropped == faulty_result.sync_stats.packets_dropped
        assert dropped > 0  # the plan really injected faults
        injected = sum(
            row["value"]
            for row in snap["rose_faults_injected_total"]["series"]
            if row["labels"]["kind"] == "drop"
        )
        assert injected == dropped

    def test_obs_is_deterministic(self, faulty_result):
        again = run_mission(
            tiny_config(seed=5, faults=FaultPlan.sensor_response_drop(0.2, seed=3))
        )
        assert (
            again.obs.deterministic_view()
            == faulty_result.obs.deterministic_view()
        )


# ---------------------------------------------------------------------------
# Sweep-level aggregation
# ---------------------------------------------------------------------------
class TestSweepTelemetry:
    def configs(self):
        return [(f"seed{s}", tiny_config(seed=s)) for s in (0, 1, 2)]

    def test_parallel_equals_serial(self):
        serial = SweepRunner(workers=1).run(self.configs()).telemetry()
        parallel = SweepRunner(workers=2).run(self.configs()).telemetry()
        assert parallel == serial

    def test_cache_hits_reconstitute_telemetry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = SweepRunner(workers=1, cache=cache).run(self.configs())
        assert not any(o.from_cache for o in first.outcomes)
        cache2 = ResultCache(tmp_path / "cache")
        second = SweepRunner(workers=1, cache=cache2).run(self.configs())
        assert all(o.from_cache for o in second.outcomes)
        assert second.telemetry() == first.telemetry()

    def test_telemetry_matches_manual_merge(self):
        from repro.obs import sweep_registry

        report = SweepRunner(workers=1).run(self.configs())
        mission_part = [o.result.obs.metrics for o in report.outcomes]
        # telemetry() additionally folds in the sweep-supervisor snapshot;
        # on a fault-free run that snapshot is all empty series, so the
        # merge equals the mission merge plus a fresh sweep registry.
        manual = merge_snapshots(mission_part + [sweep_registry().snapshot()])
        assert report.telemetry() == manual
        mission_only = merge_snapshots(mission_part)
        for name, entry in mission_only.items():
            assert report.telemetry()[name] == entry


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCliObs:
    def test_list(self, capsys):
        assert main(["obs", "--list"]) == 0
        out = capsys.readouterr().out
        assert "obs-healthy" in out
        assert "tunnel-dnn-r14-socA" in out
        assert "declared metric(s)" in out

    def test_mission_validate_diff_summarize(self, capsys, tmp_path):
        # obs-watchdog ends via the watchdog within ~a simulated second,
        # so it is the cheapest full-pipeline mission to drive the CLI.
        out_path = tmp_path / "watchdog.json"
        prom_path = tmp_path / "watchdog.prom"
        assert main([
            "obs", "--mission", "obs-watchdog",
            "--out", str(out_path), "--prometheus", str(prom_path),
        ]) == 0
        record = FlightRecord.from_json(out_path.read_text())
        assert record.label
        assert "rose_sync_watchdog_fires_total" in prom_path.read_text()

        assert main(["obs", "--validate", str(out_path)]) == 0
        capsys.readouterr()

        assert main(["obs", "--diff", str(out_path), str(out_path)]) == 0
        assert "identical" in capsys.readouterr().out

        merged_path = tmp_path / "merged.json"
        assert main([
            "obs", "--summarize", str(tmp_path), "--out", str(merged_path),
        ]) == 0
        assert "artifact(s) merged" in capsys.readouterr().out
        assert json.loads(merged_path.read_text())

    def test_unknown_mission_exit_two(self, capsys):
        assert main(["obs", "--mission", "nope"]) == 2
        assert "unknown mission" in capsys.readouterr().err

    def test_validate_bad_artifact_exit_one(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "rose-obs/1"}))
        assert main(["obs", "--validate", str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_no_action_exit_two(self, capsys):
        assert main(["obs"]) == 2
        assert "nothing to do" in capsys.readouterr().err
