"""Tests for the multitasking SoC scheduler, demux, and background apps."""

from __future__ import annotations

import pytest

from repro import CoSimConfig, run_mission
from repro.core import packets as pk
from repro.core.packets import PacketType
from repro.errors import ConfigError
from repro.soc.demux import IoDemux
from repro.soc.iodev import REG_RX_COUNT, REG_RX_DATA
from repro.soc.soc import CONFIG_A, Soc


class TestScheduler:
    def test_duplicate_task_name_rejected(self):
        soc = Soc(CONFIG_A)
        soc.load_program(lambda rt: iter(()), name="a")
        with pytest.raises(ConfigError):
            soc.add_program(lambda rt: iter(()), name="a")

    def test_task_lookup(self):
        soc = Soc(CONFIG_A)
        soc.load_program(lambda rt: iter(()), name="a")
        assert soc.task("a").name == "a"
        with pytest.raises(ConfigError):
            soc.task("ghost")

    def test_load_program_replaces_tasks(self):
        soc = Soc(CONFIG_A)
        soc.load_program(lambda rt: iter(()), name="a")
        soc.add_program(lambda rt: iter(()), name="b")
        soc.load_program(lambda rt: iter(()), name="c")
        assert [t.name for t in soc.tasks] == ["c"]

    def test_sleeping_tasks_overlap(self):
        """Two tasks that mostly sleep interleave without serializing."""
        log = []

        def make(tag):
            def program(rt):
                for i in range(3):
                    yield from rt.compute(100)
                    log.append((tag, i))
                    yield from rt.delay(10_000)

            return program

        soc = Soc(CONFIG_A)
        soc.load_program(make("a"), name="a")
        soc.add_program(make("b"), name="b")
        soc.step(100_000)
        # Both tasks completed all iterations, interleaved.
        assert log.count(("a", 0)) == 1
        assert sorted(t for t, _ in log) == ["a"] * 3 + ["b"] * 3
        assert log[0][0] != log[1][0]  # round-robin interleaving

    def test_core_ops_serialize(self):
        """Two CPU-heavy tasks take twice the wall cycles of one."""

        def hog(rt):
            yield from rt.compute(1_000_000)

        solo = Soc(CONFIG_A)
        solo.load_program(hog, name="a")
        solo.step(3_000_000)
        assert solo.task("a").halted

        duo = Soc(CONFIG_A)
        duo.load_program(hog, name="a")
        duo.add_program(hog, name="b")
        duo.step(1_500_000)
        # After 1.5M cycles only ~1.5M cycles of the 2M total ran.
        busy = duo.task("a").busy_cycles + duo.task("b").busy_cycles
        assert busy == 1_500_000
        assert not (duo.task("a").halted and duo.task("b").halted)
        duo.step(600_000)
        assert duo.task("a").halted and duo.task("b").halted

    def test_contention_delays_neighbour(self):
        """A long op blocks the other task's short op (queueing delay)."""
        finish = {}

        def long_task(rt):
            yield from rt.compute(1_000_000)
            finish["long"] = yield from rt.current_cycle()

        def short_task(rt):
            yield from rt.delay(10)  # arrive just after the long op starts
            yield from rt.compute(100)
            finish["short"] = yield from rt.current_cycle()

        soc = Soc(CONFIG_A)
        soc.load_program(long_task, name="long")
        soc.add_program(short_task, name="short")
        soc.step(2_000_000)
        # The short task's 100-cycle op could not start until the core
        # freed at ~1M cycles.
        assert finish["short"] > 1_000_000

    def test_halted_property_requires_all(self):
        def quick(rt):
            yield from rt.compute(10)

        def slow(rt):
            yield from rt.compute(10_000_000)

        soc = Soc(CONFIG_A)
        soc.load_program(quick, name="quick")
        soc.add_program(slow, name="slow")
        soc.step(1_000)
        # quick's generator is exhausted (halt is latched at its next
        # fetch); the SoC as a whole is still running.
        assert not soc.halted
        soc.step(20_000_000)
        assert soc.task("quick").halted
        assert soc.halted

    def test_rx_race_returns_none_not_underflow(self):
        """The check-then-act race across tasks must not trap."""
        results = {}

        def racer(tag):
            def program(rt):
                count = yield from rt.mmio_read(REG_RX_COUNT)
                packet = yield from rt.mmio_read(REG_RX_DATA)
                results[tag] = (count, packet)

            return program

        soc = Soc(CONFIG_A)
        soc.bridge.host_inject(pk.depth_response(1.0))
        soc.load_program(racer("a"), name="a")
        soc.add_program(racer("b"), name="b")
        soc.step(1_000_000)
        packets = [results["a"][1], results["b"][1]]
        # Exactly one task won the packet; the loser observed None.
        assert sum(p is not None for p in packets) == 1


class TestIoDemux:
    def test_mailbox_sorting(self):
        demux = IoDemux()
        demux.deliver(pk.depth_response(1.0))
        demux.deliver(pk.imu_response(0, 0, 0, 0, 0))
        demux.deliver(pk.depth_response(2.0))
        assert demux.pending(PacketType.DEPTH_RESP) == 2
        assert demux.pending(PacketType.IMU_RESP) == 1
        assert demux.take(PacketType.DEPTH_RESP).values == (1.0,)
        assert demux.packets_sorted == 3

    def test_two_tasks_share_queue_without_loss(self):
        """Each task receives its own response type through the demux."""
        demux = IoDemux()
        got = {}

        def want(tag, request, response_type):
            def program(rt):
                packet = yield from demux.request(rt, request, response_type)
                got[tag] = packet

            return program

        soc = Soc(CONFIG_A)
        soc.load_program(want("depth", pk.depth_request(), PacketType.DEPTH_RESP), name="d")
        soc.add_program(want("imu", pk.imu_request(), PacketType.IMU_RESP), name="i")
        # Responses arrive "swapped" so each task must sort for the other.
        soc.step(100_000)  # let both requests go out
        soc.bridge.host_inject(pk.imu_response(1, 2, 3, 4, 5))
        soc.bridge.host_inject(pk.depth_response(7.0))
        soc.step(5_000_000)
        assert got["depth"].values == (7.0,)
        assert got["imu"].values[:4] == (1, 2, 3, 4)


class TestBackgroundWorkloads:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CoSimConfig(background="crypto-miner")
        with pytest.raises(ConfigError):
            CoSimConfig(background="slam-mapper", controller="mpc")

    def test_mapper_runs_without_breaking_mission(self):
        base = dict(
            world="tunnel",
            model="resnet14",
            target_velocity=3.0,
            initial_angle_deg=20.0,
            max_sim_time=40.0,
        )
        solo = run_mission(CoSimConfig(**base))
        multi = run_mission(CoSimConfig(**base, background="slam-mapper"))
        assert multi.completed and multi.collisions == 0
        assert multi.background_stats.updates > 50
        assert multi.background_stats.mean_pose_error < 2.0
        # Light CPU tenant: small controller-latency impact.
        assert multi.mean_inference_latency_ms < solo.mean_inference_latency_ms * 1.3

    def test_monitor_contention_inflates_latency(self):
        base = dict(
            world="tunnel",
            model="resnet14",
            target_velocity=3.0,
            max_sim_time=15.0,
        )
        solo = run_mission(CoSimConfig(**base))
        multi = run_mission(CoSimConfig(**base, background="dnn-monitor"))
        assert multi.monitor_stats.inferences > 20
        assert multi.mean_inference_latency_ms > solo.mean_inference_latency_ms * 1.2
        # Both tenants' accelerator work shows up in the activity factor.
        assert multi.gemmini_busy_cycles > 0
