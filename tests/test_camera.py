"""Tests for the FPV camera rasterizer."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.env.camera import CameraParams, FpvCamera, decode_image_u8, encode_image_u8
from repro.env.geometry import Pose2
from repro.env.worlds import tunnel_world


@pytest.fixture
def camera():
    return FpvCamera(CameraParams(width=48, height=32, texture_noise=0.0), seed=1)


class TestCameraParams:
    def test_rejects_tiny_resolution(self):
        with pytest.raises(ValueError):
            CameraParams(width=2, height=2)

    def test_rejects_extreme_fov(self):
        with pytest.raises(ValueError):
            CameraParams(fov_degrees=200.0)

    def test_default_fov_is_90(self):
        assert CameraParams().fov_degrees == 90.0


class TestRender:
    def test_shape_and_range(self, camera, tunnel):
        image = camera.render(tunnel, Pose2(10, 0, 0))
        assert image.shape == (32, 48)
        assert image.dtype == np.float32
        assert image.min() >= 0.0
        assert image.max() <= 1.0

    def test_centered_view_symmetric(self, tunnel):
        camera = FpvCamera(CameraParams(width=48, height=32, texture_noise=0.0), seed=1)
        image = camera.render(tunnel, Pose2(10, 0, 0))
        left = image[:, :24]
        right = image[:, 24:][:, ::-1]
        assert np.abs(left - right).mean() < 0.05

    def test_offset_view_asymmetric(self, camera, tunnel):
        image = camera.render(tunnel, Pose2(10, 1.0, 0))
        left = image[:, :24].mean()
        right = image[:, 24:].mean()
        assert abs(left - right) > 0.01

    def test_yawed_view_differs_from_straight(self, camera, tunnel):
        straight = camera.render(tunnel, Pose2(10, 0, 0))
        yawed = camera.render(tunnel, Pose2(10, 0, math.radians(20)))
        assert np.abs(straight - yawed).mean() > 0.02

    def test_near_wall_fills_more_of_frame(self, camera, tunnel):
        far = camera.render(tunnel, Pose2(5, 0, 0))
        # Facing the side wall from close: large bright wall area.
        near = camera.render(tunnel, Pose2(5, 1.0, math.pi / 2))
        wall_shade_near = (near > 0.4).mean()
        wall_shade_far = (far > 0.4).mean()
        assert wall_shade_near > wall_shade_far

    def test_trail_visible_on_floor(self, camera, tunnel):
        image = camera.render(tunnel, Pose2(10, 0, 0))
        bottom_center = image[-6:, 20:28]
        bottom_sides = image[-6:, :8]
        # The centerline trail stripe (0.95 shade) dominates the center
        # bottom rows and is absent from the side columns.
        assert (bottom_center > 0.9).mean() > 0.5
        assert (bottom_sides > 0.9).mean() < 0.2

    def test_trail_shifts_with_offset(self, camera, tunnel):
        # Drone left of center: the trail appears on the right half.
        image = camera.render(tunnel, Pose2(10, 1.0, 0))
        bottom = image[-8:]
        right_trail = (bottom[:, 24:] > 0.8).sum()
        left_trail = (bottom[:, :24] > 0.8).sum()
        assert right_trail > left_trail

    def test_deterministic_given_seed(self, tunnel):
        a = FpvCamera(CameraParams(texture_noise=0.05), seed=9).render(tunnel, Pose2(10, 0, 0))
        b = FpvCamera(CameraParams(texture_noise=0.05), seed=9).render(tunnel, Pose2(10, 0, 0))
        np.testing.assert_array_equal(a, b)

    def test_noise_changes_with_reset_seed(self, tunnel):
        camera = FpvCamera(CameraParams(texture_noise=0.05), seed=9)
        a = camera.render(tunnel, Pose2(10, 0, 0))
        camera.reset(seed=10)
        b = camera.render(tunnel, Pose2(10, 0, 0))
        assert np.abs(a - b).max() > 0.0


class TestImageCodec:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        image = rng.random((12, 16)).astype(np.float32)
        decoded = decode_image_u8(encode_image_u8(image), 12, 16)
        np.testing.assert_allclose(decoded, image, atol=1.0 / 255.0)

    def test_encode_clips(self):
        image = np.array([[-1.0, 2.0]], dtype=np.float32)
        decoded = decode_image_u8(encode_image_u8(image), 1, 2)
        assert decoded[0, 0] == 0.0
        assert decoded[0, 1] == 1.0

    def test_decode_wrong_size_raises(self):
        with pytest.raises(ValueError):
            decode_image_u8(b"\x00" * 10, 4, 4)

    def test_byte_length(self):
        image = np.zeros((8, 6), dtype=np.float32)
        assert len(encode_image_u8(image)) == 48


class TestCenterlineOffsetsCache:
    def test_offsets_match_fresh_geometry(self, tunnel):
        # The cached-array path must agree bit-for-bit with recomputing
        # the segment geometry from the polyline (the pre-cache code).
        rng = np.random.default_rng(7)
        points = rng.uniform([0.0, -1.5], [50.0, 1.5], size=(64, 2))
        got = FpvCamera._centerline_offsets(tunnel, points)
        pts = tunnel.centerline.points
        dirs = np.diff(pts, axis=0)
        lens = np.sqrt((dirs**2).sum(axis=1))
        units = dirs / lens[:, None]
        rel = points[:, None, :] - pts[None, :-1, :]
        t = np.clip((rel * units[None, :, :]).sum(axis=2), 0.0, lens[None, :])
        closest = pts[None, :-1, :] + t[..., None] * units[None, :, :]
        diff = points[:, None, :] - closest
        idx = np.argmin((diff**2).sum(axis=2), axis=1)
        rows = np.arange(points.shape[0])
        normal = np.column_stack([-units[idx, 1], units[idx, 0]])
        want = (diff[rows, idx] * normal).sum(axis=1)
        np.testing.assert_array_equal(got, want)

    def test_render_unchanged_by_cache(self, camera, tunnel):
        # Rendering twice from the same pose is deterministic with a
        # fixed-seed camera and the cached world geometry.
        camera.reset(seed=5)
        first = camera.render(tunnel, Pose2(10, 0.3, 0.1))
        camera.reset(seed=5)
        second = camera.render(tunnel, Pose2(10, 0.3, 0.1))
        np.testing.assert_array_equal(first, second)
