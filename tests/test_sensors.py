"""Tests for the IMU and depth sensor models."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.env.physics import AccelCommand, DroneState, QuadrotorDynamics
from repro.env.sensors import (
    GRAVITY,
    DepthParams,
    DepthSensor,
    Imu,
    ImuParams,
)
from repro.env.worlds import tunnel_world

DT = 1.0 / 60.0


@pytest.fixture
def dyn(tunnel):
    return QuadrotorDynamics(tunnel, initial_state=DroneState(x=10.0, z=1.5))


class TestImu:
    def test_reading_fields(self, dyn):
        imu = Imu(seed=1)
        reading = imu.read(dyn, DT)
        assert reading.timestamp == dyn.time
        assert len(reading.as_tuple()) == 5

    def test_gravity_in_z_axis(self, dyn):
        imu = Imu(ImuParams(accel_noise_std=0.0, accel_bias_walk=0.0), seed=1)
        reading = imu.read(dyn, DT)
        assert reading.accel_z == pytest.approx(GRAVITY, abs=1e-6)

    def test_measures_applied_acceleration(self, dyn):
        imu = Imu(ImuParams(accel_noise_std=0.0, accel_bias_walk=0.0), seed=1)
        for _ in range(30):
            dyn.step(AccelCommand(a_forward=4.0), DT)
        reading = imu.read(dyn, DT)
        assert reading.accel_x == pytest.approx(dyn.applied_acceleration.a_forward, abs=1e-6)

    def test_gyro_tracks_yaw_rate(self, dyn):
        imu = Imu(ImuParams(gyro_noise_std=0.0, gyro_bias_walk=0.0), seed=1)
        for _ in range(30):
            dyn.step(AccelCommand(yaw_accel=3.0), DT)
        reading = imu.read(dyn, DT)
        assert reading.gyro_z == pytest.approx(dyn.state.r, abs=1e-9)

    def test_noise_statistics(self, dyn):
        params = ImuParams(accel_noise_std=0.1, accel_bias_walk=0.0)
        imu = Imu(params, seed=3)
        samples = np.array([imu.read(dyn, DT).accel_x for _ in range(800)])
        assert abs(samples.mean()) < 0.02
        assert samples.std() == pytest.approx(0.1, rel=0.15)

    def test_bias_random_walk_drifts(self, dyn):
        params = ImuParams(accel_noise_std=0.0, accel_bias_walk=0.05)
        imu = Imu(params, seed=4)
        first = imu.read(dyn, DT).accel_x
        for _ in range(2000):
            last = imu.read(dyn, DT).accel_x
        assert last != pytest.approx(first, abs=1e-6)

    def test_seeded_determinism(self, dyn):
        a = Imu(seed=7).read(dyn, DT)
        b = Imu(seed=7).read(dyn, DT)
        assert a == b

    def test_reset_reseeds(self, dyn):
        imu = Imu(seed=7)
        first = imu.read(dyn, DT)
        imu.reset(seed=7)
        again = imu.read(dyn, DT)
        assert first == again


class TestDepthSensor:
    def test_reads_forward_distance(self, dyn, tunnel):
        sensor = DepthSensor(DepthParams(noise_std=0.0, noise_range_fraction=0.0), seed=1)
        reading = sensor.read(tunnel, dyn)
        # Facing down the 50 m tunnel from x=10: 40 m to the cap.
        assert reading == pytest.approx(40.0, abs=0.1)

    def test_facing_wall_reads_short(self, tunnel):
        dyn = QuadrotorDynamics(
            tunnel, initial_state=DroneState(x=10.0, yaw=math.pi / 2, z=1.5)
        )
        sensor = DepthSensor(DepthParams(noise_std=0.0, noise_range_fraction=0.0), seed=1)
        assert sensor.read(tunnel, dyn) == pytest.approx(1.6, abs=0.05)

    def test_clamped_to_max_range(self, dyn, tunnel):
        sensor = DepthSensor(DepthParams(max_range=5.0, noise_std=0.0, noise_range_fraction=0.0))
        assert sensor.read(tunnel, dyn) == 5.0

    def test_never_negative(self, dyn, tunnel):
        sensor = DepthSensor(DepthParams(noise_std=50.0), seed=2)
        for _ in range(50):
            assert sensor.read(tunnel, dyn) >= 0.0

    def test_noise_grows_with_range(self, tunnel):
        params = DepthParams(noise_std=0.0, noise_range_fraction=0.05)
        near = QuadrotorDynamics(
            tunnel, initial_state=DroneState(x=48.0, z=1.5)
        )
        far = QuadrotorDynamics(tunnel, initial_state=DroneState(x=1.0, z=1.5))
        sensor_near = DepthSensor(params, seed=5)
        sensor_far = DepthSensor(params, seed=5)
        near_err = np.std(
            [sensor_near.read(tunnel, near) for _ in range(200)]
        )
        far_err = np.std([sensor_far.read(tunnel, far) for _ in range(200)])
        assert far_err > near_err
