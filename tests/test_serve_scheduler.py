"""Tests for the serve control plane: job store, scheduler, lease/steal.

Covers the ``rose-jobq/1`` journal (replay, last-event-wins, damage
tolerance), content-addressed idempotent submission, the shard lease /
heartbeat / expiry / steal protocol, exactly-once completion accounting,
and — via Hypothesis — arbitrary submit/steal/complete/crash
interleavings preserving both exactly-once completion and replay
equivalence (a fresh scheduler over the same store reaches the same
state).  Everything here is pure accounting: no missions run, all time
comes from a :class:`FakeClock`.
"""

from __future__ import annotations

import itertools
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import CoSimConfig
from repro.errors import ServeError
from repro.serve import (
    FakeClock,
    JobParams,
    JobStore,
    Scheduler,
    TaskRecord,
    job_id_for,
)
from repro.sweep.fingerprint import config_key

FINGERPRINT = "test-fingerprint"

#: Short lease so steal scenarios need only a small clock advance.
FAST_PARAMS = JobParams(shards=2, lease_seconds=10.0)


def _tiny_config(seed: int = 0) -> CoSimConfig:
    return CoSimConfig(
        world="tunnel", target_velocity=3.0, max_sim_time=1.0, seed=seed
    )


def _pairs(n: int = 4) -> list[tuple[str, CoSimConfig]]:
    return [(f"seed{s}", _tiny_config(s)) for s in range(n)]


def _scheduler(tmp_path, clock=None) -> Scheduler:
    return Scheduler(
        JobStore(tmp_path / "jobs.jsonl"),
        clock=clock if clock is not None else FakeClock(),
        fingerprint=FINGERPRINT,
    )


def _finish(scheduler: Scheduler, worker: str = "shard-0") -> str:
    """Drain every pending task as ``ok`` through one worker."""
    while True:
        assignment = scheduler.lease(worker)
        if assignment is None:
            break
        for (name, _config), key in zip(assignment.tasks, assignment.keys):
            scheduler.complete(
                worker, assignment.job_id, assignment.claim_id, name, key, "ok", 1
            )
    return worker


# ---------------------------------------------------------------------------
# JobParams / TaskRecord / job identity
# ---------------------------------------------------------------------------
class TestJobParams:
    def test_defaults(self):
        params = JobParams()
        assert params.shards == 2
        assert params.max_attempts == 3
        assert params.lease_seconds == 60.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"slice_size": 0},
            {"workers": 0},
            {"batch_size": 0},
            {"max_attempts": 0},
            {"lease_seconds": 0.0},
            {"lease_seconds": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ServeError):
            JobParams(**kwargs)

    def test_slice_for_even_shard_cut(self):
        assert JobParams(shards=2).slice_for(4) == 2
        assert JobParams(shards=2).slice_for(5) == 3  # ceil
        assert JobParams(shards=4).slice_for(2) == 1

    def test_slice_for_explicit_size_wins(self):
        assert JobParams(shards=2, slice_size=1).slice_for(100) == 1

    def test_dict_round_trip_ignores_unknown_fields(self):
        params = JobParams(shards=3, slice_size=2, task_timeout=5.0)
        payload = params.to_dict()
        payload["from_the_future"] = True
        assert JobParams.from_dict(payload) == params

    def test_from_dict_surfaces_validation_as_serve_error(self):
        with pytest.raises(ServeError):
            JobParams.from_dict({"shards": -1})


class TestTaskRecord:
    def test_round_trip(self):
        record = TaskRecord(
            name="seed0", key="abc", state="failed", attempts=3,
            owner="shard-1", failure={"kind": "exception", "message": "boom"},
        )
        assert TaskRecord.from_dict(record.to_dict()) == record

    def test_unknown_state_rejected(self):
        with pytest.raises(ServeError):
            TaskRecord(name="t", key="k", state="exploded", attempts=1, owner="w")

    def test_ok_covers_cache_hits(self):
        ok = TaskRecord(name="t", key="k", state="ok", attempts=1, owner="w")
        hit = TaskRecord(name="t", key="k", state="from_cache", attempts=0, owner="w")
        bad = TaskRecord(name="t", key="k", state="failed", attempts=3, owner="w")
        assert ok.ok and hit.ok and not bad.ok


class TestJobIdentity:
    def test_content_addressed(self):
        keys = [("a", "k1"), ("b", "k2")]
        assert job_id_for("fp", keys) == job_id_for("fp", keys)
        assert job_id_for("fp", keys) != job_id_for("fp2", keys)
        assert job_id_for("fp", keys) != job_id_for("fp", list(reversed(keys)))
        assert len(job_id_for("fp", keys)) == 16


# ---------------------------------------------------------------------------
# JobStore: the rose-jobq/1 write-ahead log
# ---------------------------------------------------------------------------
class TestJobStore:
    def test_submit_replay_preserves_task_order(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(5), FAST_PARAMS)
        replayed = scheduler.store.replay()[job.job_id]
        assert [name for name, _ in replayed.tasks] == [
            f"seed{s}" for s in range(5)
        ]
        assert replayed.keys == job.keys
        assert replayed.params == FAST_PARAMS

    def test_task_replay_is_last_event_wins(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(2), FAST_PARAMS)
        key = job.keys[0]
        store = scheduler.store
        store.record_task(
            job.job_id,
            TaskRecord(name="seed0", key=key, state="failed", attempts=3,
                       owner="shard-0", failure={"kind": "exception"}),
        )
        store.record_task(
            job.job_id,
            TaskRecord(name="seed0", key=key, state="ok", attempts=1,
                       owner="shard-1"),
        )
        record = store.replay()[job.job_id].records[key]
        assert record.state == "ok"
        assert record.owner == "shard-1"

    def test_cancel_then_requeue_nets_queued(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(2), FAST_PARAMS)
        store = scheduler.store
        store.record_cancel(job.job_id)
        store.record_job_state(job.job_id, "cancelled")
        store.record_job_state(job.job_id, "queued")
        assert store.replay()[job.job_id].state == "queued"

    def test_torn_trailing_line_tolerated(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(2), FAST_PARAMS)
        with scheduler.store.path.open("a") as handle:
            handle.write('{"event": "task", "job": "' + job.job_id)  # torn
        replayed = scheduler.store.replay()
        assert replayed[job.job_id].state == "queued"
        assert replayed[job.job_id].records == {}

    def test_damaged_task_record_recomputes(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(2), FAST_PARAMS)
        with scheduler.store.path.open("a") as handle:
            handle.write(
                json.dumps({"event": "task", "job": job.job_id, "name": "seed0"})
                + "\n"
            )  # missing key/state/attempts: skipped, task recomputes
        assert scheduler.store.replay()[job.job_id].records == {}

    def test_crash_at_finish_boundary_settles_terminal_state(self, tmp_path):
        """All tasks recorded but the job_state append was lost: replay
        settles the job instead of leaving a zombie 'running' entry."""
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(2), FAST_PARAMS)
        store = scheduler.store
        store.record_job_state(job.job_id, "running")
        for (name, _config), key in zip(job.tasks, job.keys):
            store.record_task(
                job.job_id,
                TaskRecord(name=name, key=key, state="ok", attempts=1,
                           owner="shard-0"),
            )
        assert store.replay()[job.job_id].state == "done"

    def test_leases_never_survive_replay(self, tmp_path):
        clock = FakeClock()
        scheduler = _scheduler(tmp_path, clock)
        job, _ = scheduler.submit("sweep", _pairs(4), FAST_PARAMS)
        assert scheduler.lease("shard-0") is not None
        rebuilt = _scheduler(tmp_path, FakeClock())
        # The in-flight lease is implicitly expired: all four tasks pend.
        assert rebuilt.status(job.job_id)["pending"] == 4
        assert rebuilt.status(job.job_id)["leases"] == []


# ---------------------------------------------------------------------------
# Submission: content-addressed, idempotent
# ---------------------------------------------------------------------------
class TestSubmission:
    def test_new_job_is_submitted(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, disposition = scheduler.submit("sweep", _pairs(), FAST_PARAMS)
        assert disposition == "submitted"
        assert job.state == "queued"
        assert scheduler.registry.value(
            "rose_serve_jobs_submitted_total", result="submitted"
        ) == 1

    def test_resubmission_deduplicates(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        first, _ = scheduler.submit("sweep", _pairs(), FAST_PARAMS)
        second, disposition = scheduler.submit("other-name", _pairs(), FAST_PARAMS)
        assert disposition == "deduplicated"
        assert second.job_id == first.job_id
        assert scheduler.store.appended == 1  # only the first submit logged

    def test_different_content_different_job(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        first, _ = scheduler.submit("sweep", _pairs(3), FAST_PARAMS)
        second, disposition = scheduler.submit("sweep", _pairs(4), FAST_PARAMS)
        assert disposition == "submitted"
        assert second.job_id != first.job_id

    def test_empty_submission_rejected(self, tmp_path):
        with pytest.raises(ServeError):
            _scheduler(tmp_path).submit("sweep", [], FAST_PARAMS)

    def test_duplicate_task_names_rejected(self, tmp_path):
        with pytest.raises(ServeError):
            _scheduler(tmp_path).submit(
                "sweep", [("dup", _tiny_config(0)), ("dup", _tiny_config(1))]
            )

    def test_cancelled_job_requeues_keeping_ok_records(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(4), JobParams(slice_size=2))
        assignment = scheduler.lease("shard-0")
        for (name, _config), key in zip(assignment.tasks, assignment.keys):
            scheduler.complete(
                "shard-0", job.job_id, assignment.claim_id, name, key, "ok", 1
            )
        assert scheduler.cancel(job.job_id)
        requeued, disposition = scheduler.submit("sweep", _pairs(4),
                                                 JobParams(slice_size=2))
        assert disposition == "requeued"
        assert requeued.state == "queued"
        assert requeued.completed() == 2  # ok records survive the requeue
        assert scheduler.status(job.job_id)["pending"] == 2


# ---------------------------------------------------------------------------
# Leasing, heartbeats, expiry, stealing
# ---------------------------------------------------------------------------
class TestLeaseProtocol:
    def test_lease_slices_in_submission_order(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(4), FAST_PARAMS)
        first = scheduler.lease("shard-0")
        second = scheduler.lease("shard-1")
        assert [name for name, _ in first.tasks] == ["seed0", "seed1"]
        assert [name for name, _ in second.tasks] == ["seed2", "seed3"]
        assert first.stolen_from is None
        assert scheduler.job(job.job_id).state == "running"
        assert scheduler.lease("shard-2") is None  # nothing left to lease

    def test_lease_deadline_and_heartbeat(self, tmp_path):
        clock = FakeClock()
        scheduler = _scheduler(tmp_path, clock)
        scheduler.submit("sweep", _pairs(2), FAST_PARAMS)
        assignment = scheduler.lease("shard-0")
        assert assignment.deadline == pytest.approx(clock.now() + 10.0)
        clock.advance(6.0)
        assert scheduler.heartbeat("shard-0", assignment.claim_id)
        clock.advance(6.0)  # 12s total: dead without the heartbeat
        assert scheduler.tick() == 0
        assert scheduler.heartbeat("shard-1", assignment.claim_id) is False

    def test_expiry_steals_to_front_with_provenance(self, tmp_path):
        clock = FakeClock()
        scheduler = _scheduler(tmp_path, clock)
        job, _ = scheduler.submit("sweep", _pairs(4), FAST_PARAMS)
        doomed = scheduler.lease("shard-0")  # seed0, seed1
        clock.advance(11.0)
        assert scheduler.tick() == 1
        assert scheduler.heartbeat("shard-0", doomed.claim_id) is False
        stolen = scheduler.lease("shard-1")
        # Stolen work runs before the untouched tail, in task order.
        assert [name for name, _ in stolen.tasks] == ["seed0", "seed1"]
        assert stolen.stolen_from == "shard-0"
        assert scheduler.status(job.job_id)["steals"] == 2
        assert scheduler.registry.value("rose_serve_tasks_stolen_total") == 2
        assert scheduler.registry.value("rose_serve_leases_expired_total") == 1

    def test_expiry_returns_only_unrecorded_tasks(self, tmp_path):
        clock = FakeClock()
        scheduler = _scheduler(tmp_path, clock)
        job, _ = scheduler.submit("sweep", _pairs(2), FAST_PARAMS)
        assignment = scheduler.lease("shard-0")
        name, _config = assignment.tasks[0]
        scheduler.complete(
            "shard-0", job.job_id, assignment.claim_id, name,
            assignment.keys[0], "ok", 1,
        )
        clock.advance(11.0)
        scheduler.tick()
        stolen = scheduler.lease("shard-1")
        assert [name for name, _ in stolen.tasks] == ["seed1"]

    def test_completion_renews_the_lease(self, tmp_path):
        clock = FakeClock()
        scheduler = _scheduler(tmp_path, clock)
        job, _ = scheduler.submit("sweep", _pairs(4), FAST_PARAMS)
        assignment = scheduler.lease("shard-0")
        clock.advance(9.0)
        scheduler.complete(
            "shard-0", job.job_id, assignment.claim_id,
            assignment.tasks[0][0], assignment.keys[0], "ok", 1,
        )
        clock.advance(9.0)  # 18s since lease, 9s since the completion
        assert scheduler.tick() == 0


# ---------------------------------------------------------------------------
# Completion: exactly-once accounting
# ---------------------------------------------------------------------------
class TestCompletion:
    def test_all_ok_finalizes_done(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(3), FAST_PARAMS)
        _finish(scheduler)
        final = scheduler.job(job.job_id)
        assert final.state == "done"
        assert final.counts() == {"total": 3, "completed": 3, "ok": 3, "failed": 0}
        assert scheduler.registry.value(
            "rose_serve_jobs_finished_total", state="done"
        ) == 1

    def test_any_failure_finalizes_failed(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(2), JobParams(slice_size=2))
        assignment = scheduler.lease("shard-0")
        scheduler.complete(
            "shard-0", job.job_id, assignment.claim_id,
            assignment.tasks[0][0], assignment.keys[0], "ok", 1,
        )
        scheduler.complete(
            "shard-0", job.job_id, assignment.claim_id,
            assignment.tasks[1][0], assignment.keys[1], "failed", 3,
            failure={"kind": "exception", "message": "boom"},
        )
        assert scheduler.job(job.job_id).state == "failed"

    def test_unknown_job_404(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        with pytest.raises(ServeError) as excinfo:
            scheduler.complete("w", "nope", 1, "t", "k", "ok", 1)
        assert excinfo.value.status == 404

    def test_unknown_key_400(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(2), FAST_PARAMS)
        scheduler.lease("shard-0")
        with pytest.raises(ServeError) as excinfo:
            scheduler.complete(
                "shard-0", job.job_id, 1, "t", "not-a-real-key", "ok", 1
            )
        assert excinfo.value.status == 400

    def test_zombie_completion_after_terminal_is_dropped(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(2), FAST_PARAMS)
        assignment = scheduler.lease("shard-0")
        scheduler.complete(
            "shard-0", job.job_id, assignment.claim_id,
            assignment.tasks[0][0], assignment.keys[0], "ok", 1,
        )
        _finish(scheduler, "shard-0")
        assert scheduler.job(job.job_id).state == "done"
        accepted = scheduler.complete(
            "zombie", job.job_id, assignment.claim_id,
            assignment.tasks[0][0], assignment.keys[0], "failed", 1,
            failure={"kind": "exception"},
        )
        assert accepted is False
        assert scheduler.job(job.job_id).state == "done"  # never reopened
        assert scheduler.job(job.job_id).records[assignment.keys[0]].ok

    def test_double_report_during_lease_race_is_last_event_wins(self, tmp_path):
        """A zombie whose lease expired reports after the thief: one
        record per key, thief's result overwritten by the final event,
        and the job still completes exactly once."""
        clock = FakeClock()
        scheduler = _scheduler(tmp_path, clock)
        job, _ = scheduler.submit("sweep", _pairs(4), FAST_PARAMS)
        zombie = scheduler.lease("shard-0")
        clock.advance(11.0)
        scheduler.tick()  # shard-0 presumed dead
        thief = scheduler.lease("shard-1")
        assert thief.stolen_from == "shard-0"
        key = thief.keys[0]
        scheduler.complete("shard-1", job.job_id, thief.claim_id,
                           thief.tasks[0][0], key, "ok", 1)
        # The zombie wakes up and reports the same task.
        assert scheduler.complete("shard-0", job.job_id, zombie.claim_id,
                                  zombie.tasks[0][0], key, "from_cache", 0)
        record = scheduler.job(job.job_id).records[key]
        assert record.owner == "shard-0"  # last event wins
        assert scheduler.job(job.job_id).completed() == 1  # still one record
        scheduler.complete("shard-1", job.job_id, thief.claim_id,
                           thief.tasks[1][0], thief.keys[1], "ok", 1)
        _finish(scheduler, "shard-1")
        assert scheduler.job(job.job_id).state == "done"

    def test_owner_attribution_in_status(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(4), FAST_PARAMS)
        for worker in ("shard-0", "shard-1"):
            assignment = scheduler.lease(worker)
            for (name, _config), key in zip(assignment.tasks, assignment.keys):
                scheduler.complete(worker, job.job_id, assignment.claim_id,
                                   name, key, "ok", 1)
        assert scheduler.status(job.job_id)["owners"] == {
            "shard-0": 2, "shard-1": 2,
        }


# ---------------------------------------------------------------------------
# Cancellation and introspection
# ---------------------------------------------------------------------------
class TestCancel:
    def test_cancel_live_job(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(2), FAST_PARAMS)
        scheduler.lease("shard-0")
        assert scheduler.cancel(job.job_id)
        assert scheduler.job(job.job_id).state == "cancelled"
        assert scheduler.status(job.job_id)["leases"] == []
        assert scheduler.lease("shard-1") is None

    def test_cancel_terminal_job_is_noop(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(2), FAST_PARAMS)
        _finish(scheduler)
        assert scheduler.cancel(job.job_id) is False
        assert scheduler.job(job.job_id).state == "done"

    def test_cancel_unknown_job_404(self, tmp_path):
        with pytest.raises(ServeError) as excinfo:
            _scheduler(tmp_path).cancel("nope")
        assert excinfo.value.status == 404

    def test_status_is_json_safe(self, tmp_path):
        scheduler = _scheduler(tmp_path)
        job, _ = scheduler.submit("sweep", _pairs(3), FAST_PARAMS)
        scheduler.lease("shard-0")
        payload = scheduler.status(job.job_id)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["tasks"]["total"] == 3
        assert payload["leases"][0]["worker"] == "shard-0"


# ---------------------------------------------------------------------------
# Property: interleavings preserve exactly-once + replay equivalence
# ---------------------------------------------------------------------------
_CASE_COUNTER = itertools.count()

_OPS = st.lists(
    st.sampled_from(
        ["lease0", "lease1", "complete0", "complete1",
         "advance", "tick", "zombie", "cancel_resubmit"]
    ),
    max_size=25,
)


def _record_view(job) -> dict[str, tuple[str, int, str]]:
    return {
        key: (record.state, record.attempts, record.owner)
        for key, record in job.records.items()
    }


class TestSchedulerProperties:
    @settings(
        deadline=None,
        max_examples=40,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(n=st.integers(min_value=2, max_value=5), ops=_OPS)
    def test_interleavings_preserve_exactly_once_and_replay(
        self, tmp_path, n, ops
    ):
        root = tmp_path / f"case-{next(_CASE_COUNTER)}"
        root.mkdir()
        clock = FakeClock()
        scheduler = _scheduler(root, clock)
        params = JobParams(shards=2, slice_size=2, lease_seconds=10.0)
        job, _ = scheduler.submit("sweep", _pairs(n), params)
        live: dict[str, list[dict]] = {"shard-0": [], "shard-1": []}
        zombies: list[dict] = []

        def complete_from(worker: str, entry: dict) -> None:
            pair = entry["left"].pop(0)
            (name, _config), key = pair
            scheduler.complete(
                worker, job.job_id, entry["claim"], name, key, "ok", 1
            )

        for op in ops:
            if op in ("lease0", "lease1"):
                worker = f"shard-{op[-1]}"
                assignment = scheduler.lease(worker)
                if assignment is not None:
                    live[worker].append({
                        "claim": assignment.claim_id,
                        "left": list(zip(assignment.tasks, assignment.keys)),
                    })
            elif op in ("complete0", "complete1"):
                worker = f"shard-{op[-1]}"
                entries = [e for e in live[worker] if e["left"]]
                if entries:
                    complete_from(worker, entries[0])
            elif op == "advance":
                # Every live claim's lease lapses: its holder is now a
                # zombie that may still report stale completions later.
                clock.advance(11.0)
                for worker in ("shard-0", "shard-1"):
                    zombies.extend(
                        {**entry, "worker": worker} for entry in live[worker]
                    )
                    live[worker] = []
            elif op == "tick":
                scheduler.tick()
            elif op == "zombie":
                stale = [z for z in zombies if z["left"]]
                if stale and not scheduler.job(job.job_id).terminal:
                    entry = stale[0]
                    complete_from(entry["worker"], entry)
            elif op == "cancel_resubmit":
                if scheduler.cancel(job.job_id):
                    live = {"shard-0": [], "shard-1": []}
                    zombies = []
                    _, disposition = scheduler.submit("sweep", _pairs(n), params)
                    assert disposition == "requeued"

            # Invariant: a key is never pending and claimed at once, and
            # no two live claims overlap (exactly-once dispatch).
            seen: set[int] = set(scheduler._pending[job.job_id])
            assert len(seen) == len(scheduler._pending[job.job_id])
            for claim in scheduler._claims.values():
                for index in claim.indices:
                    assert index not in seen
                    seen.add(index)

        # Drain to terminal with a surviving worker.
        clock.advance(11.0)
        scheduler.tick()
        _finish(scheduler, "shard-1")
        final = scheduler.job(job.job_id)
        assert final.state == "done"
        assert final.completed() == n
        assert sum(final.owners().values()) == n

        # Replay equivalence: a fresh scheduler over the same store
        # reaches the same terminal state and the same records.
        rebuilt = _scheduler(root, FakeClock())
        replayed = rebuilt.job(job.job_id)
        assert replayed.state == final.state
        assert _record_view(replayed) == _record_view(final)
        assert rebuilt.status(job.job_id)["pending"] == 0

    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        crash_points=st.lists(
            st.integers(min_value=0, max_value=5), min_size=1, max_size=4
        )
    )
    def test_restart_at_any_point_resumes_to_same_result(
        self, tmp_path, crash_points
    ):
        """Kill the whole service after N completions, rebuild from the
        store, finish — the terminal record set is always the same."""
        root = tmp_path / f"case-{next(_CASE_COUNTER)}"
        root.mkdir()
        n = 5
        params = JobParams(shards=2, slice_size=1, lease_seconds=10.0)
        scheduler = _scheduler(root, FakeClock())
        job, _ = scheduler.submit("sweep", _pairs(n), params)
        for budget in crash_points:
            completed = 0
            while completed < budget:
                assignment = scheduler.lease("shard-0")
                if assignment is None:
                    break
                (name, _config), key = assignment.tasks[0], assignment.keys[0]
                scheduler.complete("shard-0", job.job_id, assignment.claim_id,
                                   name, key, "ok", 1)
                completed += 1
            # Crash: a brand-new scheduler replays the same store.
            scheduler = _scheduler(root, FakeClock())
        _finish(scheduler, "shard-1")
        final = scheduler.job(job.job_id)
        assert final.state == "done"
        assert sorted(final.records) == sorted(job.keys)
