"""Tests for Algorithm 1's lockstep synchronizer.

These use a real environment simulator behind the RPC facade and a real
FireSim host with a scripted target program, so packet translation, token
allocation, and boundary-quantized data delivery are all exercised.
"""

from __future__ import annotations

import pytest

from repro.core import packets as pk
from repro.core.config import SyncConfig
from repro.core.csvlog import SyncLogger
from repro.core.packets import PacketType
from repro.core.synchronizer import Synchronizer
from repro.core.transport import transport_pair
from repro.env.rpc import RpcClient, RpcServer
from repro.env.simulator import EnvConfig, EnvSimulator
from repro.errors import SyncError
from repro.soc.firesim import FireSimHost
from repro.soc.soc import CONFIG_A, Soc

SYNC = SyncConfig(cycles_per_sync=10_000_000)


def build(program, logger=None, env_config=None):
    env = EnvSimulator(env_config or EnvConfig(world="tunnel", frame_rate=SYNC.frame_rate_hz))
    rpc = RpcClient(RpcServer(env))
    soc = Soc(CONFIG_A)
    soc.load_program(program)
    sync_end, firesim_end = transport_pair("inprocess")
    host = FireSimHost(soc, firesim_end)
    synchronizer = Synchronizer(
        rpc=rpc, transport=sync_end, sync=SYNC, host_service=host.service, logger=logger
    )
    return env, soc, synchronizer


def idle_program(rt):
    while True:
        yield from rt.delay(100_000)


class TestLockstep:
    def test_step_requires_configure(self):
        _, _, sync = build(idle_program)
        with pytest.raises(SyncError):
            sync.step()

    def test_both_simulators_advance_one_period(self):
        env, soc, sync = build(idle_program)
        sync.configure()
        sync.step()
        assert soc.cycle == SYNC.cycles_per_sync
        assert env.frame == SYNC.frames_per_sync
        assert sync.sim_time == pytest.approx(SYNC.sync_period_seconds)

    def test_simulation_times_stay_equal(self):
        env, soc, sync = build(idle_program)
        sync.configure()
        for _ in range(5):
            sync.step()
            soc_time = soc.cycle / SYNC.soc_frequency_hz
            assert env.sim_time == pytest.approx(soc_time)
            assert sync.sim_time == pytest.approx(soc_time)

    def test_run_until_max_time(self):
        env, soc, sync = build(idle_program)
        sync.configure()
        sync.run(max_sim_time=0.05)
        assert sync.stats.steps == 5

    def test_run_stop_condition(self):
        env, soc, sync = build(idle_program)
        sync.configure()
        steps = []
        sync.run(max_sim_time=1.0, stop_condition=lambda: len(steps) >= 2 or steps.append(1))
        assert sync.stats.steps <= 3

    def test_shutdown_propagates(self):
        env, soc, sync = build(idle_program)
        sync.configure()
        sync.shutdown()
        # The host flag is observable through the service closure.
        # (The host was captured in build(); reach it via the bound method.)
        host = sync.host_service.__self__
        assert host.shutdown_requested


class TestDataTranslation:
    def test_imu_request_answered_next_boundary(self):
        readings = []

        def program(rt):
            response = yield from rt.request_response(
                pk.imu_request(), PacketType.IMU_RESP
            )
            readings.append(response.values)
            while True:
                yield from rt.delay(100_000)

        env, soc, sync = build(program)
        sync.configure()
        sync.step()  # request emitted during this period
        assert not readings
        sync.step()  # response injected at this boundary
        sync.step()  # program reads it
        assert readings
        assert len(readings[0]) == 5
        assert sync.stats.imu_requests == 1

    def test_camera_request_round_trip(self):
        frames = []

        def program(rt):
            response = yield from rt.request_response(
                pk.camera_request(), PacketType.CAMERA_RESP
            )
            frames.append(response)
            while True:
                yield from rt.delay(100_000)

        env, soc, sync = build(program)
        sync.configure()
        for _ in range(4):
            sync.step()
        assert frames
        packet = frames[0]
        height, width = int(packet.values[0]), int(packet.values[1])
        assert len(packet.raw) == height * width
        assert packet.values[5] == pytest.approx(1.6)  # tunnel half-width
        assert sync.stats.camera_requests == 1

    def test_depth_and_state_requests(self):
        results = {}

        def program(rt):
            depth = yield from rt.request_response(pk.depth_request(), PacketType.DEPTH_RESP)
            results["depth"] = depth.values[0]
            state = yield from rt.request_response(pk.state_request(), PacketType.STATE_RESP)
            results["state"] = state.values
            while True:
                yield from rt.delay(100_000)

        env, soc, sync = build(program)
        sync.configure()
        for _ in range(6):
            sync.step()
        assert results["depth"] > 0
        assert len(results["state"]) == 8
        assert sync.stats.depth_requests == 1
        assert sync.stats.state_requests == 1

    def test_target_command_reaches_flight_controller(self):
        def program(rt):
            yield from rt.send_packet(pk.target_command(3.0, 0.1, -0.2, 1.5))
            while True:
                yield from rt.delay(100_000)

        env, soc, sync = build(program)
        sync.configure()
        sync.step()
        sync.step()
        assert env.controller.targets_received == 1
        assert env.controller.target.v_forward == 3.0
        assert sync.stats.target_commands == 1
        assert sync.stats.last_target[0] == 3.0

    def test_request_latency_spans_full_period(self):
        """A mid-period request is never answered within its own period —
        the artificial latency Section 5.5 measures."""
        latencies = []

        def program(rt):
            start = yield from rt.current_cycle()
            response = yield from rt.request_response(
                pk.depth_request(), PacketType.DEPTH_RESP
            )
            end = yield from rt.current_cycle()
            latencies.append(end - start)
            while True:
                yield from rt.delay(100_000)

        env, soc, sync = build(program)
        sync.configure()
        for _ in range(4):
            sync.step()
        assert latencies
        # Response available only at the next boundary.
        assert latencies[0] >= SYNC.cycles_per_sync * 0.9


class TestLogging:
    def test_logger_rows_per_step(self):
        logger = SyncLogger()
        env, soc, sync = build(idle_program, logger=logger)
        sync.configure()
        for _ in range(3):
            sync.step()
        assert len(logger) == 3
        row = logger.rows[-1]
        assert row.step == 3
        assert row.sim_time == pytest.approx(3 * SYNC.sync_period_seconds)
