"""Tests for the coverage map and the coverage-guided fuzzer.

Determinism is the product here: the same seed and budget must
reproduce the corpus, the coverage map and the minimized reproducer
byte for byte, and every recorded scenario must replay to its recorded
mission signature.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.scenario import CoverageMap, compile_config, legacy_scenarios, mission_features
from repro.scenario.coverage import failure_modes
from repro.scenario.fuzz import (
    FuzzSettings,
    load_corpus_journal,
    load_scenario,
    minimize_scenario,
    mutate,
    replay,
    run_fuzz,
)
from repro.scenario.schema import Scenario

#: One small, fast campaign shared by the determinism tests.
SETTINGS = FuzzSettings(budget=4, seed=1, round_size=2, max_sim_time=2.0)


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    corpus_dir = tmp_path_factory.mktemp("fuzz-corpus")
    report = run_fuzz(SETTINGS, corpus_dir)
    return corpus_dir, report


# ---------------------------------------------------------------------------
# Coverage map
# ---------------------------------------------------------------------------
class TestCoverageMap:
    def test_observe_reports_new_bins_once(self):
        cov = CoverageMap()
        assert cov.observe(["a", "b"]) == ("a", "b")
        assert cov.observe(["a", "c"]) == ("c",)
        assert cov.counts == {"a": 2, "b": 1, "c": 1}

    def test_would_advance_does_not_record(self):
        cov = CoverageMap()
        cov.observe(["a"])
        assert cov.would_advance(["a", "b"]) == ("b",)
        assert "b" not in cov

    def test_json_round_trip_is_canonical(self):
        cov = CoverageMap()
        cov.observe(["z", "a", "m"])
        text = cov.to_json()
        assert CoverageMap.from_json(text).to_json() == text
        assert text.index('"a"') < text.index('"m"') < text.index('"z"')

    @pytest.mark.parametrize(
        "text",
        ["{not json", '{"format":"nope"}', '{"format":"rose-coverage/1","bins":[]}',
         '{"format":"rose-coverage/1","bins":{"a":1.5}}'],
    )
    def test_bad_coverage_json(self, text):
        with pytest.raises(ConfigError):
            CoverageMap.from_json(text)

    def test_mission_features_deterministic(self):
        from repro.core.cosim import run_mission

        scenario = legacy_scenarios()["tunnel"]
        result = run_mission(compile_config(scenario, max_sim_time=1.5))
        first = mission_features(scenario, result)
        assert first == mission_features(scenario, result)
        assert first == tuple(sorted(first))
        assert "family:straight" in first
        assert "noise:identity" in first


# ---------------------------------------------------------------------------
# Mutation
# ---------------------------------------------------------------------------
class TestMutate:
    def test_mutants_always_compile(self):
        import random

        rng = random.Random(3)
        parent = legacy_scenarios()["tunnel"]
        for index in range(25):
            mutant = mutate(rng, parent, f"m-{index}")
            compile_config(mutant)  # must not raise
            parent = mutant if index % 3 == 0 else parent

    def test_mutation_stream_is_seed_deterministic(self):
        import random

        parent = legacy_scenarios()["s-shape"]
        a = [mutate(random.Random(7), parent, "x").canonical_json() for _ in range(1)]
        b = [mutate(random.Random(7), parent, "x").canonical_json() for _ in range(1)]
        assert a == b


# ---------------------------------------------------------------------------
# The campaign
# ---------------------------------------------------------------------------
class TestCampaign:
    def test_coverage_exceeds_baseline(self, campaign):
        _, report = campaign
        assert report.evaluated == SETTINGS.budget
        assert report.coverage_bins >= report.baseline_bins

    def test_artifacts_written(self, campaign):
        corpus_dir, report = campaign
        assert (corpus_dir / "coverage.json").exists()
        assert (corpus_dir / "corpus.jsonl").exists()
        assert (corpus_dir / "report.json").exists()
        journal = load_corpus_journal(corpus_dir)
        # Two seeds plus every admitted mutant, in admission order.
        assert len(journal) == 2 + report.admitted
        assert journal[0]["round"] == 0 and journal[1]["round"] == 0
        for entry in journal:
            assert (corpus_dir / "scenarios" / f"{entry['key']}.json").exists()

    def test_same_seed_reproduces_artifacts_byte_for_byte(self, campaign, tmp_path):
        corpus_dir, _ = campaign
        rerun_dir = tmp_path / "rerun"
        run_fuzz(SETTINGS, rerun_dir)
        for rel in ("coverage.json", "corpus.jsonl", "report.json"):
            assert (rerun_dir / rel).read_bytes() == (corpus_dir / rel).read_bytes()
        want = sorted(p.name for p in (corpus_dir / "scenarios").iterdir())
        got = sorted(p.name for p in (rerun_dir / "scenarios").iterdir())
        assert want == got
        for name in want:
            assert (rerun_dir / "scenarios" / name).read_bytes() == (
                corpus_dir / "scenarios" / name
            ).read_bytes()
        want_min = sorted(p.name for p in (corpus_dir / "minimized").iterdir())
        assert sorted(p.name for p in (rerun_dir / "minimized").iterdir()) == want_min
        for name in want_min:
            assert (rerun_dir / "minimized" / name).read_bytes() == (
                corpus_dir / "minimized" / name
            ).read_bytes()

    def test_different_seed_diverges(self, campaign, tmp_path):
        corpus_dir, _ = campaign
        other = tmp_path / "other"
        run_fuzz(
            FuzzSettings(budget=4, seed=2, round_size=2, max_sim_time=2.0), other
        )
        assert (other / "corpus.jsonl").read_bytes() != (
            corpus_dir / "corpus.jsonl"
        ).read_bytes()

    def test_replay_matches_recorded_signature(self, campaign):
        corpus_dir, _ = campaign
        for entry in load_corpus_journal(corpus_dir):
            match, expected, actual = replay(corpus_dir, entry["key"], SETTINGS)
            assert match, f"{entry['key']}: {expected} != {actual}"

    def test_replay_unknown_key(self, campaign):
        corpus_dir, _ = campaign
        with pytest.raises(ConfigError):
            replay(corpus_dir, "0" * 64, SETTINGS)

    def test_scenario_documents_are_canonical(self, campaign):
        corpus_dir, _ = campaign
        for entry in load_corpus_journal(corpus_dir):
            scenario = load_scenario(corpus_dir, entry["key"])
            assert isinstance(scenario, Scenario)
            from repro.scenario import scenario_key

            assert scenario_key(scenario) == entry["key"]

    def test_minimized_reproducer_exhibits_failure(self, campaign):
        from repro.core.cosim import run_mission

        corpus_dir, report = campaign
        if not report.minimized:
            pytest.skip("this tiny budget found no minimizable failure")
        for source, _ in report.minimized.items():
            doc = json.loads((corpus_dir / "minimized" / f"{source}.json").read_text())
            assert doc["format"] == "rose-fuzz-min/1"
            minimized = Scenario.from_dict(doc["scenario"])
            config = compile_config(minimized, max_sim_time=SETTINGS.max_sim_time)
            modes = failure_modes(run_mission(config))
            assert doc["failure_mode"] in modes


class TestMinimize:
    def test_strips_irrelevant_knobs(self):
        from dataclasses import replace

        from repro.env.sensors import SensorNoiseProfile

        # deadline-miss on a short budget does not depend on noise or the
        # spawn pose: minimization must strip both.
        base = legacy_scenarios()["tunnel"]
        cluttered = replace(
            base,
            name="cluttered",
            noise=SensorNoiseProfile(imu_scale=2.0),
            max_sim_time=2.0,
        )
        minimal, runs = minimize_scenario(
            cluttered, "deadline-miss", FuzzSettings(budget=1, max_sim_time=2.0)
        )
        assert runs >= 1
        assert minimal.noise.is_identity


# ---------------------------------------------------------------------------
# The committed golden scenario corpus (fuzzer discoveries)
# ---------------------------------------------------------------------------
SCENARIO_DIR = Path(__file__).resolve().parent / "scenarios"

#: Content-addressed keys of the committed discovery documents.  These
#: pin the artifacts byte-for-byte: editing a document without updating
#: its key (and re-recording the goldens) is a test failure by design.
COMMITTED_KEYS = {
    "fuzz-crc-storm.json": (
        "26c767851e62915bcd3d0d88f816989fbeeebf4b3f2924cfe1a73bc614d269c9"
    ),
    "fuzz-frontier.json": (
        "6ca2989debb9c9070b84c98b0bb77fe1b14e26d66d7dea75001da6bf2b918447"
    ),
}


class TestGoldenScenarioCorpus:
    def test_committed_documents_are_content_addressed(self):
        from repro.scenario import scenario_key

        for filename, want in COMMITTED_KEYS.items():
            doc = json.loads((SCENARIO_DIR / filename).read_text())
            assert doc["format"] == "rose-scenario/1", filename
            assert scenario_key(Scenario.from_dict(doc)) == want, filename

    def test_golden_corpus_includes_fuzz_discoveries(self):
        from repro.verify.golden import golden_missions

        missions = golden_missions()
        assert "scenario-fuzz-crc-storm" in missions
        assert "scenario-fuzz-frontier" in missions
        # The frontier mission must actually be the committed document.
        assert missions["scenario-fuzz-frontier"].target_velocity == 7.56

    def test_minimized_reproducer_still_crashes(self):
        from repro.core.cosim import run_mission
        from repro.scenario import scenario_key
        from repro.sweep.signature import mission_signature

        doc = json.loads((SCENARIO_DIR / "fuzz-crash-min.json").read_text())
        assert doc["format"] == "rose-fuzz-min/1"
        scenario = Scenario.from_dict(doc["scenario"])
        assert scenario_key(scenario) == doc["scenario_key"]
        result = run_mission(compile_config(scenario))
        assert mission_signature(result) == doc["signature"]
        assert doc["failure_mode"] in failure_modes(result)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestFuzzCli:
    def test_run_corpus_replay(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        args = ["--corpus", str(corpus), "--budget", "2", "--round-size", "2",
                "--max-sim-time", "2.0", "--seed", "1"]
        assert main(["fuzz", "run", *args]) == 0
        out = capsys.readouterr().out
        assert "mutants evaluated" in out

        assert main(["fuzz", "corpus", *args]) == 0
        out = capsys.readouterr().out
        assert "seed-tunnel" in out and "round" in out

        key = load_corpus_journal(corpus)[0]["key"]
        assert main(["fuzz", "replay", *args, key]) == 0
        assert "replay OK" in capsys.readouterr().out

    def test_minimize_command(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        args = ["--corpus", str(corpus), "--budget", "2", "--round-size", "2",
                "--max-sim-time", "2.0", "--seed", "1"]
        assert main(["fuzz", "run", *args]) == 0
        capsys.readouterr()
        journal = load_corpus_journal(corpus)
        target = next(e for e in journal if "deadline-miss" in e["failure_modes"])
        assert main(
            ["fuzz", "minimize", *args, "--mode", "deadline-miss", target["key"]]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "rose-scenario/1"
