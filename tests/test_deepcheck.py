"""Tests for the repro.analysis.deepcheck whole-program passes.

Fixture trees replicate the real layout (``repro/...`` under a scanned
source root) and, where a pass keys on real qualnames — the taint roots,
the worker entry points — place fixture code at those exact paths so the
passes run precisely as they do on the shipped tree.
"""

from __future__ import annotations

import json
import textwrap
import time
from pathlib import Path

from repro.analysis.deepcheck import (
    DEFAULT_TAINT_ROOTS,
    PROTOCOL_MACHINE,
    WORKER_ENTRYPOINTS,
    build_call_graph,
    build_symbols,
    check_sequence,
    module_name,
    render_sarif,
)
from repro.analysis.lint import Baseline, LintEngine, baseline_path_for, get_rule
from repro.analysis.lint.engine import ProjectModel


def make_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def load_model(root: Path) -> ProjectModel:
    project, errors = LintEngine(root).load()
    assert errors == []
    return project


def run_deep(root: Path, rules: list[str], baseline: Baseline | None = None):
    return LintEngine(root, rules=[get_rule(r) for r in rules], baseline=baseline).run()


# ---------------------------------------------------------------------------
# Symbol table
# ---------------------------------------------------------------------------
class TestModuleName:
    def test_plain_module(self):
        assert module_name("repro/core/bridge.py") == "repro.core.bridge"

    def test_package_init(self):
        assert module_name("repro/core/__init__.py") == "repro.core"


class TestSymbols:
    def _symbols(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/widget.py": """
                import threading

                _CACHE = {}
                _LIMIT = 8
                _LOCK = threading.Lock()

                def top():
                    return 1

                class Base:
                    def shared(self):
                        return 0

                class Widget(Base):
                    registry = []

                    def __init__(self):
                        self.n = 0

                    def step(self):
                        return self.n
            """,
        })
        return build_symbols(load_model(tmp_path))

    def test_functions_and_methods_indexed(self, tmp_path):
        symbols = self._symbols(tmp_path)
        assert "repro.core.widget.top" in symbols.functions
        assert "repro.core.widget.Widget.step" in symbols.functions
        info = symbols.functions["repro.core.widget.Widget.step"]
        assert info.class_name == "Widget" and info.name == "step"

    def test_globals_with_mutability(self, tmp_path):
        symbols = self._symbols(tmp_path)
        assert symbols.globals["repro.core.widget._CACHE"].mutable
        assert not symbols.globals["repro.core.widget._LIMIT"].mutable
        # Class-level attributes are shared state too.
        assert symbols.globals["repro.core.widget.Widget.registry"].mutable

    def test_method_resolution_walks_bases(self, tmp_path):
        symbols = self._symbols(tmp_path)
        widget = symbols.resolve_class("repro.core.widget.Widget")
        assert widget is not None
        inherited = symbols.method_on(widget, "shared")
        assert inherited is not None
        assert inherited.qualname == "repro.core.widget.Base.shared"

    def test_resolve_class_by_unambiguous_bare_name(self, tmp_path):
        symbols = self._symbols(tmp_path)
        assert symbols.resolve_class("Widget") is not None
        assert symbols.resolve_class("NoSuchClass") is None


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------
class TestCallGraph:
    def _graph(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/alpha.py": """
                from repro.core.beta import helper

                def entry():
                    helper()
                    local()

                def local():
                    return 2
            """,
            "repro/core/beta.py": """
                def helper():
                    return Gadget().spin()

                class Gadget:
                    def __init__(self):
                        self.x = 1

                    def spin(self):
                        return self.turn()

                    def turn(self):
                        return self.x
            """,
        })
        symbols = build_symbols(load_model(tmp_path))
        return build_call_graph(symbols)

    def test_direct_edge_through_import_alias(self, tmp_path):
        graph = self._graph(tmp_path)
        callees = {e.callee for e in graph.callees("repro.core.alpha.entry")}
        assert "repro.core.beta.helper" in callees
        assert "repro.core.alpha.local" in callees

    def test_constructor_edge(self, tmp_path):
        graph = self._graph(tmp_path)
        kinds = {(e.callee, e.kind) for e in graph.callees("repro.core.beta.helper")}
        assert ("repro.core.beta.Gadget.__init__", "class") in kinds

    def test_self_edge(self, tmp_path):
        graph = self._graph(tmp_path)
        edges = graph.callees("repro.core.beta.Gadget.spin")
        assert [(e.callee, e.kind) for e in edges] == [
            ("repro.core.beta.Gadget.turn", "self")
        ]

    def test_reachability_with_witness_chain(self, tmp_path):
        graph = self._graph(tmp_path)
        reachable = graph.reachable_from(["repro.core.alpha.entry"])
        assert "repro.core.beta.Gadget.turn" in reachable
        chain = graph.chain(reachable, "repro.core.beta.Gadget.turn")
        assert chain[0] == "repro.core.alpha.entry"
        assert chain[-1] == "repro.core.beta.Gadget.turn"
        # Every hop in the witness is a real edge endpoint.
        assert all(q in reachable for q in chain)


# ---------------------------------------------------------------------------
# DEEP001: determinism taint
# ---------------------------------------------------------------------------
class TestDeep001Taint:
    def test_hazard_two_calls_below_root_is_found(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/signature.py": """
                from repro.sweep.canon import canon

                def mission_signature(result):
                    return canon(result)
            """,
            "repro/sweep/canon.py": """
                from repro.sweep.stamp import stamp

                def canon(result):
                    return stamp(result)
            """,
            "repro/sweep/stamp.py": """
                import time

                def stamp(result):
                    return (time.time(), result)
            """,
        })
        report = run_deep(tmp_path, ["DEEP001"])
        [diag] = report.active
        assert diag.rule == "DEEP001"
        assert diag.path == "repro/sweep/stamp.py"
        assert "wall-clock read time.time()" in diag.message
        # The witness chain names the root and every hop to the hazard.
        assert "mission_signature" in diag.message
        assert "canon" in diag.message

    def test_same_hazard_outside_slice_is_ignored(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/signature.py": """
                def mission_signature(result):
                    return repr(result)
            """,
            "repro/sweep/stamp.py": """
                import time

                def stamp(result):
                    return (time.time(), result)
            """,
        })
        assert run_deep(tmp_path, ["DEEP001"]).active == []

    def test_unsorted_items_iteration_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/signature.py": """
                def canonical_payload(result):
                    return [k for k, v in result.items()]
            """,
        })
        [diag] = run_deep(tmp_path, ["DEEP001"]).active
        assert "unsorted .items() iteration" in diag.message

    def test_waiver_at_hazard_site_suppresses(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/signature.py": """
                import os

                def mission_signature(result):
                    # repro: allow[DEEP001] salt comes from the host by design
                    return (os.getenv("SALT"), result)
            """,
        })
        report = run_deep(tmp_path, ["DEEP001"])
        assert report.active == []
        assert [d.waived for d in report.diagnostics] == [True]

    def test_shipped_roots_exist_in_shipped_tree(self):
        symbols = build_symbols(load_model(REPO_SRC))
        for root in DEFAULT_TAINT_ROOTS:
            assert root in symbols.functions, root


# ---------------------------------------------------------------------------
# DEEP002: fork/thread races
# ---------------------------------------------------------------------------
class TestDeep002Races:
    def test_unsynchronized_global_write_from_worker_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/runner.py": """
                _CACHE = {}

                def _execute_task(task):
                    _CACHE[task.name] = task
                    return task
            """,
        })
        [diag] = run_deep(tmp_path, ["DEEP002"]).active
        assert diag.rule == "DEEP002"
        assert "_CACHE" in diag.message
        assert "_execute_task" in diag.message

    def test_write_via_helper_is_still_caught(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/runner.py": """
                from repro.sweep.memo import remember

                def _execute_task(task):
                    remember(task)
                    return task
            """,
            "repro/sweep/memo.py": """
                _SEEN = []

                def remember(task):
                    _SEEN.append(task)
            """,
        })
        [diag] = run_deep(tmp_path, ["DEEP002"]).active
        assert diag.path == "repro/sweep/memo.py"
        assert ".append() on module-level _SEEN" in diag.message

    def test_pool_initializer_writes_are_blessed(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/runner.py": """
                _CACHE = {}

                def _pool_initializer(seed):
                    _CACHE.clear()

                def _execute_task(task):
                    _CACHE[task.name] = task
                    return task
            """,
        })
        # The initializer's own write is blessed AND it marks _CACHE
        # transient, so the worker-side write is the design, not a race.
        assert run_deep(tmp_path, ["DEEP002"]).active == []

    def test_registered_reset_hook_blesses_its_global(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/runner.py": """
                from repro.sweep import chaos

                def register_transient_reset(hook):
                    pass

                register_transient_reset(chaos.reset_state)

                def _execute_task(task):
                    chaos.note(task)
                    return task
            """,
            "repro/sweep/chaos.py": """
                _LOG = []

                def reset_state():
                    _LOG.clear()

                def note(task):
                    _LOG.append(task)
            """,
        })
        assert run_deep(tmp_path, ["DEEP002"]).active == []

    def test_lock_guarded_write_is_allowed(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/runner.py": """
                import threading

                _CACHE = {}
                _LOCK = threading.Lock()

                def _execute_task(task):
                    with _LOCK:
                        _CACHE[task.name] = task
                    return task
            """,
        })
        assert run_deep(tmp_path, ["DEEP002"]).active == []

    def test_setdefault_memo_idiom_is_allowed(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/runner.py": """
                _CACHE = {}

                def _execute_task(task):
                    return _CACHE.setdefault(task.name, task)
            """,
        })
        assert run_deep(tmp_path, ["DEEP002"]).active == []

    def test_local_variables_are_not_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/runner.py": """
                def _execute_task(task):
                    cache = {}
                    cache[task.name] = task
                    cache2 = []
                    cache2.append(task)
                    return cache
            """,
        })
        assert run_deep(tmp_path, ["DEEP002"]).active == []

    def test_shipped_worker_entrypoints_exist(self):
        symbols = build_symbols(load_model(REPO_SRC))
        for entry in WORKER_ENTRYPOINTS:
            assert entry in symbols.functions, entry


# ---------------------------------------------------------------------------
# DEEP003: protocol conformance
# ---------------------------------------------------------------------------
class TestCheckSequence:
    def test_full_handshake_accepted(self):
        events = [(i, 0, op) for i, op in enumerate(
            ["set_steps", "grant", "done", "grant", "done", "shutdown"]
        )]
        assert check_sequence(events) is None

    def test_watchdog_regrant_accepted(self):
        events = [(1, 0, "grant"), (2, 0, "grant"), (3, 0, "done")]
        assert check_sequence(events) is None

    def test_grant_after_shutdown_rejected(self):
        events = [(1, 0, "shutdown"), (2, 0, "grant")]
        violation = check_sequence(events)
        assert violation is not None
        line, _col, op, live = violation
        assert (line, op, live) == (2, "grant", "down")

    def test_set_steps_after_grant_rejected(self):
        # Configuration cannot follow a grant without a reset between.
        events = [(1, 0, "grant"), (2, 0, "set_steps")]
        assert check_sequence(events) is not None

    def test_every_machine_target_state_exists(self):
        for state, transitions in PROTOCOL_MACHINE.items():
            for op, target in transitions.items():
                assert target in PROTOCOL_MACHINE, (state, op, target)


class TestDeep003Protocol:
    def test_out_of_order_grant_after_shutdown_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/bridge.py": """
                from repro.core.packets import sync_grant, sync_shutdown

                def teardown(link):
                    link.send(sync_shutdown())
                    link.send(sync_grant(1))
            """,
        })
        [diag] = run_deep(tmp_path, ["DEEP003"]).active
        assert diag.rule == "DEEP003"
        assert "protocol op 'grant' is impossible" in diag.message
        assert "sequence: shutdown -> grant" in diag.message

    def test_legal_handshake_passes(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/bridge.py": """
                from repro.core.packets import sync_grant, sync_set_steps

                def drive(link):
                    link.send(sync_set_steps(8))
                    link.send(sync_grant(1))
            """,
        })
        assert run_deep(tmp_path, ["DEEP003"]).active == []

    def test_single_op_functions_are_skipped(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/bridge.py": """
                from repro.core.packets import sync_grant

                def regrant(link):
                    link.send(sync_grant(1))
            """,
        })
        assert run_deep(tmp_path, ["DEEP003"]).active == []

    def test_awaiting_ack_counts_as_done(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/bridge.py": """
                from repro.core.packets import PacketType, sync_shutdown

                def finish(link, packet):
                    link.send(sync_shutdown())
                    return packet.ptype == PacketType.SYNC_DONE
            """,
        })
        [diag] = run_deep(tmp_path, ["DEEP003"]).active
        assert "protocol op 'done' is impossible" in diag.message


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------
class TestSarif:
    def _report(self, tmp_path, waive: bool = False):
        waiver = "  # repro: allow[DEEP001] fixture" if waive else ""
        make_tree(tmp_path, {
            "repro/sweep/signature.py": f"""
                import time

                def mission_signature(result):
                    return (time.time(), result){waiver}
            """,
        })
        return run_deep(tmp_path, ["DEEP001"])

    def test_active_finding_is_an_error_result(self, tmp_path):
        report = self._report(tmp_path)
        log = json.loads(render_sarif(report.diagnostics))
        assert log["version"] == "2.1.0"
        [run] = log["runs"]
        [result] = run["results"]
        assert result["ruleId"] == "DEEP001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "repro/sweep/signature.py"
        assert location["region"]["startLine"] == 5
        # The rule catalog carries the descriptor for the emitted rule.
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["DEEP001"]

    def test_waived_finding_is_suppressed_note(self, tmp_path):
        report = self._report(tmp_path, waive=True)
        [result] = json.loads(render_sarif(report.diagnostics))["runs"][0]["results"]
        assert result["level"] == "note"
        assert result["suppressions"] == [
            {"kind": "inSource", "justification": "inline '# repro: allow' waiver"}
        ]

    def test_output_is_deterministic(self, tmp_path):
        report = self._report(tmp_path)
        assert render_sarif(report.diagnostics) == render_sarif(
            list(reversed(report.diagnostics))
        )


# ---------------------------------------------------------------------------
# The shipped tree
# ---------------------------------------------------------------------------
REPO_SRC = Path(__file__).resolve().parents[1] / "src"


class TestShippedTree:
    def test_deep_lint_clean_and_fast(self):
        baseline = Baseline.load(baseline_path_for(REPO_SRC))
        started = time.monotonic()
        report = LintEngine(
            REPO_SRC, baseline=baseline, deep=True, check_waivers=True
        ).run()
        elapsed = time.monotonic() - started
        assert report.ok, "\n".join(
            f"{d.path}:{d.line} {d.rule} {d.message}" for d in report.active
        )
        assert elapsed < 30.0, f"deep lint took {elapsed:.1f}s (budget 30s)"

    def test_signature_slice_is_analyzed_not_vacuous(self):
        # The taint pass proves something only if the roots resolve and
        # their slice actually spans modules.
        symbols = build_symbols(load_model(REPO_SRC))
        graph = build_call_graph(symbols)
        reachable = graph.reachable_from(
            [r for r in DEFAULT_TAINT_ROOTS if r in symbols.functions]
        )
        spanned = {info.path for q, info in symbols.functions.items() if q in reachable}
        assert len(reachable) >= 10
        assert len(spanned) >= 3

    def test_deepcheck_rules_registered_as_deep(self):
        for rule_id in ("DEEP001", "DEEP002", "DEEP003"):
            assert get_rule(rule_id).deep
        assert not get_rule("WAIVE001").deep
