"""Property-based tests for the repro.obs layer.

Three laws the sweep engine and exporters rely on, pinned with
hypothesis-generated inputs:

* **merge is associative and commutative** — histogram (and scalar)
  snapshots can be merged in any shard grouping and any order; this is
  what makes worker placement irrelevant to sweep telemetry;
* **the Prometheus exporter round-trips** — rendering a snapshot to
  text exposition format and parsing it back recovers every exercised
  series (modulo the declared-vs-sorted label-name ordering, which the
  normalizer below accounts for);
* **counter merges never lose increments** — the merged total equals
  the sum of per-shard totals, no matter how increments are split.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    MetricSpec,
    MetricsRegistry,
    merge_snapshots,
    parse_prometheus,
    to_prometheus,
)

#: Fixed bucket edges for the generated histograms (declared up front,
#: exactly like the real catalog).
EDGES = (1.0, 10.0, 100.0, 1000.0)

#: A small closed label vocabulary keeps series overlap between shards
#: likely, which is where merge bugs would hide.
label_values = st.sampled_from(["a", "b", "c"])

observations = st.lists(
    st.tuples(
        label_values,
        st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
        st.integers(min_value=1, max_value=5),
    ),
    max_size=20,
)

increments = st.lists(
    st.tuples(label_values, st.integers(min_value=0, max_value=100)),
    max_size=20,
)


def hist_registry() -> MetricsRegistry:
    return MetricsRegistry(
        [
            MetricSpec(
                "rose_test_latency",
                "histogram",
                "generated",
                labels=("shard",),
                buckets=EDGES,
            )
        ]
    )


def hist_snapshot(obs: list[tuple[str, float, int]]) -> dict:
    reg = hist_registry()
    for shard, value, count in obs:
        reg.observe("rose_test_latency", value, count=count, shard=shard)
    return reg.snapshot()


def counter_snapshot(incs: list[tuple[str, int]]) -> dict:
    reg = MetricsRegistry(
        [MetricSpec("rose_test_total", "counter", "generated", labels=("shard",))]
    )
    for shard, amount in incs:
        reg.inc("rose_test_total", amount, shard=shard)
    return reg.snapshot()


def canon(snapshot: dict) -> str:
    return json.dumps(snapshot, sort_keys=True)


def structural(snapshot: dict) -> str:
    """Canonical form with the float histogram sums stripped.

    Bucket counts and observation counts are integers and merge exactly
    associatively; the ``sum`` field is a float accumulator, and float
    addition is only associative up to rounding — so it is compared
    separately with a tolerance.  (The sweep engine never depends on
    sum-associativity: ``SweepReport.telemetry()`` folds per-mission
    snapshots in deterministic input order, so the grouping is fixed.)
    """
    stripped = {}
    for name, entry in snapshot.items():
        copied = dict(entry)
        copied["series"] = [
            {k: v for k, v in row.items() if k != "sum"}
            for row in entry["series"]
        ]
        stripped[name] = copied
    return json.dumps(stripped, sort_keys=True)


def sums(snapshot: dict) -> list:
    """Histogram sums in snapshot (name, label-sorted-row) order."""
    return [
        row["sum"]
        for _, entry in sorted(snapshot.items())
        for row in entry["series"]
        if "sum" in row
    ]


class TestHistogramMergeLaws:
    @given(observations, observations, observations)
    @settings(max_examples=100)
    def test_associative(self, a, b, c):
        sa, sb, sc = hist_snapshot(a), hist_snapshot(b), hist_snapshot(c)
        left = merge_snapshots([merge_snapshots([sa, sb]), sc])
        right = merge_snapshots([sa, merge_snapshots([sb, sc])])
        assert structural(left) == structural(right)
        assert sums(left) == pytest.approx(sums(right))

    @given(observations, observations)
    @settings(max_examples=100)
    def test_commutative(self, a, b):
        sa, sb = hist_snapshot(a), hist_snapshot(b)
        assert canon(merge_snapshots([sa, sb])) == canon(
            merge_snapshots([sb, sa])
        )

    @given(observations, observations)
    @settings(max_examples=100)
    def test_counts_conserved(self, a, b):
        merged = merge_snapshots([hist_snapshot(a), hist_snapshot(b)])
        total = sum(
            row["count"] for row in merged["rose_test_latency"]["series"]
        )
        assert total == sum(count for _, _, count in a + b)
        for row in merged["rose_test_latency"]["series"]:
            assert sum(row["buckets"]) == row["count"]


def normalize(snapshot: dict) -> dict:
    """Project a snapshot onto what Prometheus exposition preserves.

    The text format carries no declared-label-order or empty-series
    information, and ``parse_prometheus`` reconstructs label names in
    sorted order — so drop empty metrics and sort label names before
    comparing.
    """
    out: dict = {}
    for name, entry in snapshot.items():
        if not entry["series"]:
            continue
        copied = dict(entry)
        copied["labels"] = sorted(entry["labels"])
        out[name] = copied
    return out


class TestPrometheusRoundTrip:
    @given(increments)
    @settings(max_examples=100)
    def test_counters(self, incs):
        snap = counter_snapshot(incs)
        back = parse_prometheus(to_prometheus(snap))
        assert canon(back) == canon(normalize(snap))

    @given(observations)
    @settings(max_examples=100)
    def test_histograms(self, obs):
        snap = hist_snapshot(obs)
        back = parse_prometheus(to_prometheus(snap))
        assert canon(back) == canon(normalize(snap))


class TestCounterMergeLossless:
    @given(st.lists(increments, max_size=5))
    @settings(max_examples=100)
    def test_total_conserved_across_any_split(self, shards):
        merged = merge_snapshots(counter_snapshot(incs) for incs in shards)
        merged_total = sum(
            row["value"]
            for row in merged.get("rose_test_total", {}).get("series", [])
        )
        assert merged_total == sum(
            amount for incs in shards for _, amount in incs
        )

    @given(increments, st.integers(min_value=1, max_value=4))
    @settings(max_examples=100)
    def test_sharding_equals_single_registry(self, incs, shards):
        # Round-robin the same increments across N registries: the merge
        # must equal the single-registry snapshot.
        single = counter_snapshot(incs)
        parts = [incs[i::shards] for i in range(shards)]
        merged = merge_snapshots(counter_snapshot(part) for part in parts)
        assert canon(merged) == canon(single)
