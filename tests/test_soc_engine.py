"""Tests for the SoC top level and its cycle-resolution execution engine."""

from __future__ import annotations

import pytest

from repro.core import packets as pk
from repro.errors import ConfigError, TargetProgramError
from repro.soc.iodev import REG_CYCLE, REG_RX_COUNT, REG_RX_DATA, REG_TX_DATA
from repro.soc.soc import CONFIG_A, CONFIG_B, CONFIG_C, Soc, SocConfig, soc_config


class TestTable2Configs:
    def test_config_a(self):
        assert CONFIG_A.cpu == "boom"
        assert CONFIG_A.has_gemmini

    def test_config_b(self):
        assert CONFIG_B.cpu == "rocket"
        assert CONFIG_B.has_gemmini

    def test_config_c(self):
        assert CONFIG_C.cpu == "boom"
        assert not CONFIG_C.has_gemmini

    def test_lookup_case_insensitive(self):
        assert soc_config("a") is CONFIG_A
        assert soc_config("B") is CONFIG_B

    def test_unknown_config(self):
        with pytest.raises(ConfigError):
            soc_config("D")

    def test_descriptions(self):
        assert "BOOM" in CONFIG_A.description
        assert "Gemmini" in CONFIG_A.description
        assert "None" in CONFIG_C.description
        assert "Rocket" in CONFIG_B.description


class TestSocConstruction:
    def test_config_c_has_no_gemmini(self):
        soc = Soc(CONFIG_C)
        assert soc.gemmini is None
        assert soc.gemmini_busy_cycles == 0
        assert soc.activity_factor == 0.0

    def test_step_without_program_raises(self):
        soc = Soc(CONFIG_A)
        with pytest.raises(TargetProgramError):
            soc.step(100)

    def test_step_rejects_non_positive_budget(self):
        soc = Soc(CONFIG_A)
        soc.load_program(lambda rt: iter(()))
        with pytest.raises(ConfigError):
            soc.step(0)


def make_soc(program, config=CONFIG_A):
    soc = Soc(config)
    soc.load_program(program)
    return soc


class TestExecution:
    def test_budget_fully_consumed(self):
        def program(rt):
            yield from rt.delay(50)

        soc = make_soc(program)
        assert soc.step(1000) == 1000
        assert soc.cycle == 1000
        assert soc.halted

    def test_idle_after_halt_accounted(self):
        def program(rt):
            yield from rt.delay(100)

        soc = make_soc(program)
        soc.step(1000)
        assert soc.counters.idle_cycles >= 900

    def test_op_spans_step_boundary(self):
        trace = []

        def program(rt):
            yield from rt.delay(150)
            trace.append(("done-at", None))

        soc = make_soc(program)
        soc.step(100)
        assert not trace  # op still pending
        soc.step(100)
        assert trace  # completed during second step
        assert soc.cycle == 200

    def test_mmio_read_value_delivered(self):
        values = []

        def program(rt):
            count = yield from rt.mmio_read(REG_RX_COUNT)
            values.append(count)

        soc = make_soc(program)
        soc.bridge.host_inject(pk.depth_response(1.0))
        soc.step(10_000)
        assert values == [1]

    def test_rx_pop_charges_copy_cost(self):
        """Popping a big packet must cost more cycles than a small one."""

        def program(rt):
            yield from rt.mmio_read(REG_RX_DATA)

        small = make_soc(program)
        small.bridge.host_inject(pk.depth_response(1.0))
        large = make_soc(program)
        large.bridge.host_inject(
            pk.camera_response(32, 48, 0, 0, 0, 1.6, bytes(32 * 48))
        )
        # Run both to completion and compare busy cycles.
        small.step(10_000_000)
        large.step(10_000_000)
        assert large.counters.cpu_busy_cycles > small.counters.cpu_busy_cycles

    def test_tx_write_visible_after_completion(self):
        def program(rt):
            yield from rt.mmio_write(REG_TX_DATA, pk.camera_request())
            yield from rt.delay(1_000_000)

        soc = make_soc(program)
        soc.step(10)  # far less than the write cost: not visible yet
        assert soc.bridge.host_collect() == []
        soc.step(10_000)
        assert [p.ptype for p in soc.bridge.host_collect()] == [pk.PacketType.CAMERA_REQ]

    def test_cycle_register_reads_current_cycle(self):
        values = []

        def program(rt):
            yield from rt.delay(500)
            value = yield from rt.current_cycle()
            values.append(value)

        soc = make_soc(program)
        soc.step(10_000)
        # Read happens at fetch (cycle 500), delivered after the access cost.
        assert values[0] == 500

    def test_unknown_op_rejected(self):
        def program(rt):
            yield ("teleport", 42)

        soc = make_soc(program)
        with pytest.raises(TargetProgramError):
            soc.step(100)

    def test_negative_delay_rejected(self):
        def program(rt):
            yield ("delay", -5)

        soc = make_soc(program)
        with pytest.raises(TargetProgramError):
            soc.step(100)

    def test_counters_track_ops(self):
        def program(rt):
            yield from rt.mmio_read(REG_RX_COUNT)
            yield from rt.mmio_write(REG_TX_DATA, pk.camera_request())

        soc = make_soc(program)
        soc.step(100_000)
        assert soc.counters.mmio_reads == 1
        assert soc.counters.mmio_writes == 1


class TestInferenceIntegration:
    def test_inference_consumes_report_cycles(self):
        from repro.dnn.resnet import build_resnet_graph
        from repro.dnn.runtime import InferenceSession

        soc = Soc(CONFIG_A)
        session = InferenceSession(
            build_resnet_graph("resnet6"), soc.cpu, soc.gemmini
        )
        reports = []

        def program(rt):
            report = yield from rt.run_inference(session)
            reports.append(report)

        soc.load_program(program)
        expected = session.report.total_cycles
        soc.step(expected - 1)
        assert not reports
        soc.step(10)
        assert reports and reports[0].total_cycles == expected

    def test_activity_factor_reflects_gemmini_share(self):
        from repro.dnn.resnet import build_resnet_graph
        from repro.dnn.runtime import InferenceSession

        soc = Soc(CONFIG_A)
        session = InferenceSession(build_resnet_graph("resnet14"), soc.cpu, soc.gemmini)

        def program(rt):
            while True:
                yield from rt.run_inference(session)

        soc.load_program(program)
        soc.step(500_000_000)
        expected = session.report.gemmini_cycles / session.report.total_cycles
        assert soc.activity_factor == pytest.approx(expected, rel=0.05)
