"""Tests for fault injection and the resilience paths it exercises.

Covers the :mod:`repro.core.faults` plan/injector machinery, wire-level
injection through :class:`~repro.core.transport.FaultyTransport`, CRC
discard semantics on both transports, the synchronizer's watchdog /
regrant recovery and its error paths, and the end-to-end degradation
behaviour of a faulted mission (structured failure, determinism,
fault-free bit-identity).
"""

from __future__ import annotations

import socket as socket_module

import pytest

from repro.core import packets as pk
from repro.core.config import CoSimConfig, SyncConfig
from repro.core.cosim import run_mission
from repro.core.csvlog import SyncLogger
from repro.core.faults import (
    SENSOR_RESPONSE_TYPES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    ScheduledFault,
    load_fault_plan,
)
from repro.core.packets import PacketType
from repro.core.synchronizer import Synchronizer
from repro.core.transport import FaultyTransport, transport_pair
from repro.env.rpc import RpcClient, RpcServer
from repro.env.simulator import EnvConfig, EnvSimulator
from repro.errors import ConfigError, PacketError, SyncError, TransportError, WatchdogError
from repro.soc.firesim import FireSimHost
from repro.soc.soc import CONFIG_A, Soc


def injector(*rules, scheduled=(), seed=0):
    return FaultInjector(FaultPlan(seed=seed, rules=tuple(rules), scheduled=tuple(scheduled)))


# ---------------------------------------------------------------------------
# FaultPlan: validation + serialization
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_round_trips_through_json(self):
        plan = FaultPlan(
            seed=11,
            rules=(
                FaultRule(PacketType.CAMERA_RESP, drop=0.1, delay=0.05, delay_steps=2),
                FaultRule(PacketType.IMU_RESP, corrupt=0.2, duplicate=0.01),
            ),
            scheduled=(
                ScheduledFault("drop", 40, 60, PacketType.CAMERA_RESP),
                ScheduledFault("stuck_imu", 10, 20),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_dict_rules_are_coerced(self):
        plan = FaultPlan(rules=({"ptype": "CAMERA_RESP", "drop": 0.5},))
        assert plan.rules[0].ptype is PacketType.CAMERA_RESP
        assert plan.rules[0].drop == 0.5

    def test_sensor_response_drop_covers_all_sensor_types(self):
        plan = FaultPlan.sensor_response_drop(0.1, seed=3)
        assert {r.ptype for r in plan.rules} == set(SENSOR_RESPONSE_TYPES)
        assert all(r.drop == 0.1 for r in plan.rules)
        assert plan.seed == 3

    def test_duplicate_rule_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(rules=(FaultRule(PacketType.IMU_RESP), FaultRule(PacketType.IMU_RESP)))

    def test_probability_bounds_enforced(self):
        with pytest.raises(ConfigError):
            FaultRule(PacketType.IMU_RESP, drop=1.5)
        with pytest.raises(ConfigError):
            FaultRule(PacketType.IMU_RESP, delay=0.1, delay_steps=0)

    def test_scheduled_fault_validation(self):
        with pytest.raises(ConfigError):
            ScheduledFault("melt", 0, 10)
        with pytest.raises(ConfigError):
            ScheduledFault("drop", 10, 10, PacketType.IMU_RESP)  # empty window
        with pytest.raises(ConfigError):
            ScheduledFault("drop", 0, 10)  # wire kind needs a ptype

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"seed": 0, "chaos": True})

    def test_load_fault_plan_inline_and_file(self, tmp_path):
        text = FaultPlan.sensor_response_drop(0.25, seed=9).to_json()
        assert load_fault_plan(text).rules[0].drop == 0.25
        path = tmp_path / "plan.json"
        path.write_text(text)
        assert load_fault_plan(str(path)).seed == 9
        with pytest.raises(ConfigError):
            load_fault_plan(str(tmp_path / "missing.json"))


# ---------------------------------------------------------------------------
# FaultInjector: decisions, schedule windows, determinism
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_no_rules_never_faults_or_consumes_rng(self):
        inj = injector()
        state = inj._rng.getstate()
        for _ in range(100):
            decision = inj.decide(PacketType.CAMERA_RESP)
            assert not (decision.drop or decision.corrupt or decision.duplicate)
        assert inj._rng.getstate() == state

    def test_same_seed_same_decisions(self):
        rule = FaultRule(PacketType.IMU_RESP, drop=0.3, corrupt=0.2, duplicate=0.1)
        a, b = injector(rule, seed=42), injector(rule, seed=42)
        for _ in range(200):
            assert a.decide(PacketType.IMU_RESP) == b.decide(PacketType.IMU_RESP)
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_certain_drop(self):
        inj = injector(FaultRule(PacketType.DEPTH_RESP, drop=1.0))
        assert inj.decide(PacketType.DEPTH_RESP).drop
        assert not inj.decide(PacketType.CAMERA_RESP).drop  # other types untouched
        assert inj.counters.dropped == 1

    def test_scheduled_drop_window(self):
        inj = injector(
            scheduled=(ScheduledFault("drop", 40, 60, PacketType.CAMERA_RESP),)
        )
        inj.begin_step(39)
        assert not inj.decide(PacketType.CAMERA_RESP).drop
        inj.begin_step(40)
        assert inj.decide(PacketType.CAMERA_RESP).drop
        assert not inj.decide(PacketType.IMU_RESP).drop  # window is per-type
        inj.begin_step(60)  # end is exclusive
        assert not inj.decide(PacketType.CAMERA_RESP).drop

    def test_sensor_fault_windows(self):
        inj = injector(
            scheduled=(
                ScheduledFault("stuck_imu", 5, 10),
                ScheduledFault("camera_blackout", 8, 12),
            )
        )
        inj.begin_step(6)
        assert inj.stuck_imu_active() and not inj.camera_blackout_active()
        inj.begin_step(9)
        assert inj.stuck_imu_active() and inj.camera_blackout_active()
        inj.begin_step(11)
        assert not inj.stuck_imu_active() and inj.camera_blackout_active()

    def test_corrupt_wire_preserves_framing(self):
        inj = injector(seed=1)
        wire = pk.encode_packet(pk.depth_response(4.5))
        for _ in range(50):
            mutated = inj.corrupt_wire(wire)
            assert len(mutated) == len(wire)
            assert mutated[: pk.HEADER_SIZE] == wire[: pk.HEADER_SIZE]
            assert mutated != wire
            with pytest.raises(PacketError):
                pk.decode_packet(mutated)


# ---------------------------------------------------------------------------
# CRC validation on the wire format
# ---------------------------------------------------------------------------
class TestPacketCrc:
    def test_flipped_payload_byte_detected(self):
        wire = bytearray(pk.encode_packet(pk.depth_response(4.5)))
        wire[pk.HEADER_SIZE] ^= 0x40
        with pytest.raises(PacketError):
            pk.decode_packet(bytes(wire))

    def test_flipped_crc_byte_detected(self):
        wire = bytearray(pk.encode_packet(pk.sync_grant(3)))
        wire[3] ^= 0x01
        with pytest.raises(PacketError):
            pk.decode_packet(bytes(wire))


# ---------------------------------------------------------------------------
# Transports: corrupt-discard, closed-endpoint symmetry, send timeout
# ---------------------------------------------------------------------------
class TestTransportRobustness:
    @pytest.fixture(params=["inprocess", "tcp"])
    def pair(self, request):
        a, b = transport_pair(request.param)
        yield a, b
        a.close()
        b.close()

    def test_corrupt_frame_discarded_and_counted(self, pair):
        a, b = pair
        wire = bytearray(pk.encode_packet(pk.depth_response(1.0)))
        wire[pk.HEADER_SIZE] ^= 0xFF
        a.send_wire(bytes(wire))
        a.send(pk.depth_response(2.0))  # a healthy frame right behind it
        packet = b.recv_blocking(timeout=2.0)
        assert packet.values == (2.0,)
        assert b.corrupt_packets == 1

    def test_recv_on_closed_raises(self, pair):
        _, b = pair
        b.close()
        with pytest.raises(TransportError):
            b.recv()

    def test_send_on_closed_raises(self, pair):
        a, _ = pair
        a.close()
        with pytest.raises(TransportError):
            a.send(pk.depth_request())

    def test_tcp_resyncs_after_corrupted_header(self):
        a, b = transport_pair("tcp")
        try:
            wire = bytearray(pk.encode_packet(pk.depth_response(1.0)))
            wire[0] ^= 0xFF  # destroy the magic: header-level corruption
            a.send_wire(bytes(wire))
            a.send(pk.depth_response(3.0))
            packet = b.recv_blocking(timeout=2.0)
            assert packet.values == (3.0,)
            assert b.corrupt_packets >= 1
        finally:
            a.close()
            b.close()

    def test_tcp_send_timeout_raises_not_spins(self):
        a, b = transport_pair("tcp")
        try:
            a.send_timeout = 0.2
            a._sock.setsockopt(socket_module.SOL_SOCKET, socket_module.SO_SNDBUF, 4096)
            payload = bytes(256 * 1024)
            with pytest.raises(TransportError, match="stalled"):
                for _ in range(64):  # peer never reads; buffers fill quickly
                    a.send(pk.camera_response(512, 512, 0.0, 0.0, 0.0, 1.6, payload))
        finally:
            a.close()
            b.close()

    def test_tcp_pair_accept_failure_closes_client(self, monkeypatch):
        created = []
        real_create = socket_module.create_connection

        def tracking_create(*args, **kwargs):
            sock = real_create(*args, **kwargs)
            created.append(sock)
            return sock

        def failing_accept(self):
            raise OSError("synthetic accept failure")

        monkeypatch.setattr(socket_module, "create_connection", tracking_create)
        monkeypatch.setattr(socket_module.socket, "accept", failing_accept)
        with pytest.raises(TransportError):
            transport_pair("tcp")
        assert created and created[0].fileno() == -1  # client socket closed


# ---------------------------------------------------------------------------
# FaultyTransport wire-level injection
# ---------------------------------------------------------------------------
class TestFaultyTransport:
    def wrap(self, inj):
        a, b = transport_pair("inprocess")
        return FaultyTransport(a, inj), b

    def test_drop(self):
        inj = injector(FaultRule(PacketType.DEPTH_RESP, drop=1.0))
        a, b = self.wrap(inj)
        a.send(pk.depth_response(1.0))
        assert b.recv() is None
        assert inj.counters.dropped == 1
        assert a.packets_sent == 0  # never reached the wire

    def test_corrupt_discarded_by_receiver(self):
        inj = injector(FaultRule(PacketType.DEPTH_RESP, corrupt=1.0))
        a, b = self.wrap(inj)
        a.send(pk.depth_response(1.0))
        assert b.recv() is None
        assert b.corrupt_packets == 1
        assert inj.counters.corrupted == 1

    def test_duplicate(self):
        inj = injector(FaultRule(PacketType.DEPTH_RESP, duplicate=1.0))
        a, b = self.wrap(inj)
        a.send(pk.depth_response(1.0))
        assert len(b.drain()) == 2
        assert inj.counters.duplicated == 1

    def test_delay_released_after_steps(self):
        inj = injector(FaultRule(PacketType.DEPTH_RESP, delay=1.0, delay_steps=2))
        a, b = self.wrap(inj)
        a.send(pk.depth_response(1.0))
        assert b.recv() is None
        assert a.pending_delayed == 1
        inj.begin_step(1)
        a.recv()  # release check runs on any transport activity
        assert b.recv() is None  # one step is not enough
        inj.begin_step(2)
        a.recv()
        packet = b.recv()
        assert packet is not None and packet.values == (1.0,)
        assert a.pending_delayed == 0
        assert inj.counters.delayed == 1

    def test_unfaulted_types_pass_through(self):
        inj = injector(FaultRule(PacketType.DEPTH_RESP, drop=1.0))
        a, b = self.wrap(inj)
        a.send(pk.sync_grant(5))
        assert b.recv().values == (5,)


# ---------------------------------------------------------------------------
# Synchronizer: error paths, watchdog, sensor faults
# ---------------------------------------------------------------------------
SYNC = SyncConfig(cycles_per_sync=10_000_000)


def build_sync(program, faults=None, logger=None, sync=SYNC):
    env = EnvSimulator(EnvConfig(world="tunnel", frame_rate=sync.frame_rate_hz))
    rpc = RpcClient(RpcServer(env))
    soc = Soc(CONFIG_A)
    soc.load_program(program)
    sync_end, firesim_end = transport_pair("inprocess")
    if faults is not None:
        sync_end = FaultyTransport(sync_end, faults)
        firesim_end = FaultyTransport(firesim_end, faults)
    host = FireSimHost(soc, firesim_end)
    synchronizer = Synchronizer(
        rpc=rpc,
        transport=sync_end,
        sync=sync,
        host_service=host.service,
        logger=logger,
        faults=faults,
    )
    return soc, host, synchronizer


def idle_program(rt):
    while True:
        yield from rt.delay(100_000)


class TestSynchronizerErrorPaths:
    def test_step_before_configure(self):
        _, _, sync = build_sync(idle_program)
        with pytest.raises(SyncError):
            sync.step()

    def test_out_of_order_sync_done(self):
        _, _, sync = build_sync(idle_program)
        sync.configure()
        sync.transport._inbox.append(pk.encode_packet(pk.sync_done(7, 1)))
        with pytest.raises(SyncError, match="out-of-order"):
            sync.step()

    def test_stale_sync_done_ignored(self):
        _, _, sync = build_sync(idle_program)
        sync.configure()
        sync.step()
        # A duplicate acknowledgement of step 0 arrives late: absorbed.
        sync.transport._inbox.append(pk.encode_packet(pk.sync_done(0, 1)))
        sync.step()
        assert sync.stats.stale_sync_done == 1
        assert sync.stats.steps == 2

    def test_unexpected_packet_type_rejected(self):
        _, _, sync = build_sync(idle_program)
        sync.configure()
        sync.transport._inbox.append(pk.encode_packet(pk.sync_grant(0)))
        with pytest.raises(SyncError, match="unexpected"):
            sync.step()


class TestWatchdog:
    def test_all_done_lost_raises_watchdog(self):
        inj = injector(FaultRule(PacketType.SYNC_DONE, drop=1.0))
        _, _, sync = build_sync(idle_program, faults=inj)
        sync.configure()
        with pytest.raises(WatchdogError):
            sync.step()
        assert sync.stats.sync_regrants == SYNC.max_regrants

    def test_lossy_done_recovered_without_double_stepping(self):
        inj = injector(FaultRule(PacketType.SYNC_DONE, drop=0.5), seed=5)
        soc, host, sync = build_sync(idle_program, faults=inj)
        sync.configure()
        for _ in range(20):
            sync.step()
        assert sync.stats.steps == 20
        assert soc.cycle == 20 * SYNC.cycles_per_sync  # every step ran once
        assert sync.stats.sync_regrants > 0
        assert host.duplicate_grants > 0

    def test_fault_counters_mirrored_into_stats(self):
        inj = injector(FaultRule(PacketType.SYNC_DONE, drop=0.5), seed=5)
        _, _, sync = build_sync(idle_program, faults=inj)
        sync.configure()
        for _ in range(10):
            sync.step()
        assert sync.stats.packets_dropped == inj.counters.dropped > 0


class TestSensorFaults:
    def test_stuck_imu_serves_last_reading(self):
        readings = []

        def program(rt):
            for _ in range(2):
                imu = yield from rt.request_response(pk.imu_request(), PacketType.IMU_RESP)
                readings.append(imu.values)
                yield from rt.delay(1_000_000)
            while True:
                yield from rt.delay(100_000)

        inj = injector(scheduled=(ScheduledFault("stuck_imu", 0, 1000),))
        _, _, sync = build_sync(program, faults=inj)
        sync.configure()
        for _ in range(10):
            sync.step()
        assert len(readings) == 2
        assert readings[0] == readings[1]  # timestamp frozen: stuck sensor
        assert inj.counters.stuck_imu >= 1
        assert sync.stats.sensor_faults >= 1

    def test_camera_blackout_zeroes_frame(self):
        frames = []

        def program(rt):
            frame = yield from rt.request_response(pk.camera_request(), PacketType.CAMERA_RESP)
            frames.append(frame)
            while True:
                yield from rt.delay(100_000)

        inj = injector(scheduled=(ScheduledFault("camera_blackout", 0, 1000),))
        _, _, sync = build_sync(program, faults=inj)
        sync.configure()
        for _ in range(4):
            sync.step()
        assert frames
        assert set(frames[0].raw) == {0}  # all-black pixels
        assert frames[0].values[3] == 0.0  # heading_error metadata gone too
        assert inj.counters.camera_blackout >= 1


# ---------------------------------------------------------------------------
# CSV log: new columns round-trip, old logs still read
# ---------------------------------------------------------------------------
class TestCsvColumns:
    def test_fault_columns_logged(self):
        logger = SyncLogger()
        inj = injector(FaultRule(PacketType.SYNC_DONE, drop=0.5), seed=5)
        _, _, sync = build_sync(idle_program, faults=inj, logger=logger)
        sync.configure()
        for _ in range(10):
            sync.step()
        assert logger.rows[-1].packets_dropped == sync.stats.packets_dropped
        assert logger.rows[-1].retries == sync.stats.sync_regrants

    def test_pre_fault_csv_still_reads(self, tmp_path):
        old = tmp_path / "old.csv"
        header = (
            "step,sim_time,x,y,z,yaw,speed,course_s,course_d,collisions,"
            "camera_requests,imu_requests,depth_requests,"
            "target_v_forward,target_v_lateral,target_yaw_rate"
        )
        old.write_text(header + "\n1,0.01,0,0,1.5,0,0,0,0,0,1,0,0,3.0,0.0,0.0\n")
        logger = SyncLogger.read(str(old))
        assert logger.rows[0].packets_dropped == 0
        assert logger.rows[0].retries == 0


# ---------------------------------------------------------------------------
# End to end: degradation, structured failure, determinism
# ---------------------------------------------------------------------------
def small_config(**kwargs):
    return CoSimConfig(
        world="tunnel", soc="A", model="resnet6", target_velocity=3.0,
        max_sim_time=2.0, **kwargs
    )


class TestMissionUnderFaults:
    def test_sensor_drops_degrade_gracefully(self):
        plan = FaultPlan(
            seed=3, rules=(FaultRule(PacketType.CAMERA_RESP, drop=0.5),)
        )
        result = run_mission(small_config(faults=plan, sensor_retries=1))
        assert result.failure_reason is None  # no crash: flown to max_sim_time
        stats = result.app_stats
        assert stats.sensor_timeouts > 0
        # Every expired wait either triggered a retry or fell through to a
        # degradation action (stale frame / held command / blind restart).
        assert stats.sensor_timeouts >= stats.sensor_retries
        assert stats.sensor_retries + stats.stale_frames_reused + stats.held_commands > 0
        assert result.sync_stats.packets_dropped > 0

    def test_dead_link_is_structured_watchdog_failure(self):
        plan = FaultPlan(rules=(FaultRule(PacketType.SYNC_DONE, drop=1.0),))
        result = run_mission(small_config(faults=plan))
        assert not result.completed
        assert result.failure_reason == "watchdog"
        assert "watchdog" in result.summary()

    def test_same_plan_same_seed_identical_counters(self):
        plan = FaultPlan.sensor_response_drop(0.2, seed=13)
        a = run_mission(small_config(faults=plan))
        b = run_mission(small_config(faults=plan))
        assert a.sync_stats.fault_summary() == b.sync_stats.fault_summary()
        assert a.app_stats.sensor_timeouts == b.app_stats.sensor_timeouts

    def test_fusion_controller_degrades(self):
        plan = FaultPlan(
            seed=2,
            rules=(
                FaultRule(PacketType.IMU_RESP, drop=0.4),
                FaultRule(PacketType.CAMERA_RESP, drop=0.4),
            ),
        )
        result = run_mission(
            small_config(faults=plan, controller="fusion", sensor_retries=0)
        )
        assert result.failure_reason is None
        assert result.fusion_stats.imu_timeouts > 0
