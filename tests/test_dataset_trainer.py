"""Tests for dataset generation and the training loop.

The full train-to-accuracy path is exercised end to end on a tiny
dataset/model; the goal is correctness of the pipeline, with a weak
learnability check (better than chance), not benchmark accuracy.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dnn.dataset import (
    ANGULAR_BOUNDARY,
    CENTER,
    LEFT,
    RIGHT,
    TrailDataset,
    angular_class,
    generate_trail_dataset,
    lateral_class,
)
from repro.dnn.resnet import TrailNetModel
from repro.dnn.trainer import SgdConfig, SgdOptimizer, evaluate, train
from repro.env.camera import CameraParams


class TestClassBinning:
    def test_angular_classes(self):
        assert angular_class(math.radians(20)) == LEFT
        assert angular_class(0.0) == CENTER
        assert angular_class(math.radians(-20)) == RIGHT

    def test_angular_boundary(self):
        assert angular_class(ANGULAR_BOUNDARY + 1e-6) == LEFT
        assert angular_class(ANGULAR_BOUNDARY - 1e-6) == CENTER

    def test_lateral_classes(self):
        assert lateral_class(1.0, half_width=1.6) == LEFT
        assert lateral_class(0.0, half_width=1.6) == CENTER
        assert lateral_class(-1.0, half_width=1.6) == RIGHT

    def test_lateral_boundary_scales_with_width(self):
        # 0.2 * half_width boundary: 0.5 m is "left" in a narrow corridor
        # but "center" in a wide one.
        assert lateral_class(0.5, half_width=1.6) == LEFT
        assert lateral_class(0.5, half_width=3.2) == CENTER


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_trail_dataset(
        samples_per_class=12, camera=CameraParams(width=24, height=16), seed=0
    )


class TestDatasetGeneration:
    def test_size_and_shapes(self, tiny_dataset):
        assert len(tiny_dataset) == 36
        assert tiny_dataset.images.shape == (36, 1, 16, 24)
        assert tiny_dataset.images.dtype == np.float32

    def test_angular_classes_balanced(self, tiny_dataset):
        counts = np.bincount(tiny_dataset.angular_labels, minlength=3)
        np.testing.assert_array_equal(counts, [12, 12, 12])

    def test_labels_consistent_with_continuous_values(self, tiny_dataset):
        for i in range(len(tiny_dataset)):
            assert tiny_dataset.angular_labels[i] == angular_class(
                tiny_dataset.heading_errors[i]
            )
            assert tiny_dataset.lateral_labels[i] == lateral_class(
                tiny_dataset.lateral_offsets[i], tiny_dataset.half_width
            )

    def test_images_in_unit_range(self, tiny_dataset):
        assert tiny_dataset.images.min() >= 0.0
        assert tiny_dataset.images.max() <= 1.0

    def test_lateral_balance_mode(self):
        ds = generate_trail_dataset(
            samples_per_class=6,
            camera=CameraParams(width=16, height=12),
            seed=1,
            balance="lateral",
        )
        counts = np.bincount(ds.lateral_labels, minlength=3)
        np.testing.assert_array_equal(counts, [6, 6, 6])

    def test_invalid_balance_mode(self):
        with pytest.raises(ValueError):
            generate_trail_dataset(samples_per_class=1, balance="diagonal")

    def test_determinism(self):
        params = CameraParams(width=16, height=12)
        a = generate_trail_dataset(samples_per_class=4, camera=params, seed=5)
        b = generate_trail_dataset(samples_per_class=4, camera=params, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.angular_labels, b.angular_labels)

    def test_split(self, tiny_dataset):
        train_set, val_set = tiny_dataset.split(0.75, seed=0)
        assert len(train_set) == 27
        assert len(val_set) == 9
        # No sample lost.
        assert len(train_set) + len(val_set) == len(tiny_dataset)

    def test_split_rejects_bad_fraction(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.split(1.5)


class TestOptimizer:
    def test_sgd_descends_quadratic(self):
        from repro.dnn.layers import Parameter

        param = Parameter(np.array([4.0], dtype=np.float32))
        opt = SgdOptimizer([param], SgdConfig(learning_rate=0.1, momentum=0.0, weight_decay=0.0))
        for _ in range(100):
            opt.zero_grad()
            param.grad += 2 * param.value  # d/dx x^2
            opt.step()
        assert abs(param.value[0]) < 1e-3

    def test_momentum_accelerates(self):
        from repro.dnn.layers import Parameter

        def run(momentum):
            param = Parameter(np.array([4.0], dtype=np.float32))
            opt = SgdOptimizer(
                [param], SgdConfig(learning_rate=0.01, momentum=momentum, weight_decay=0.0)
            )
            for _ in range(50):
                opt.zero_grad()
                param.grad += 2 * param.value
                opt.step()
            return abs(param.value[0])

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        from repro.dnn.layers import Parameter

        param = Parameter(np.array([4.0], dtype=np.float32))
        opt = SgdOptimizer(
            [param], SgdConfig(learning_rate=0.1, momentum=0.0, weight_decay=0.5)
        )
        for _ in range(10):
            opt.zero_grad()  # zero task gradient: only decay acts
            opt.step()
        assert abs(param.value[0]) < 4.0

    def test_lr_decay(self):
        from repro.dnn.layers import Parameter

        opt = SgdOptimizer([Parameter(np.zeros(1))], SgdConfig(learning_rate=1.0, lr_decay=0.5))
        opt.decay_lr()
        assert opt.lr == 0.5


class TestTraining:
    def test_training_learns_above_chance(self):
        ds = generate_trail_dataset(
            samples_per_class=60, camera=CameraParams(width=24, height=16), seed=2
        )
        train_set, val_set = ds.split(0.8, seed=0)
        model = TrailNetModel(
            input_shape=(1, 16, 24), stage_blocks=(1,), stage_channels=(8,), seed=0
        )
        result = train(
            model,
            train_set,
            val_set,
            SgdConfig(epochs=8, batch_size=16, learning_rate=0.05, seed=0),
        )
        final = result.final
        assert len(result.history) == 8
        # Meaningfully above the 1/3 chance level.
        assert max(final.angular_accuracy, final.lateral_accuracy) > 0.6
        assert np.isfinite(final.loss)

    def test_loss_decreases(self):
        ds = generate_trail_dataset(
            samples_per_class=20, camera=CameraParams(width=24, height=16), seed=3
        )
        train_set, val_set = ds.split(0.8, seed=0)
        model = TrailNetModel(
            input_shape=(1, 16, 24), stage_blocks=(1,), stage_channels=(6,), seed=0
        )
        result = train(
            model, train_set, val_set, SgdConfig(epochs=3, batch_size=16, seed=0)
        )
        losses = [e.loss for e in result.history]
        assert losses[-1] < losses[0]

    def test_evaluate_uses_eval_mode(self, tiny_dataset):
        model = TrailNetModel(
            input_shape=(1, 16, 24), stage_blocks=(1,), stage_channels=(4,), seed=0
        )
        model.train()
        evaluate(model, tiny_dataset)
        assert not model.backbone.training  # evaluate switched to eval

    def test_empty_history_raises(self):
        from repro.dnn.trainer import TrainResult

        with pytest.raises(ValueError):
            TrainResult().final
