"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.env.camera import CameraParams
from repro.env.simulator import EnvConfig, EnvSimulator
from repro.env.worlds import s_shape_world, tunnel_world


@pytest.fixture(scope="session")
def tunnel():
    return tunnel_world()


@pytest.fixture(scope="session")
def s_shape():
    return s_shape_world()


@pytest.fixture
def small_camera_params():
    """A tiny camera for fast render tests."""
    return CameraParams(width=16, height=12)


@pytest.fixture
def env_sim():
    """A fresh tunnel environment simulator."""
    return EnvSimulator(EnvConfig(world="tunnel"))
