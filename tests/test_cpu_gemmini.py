"""Tests for the CPU and Gemmini cycle models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnn.graph import GraphBuilder, Node, OpType
from repro.errors import ConfigError, SchedulingError
from repro.soc.cpu import boom_core, core_by_name, rocket_core
from repro.soc.gemmini import GemminiModel, default_gemmini


class TestCpuModels:
    def test_boom_is_wider_and_faster(self):
        boom, rocket = boom_core(), rocket_core()
        assert boom.issue_width > rocket.issue_width
        assert boom.elem_op_cycles < rocket.elem_op_cycles
        assert boom.macs_per_cycle > rocket.macs_per_cycle
        assert boom.mmio_access_cycles < rocket.mmio_access_cycles

    def test_kinds(self):
        assert boom_core().kind == "out-of-order"
        assert rocket_core().kind == "in-order"

    def test_core_by_name(self):
        assert core_by_name("boom").name == "boom"
        assert core_by_name("rocket").name == "rocket"
        with pytest.raises(ConfigError):
            core_by_name("alder-lake")

    def test_elementwise_cycles(self):
        boom = boom_core()
        assert boom.elementwise_cycles(100) == 100 * boom.elem_op_cycles

    def test_matmul_cycles_rounds_up(self):
        boom = boom_core()
        assert boom.matmul_cycles(1) >= 1

    def test_copy_cycles(self):
        rocket = rocket_core()
        assert rocket.copy_cycles(100) == 300

    def test_negative_inputs_rejected(self):
        boom = boom_core()
        with pytest.raises(ConfigError):
            boom.elementwise_cycles(-1)
        with pytest.raises(ConfigError):
            boom.matmul_cycles(-1)
        with pytest.raises(ConfigError):
            boom.copy_cycles(-1)

    def test_cycles_to_seconds(self):
        boom = boom_core()
        assert boom.cycles_to_seconds(1e9) == pytest.approx(1.0)


class TestGemminiStructure:
    def test_paper_configuration(self):
        g = default_gemmini()
        assert g.peak_macs_per_cycle == 16  # 4x4 mesh
        assert g.scratchpad.capacity_bytes == 256 * 1024
        assert g.accumulator.capacity_bytes == 64 * 1024

    def test_invalid_mesh(self):
        with pytest.raises(SchedulingError):
            GemminiModel(mesh_rows=0)

    def test_invalid_efficiency(self):
        with pytest.raises(SchedulingError):
            GemminiModel(base_efficiency=1.5)

    def test_efficiency_rises_with_rows(self):
        g = default_gemmini()
        assert g.efficiency(16) < g.efficiency(256) < g.efficiency(4096)
        assert g.efficiency(10**9) == pytest.approx(g.base_efficiency, rel=1e-3)

    def test_efficiency_rejects_zero_rows(self):
        with pytest.raises(SchedulingError):
            default_gemmini().efficiency(0)


class TestGemmCost:
    def test_compute_bound_large_gemm(self):
        g = default_gemmini()
        cost = g.gemm_cost(m=1024, k=576, n=64)
        # 37.7M MACs: compute dominates DMA at this arithmetic intensity.
        assert cost.compute_cycles > cost.dma_cycles
        assert cost.total_cycles == cost.compute_cycles + cost.setup_cycles

    def test_small_m_hurts_compute_efficiency(self):
        g = default_gemmini()
        # Same MAC count; fewer output rows -> worse mesh utilization.
        tall = g.gemm_cost(m=4096, k=64, n=64)
        flat = g.gemm_cost(m=16, k=1024, n=1024)
        assert tall.compute_cycles < flat.compute_cycles

    def test_dma_grows_with_weight_bytes(self):
        g = default_gemmini()
        small = g.gemm_cost(m=256, k=64, n=64)
        large = g.gemm_cost(m=256, k=64, n=1024)
        assert large.dma_cycles > small.dma_cycles

    def test_degenerate_shape_rejected(self):
        with pytest.raises(SchedulingError):
            default_gemmini().gemm_cost(0, 10, 10)

    def test_weight_refetch_penalty(self):
        g = default_gemmini()
        # Same MACs; one layer's weights fit the scratchpad, the other's
        # don't, forcing activation re-streaming.
        small = g.gemm_cost(m=4096, k=128, n=128)  # 64 KiB of weights
        large = g.gemm_cost(m=64, k=1024, n=1024)  # 4 MiB of weights
        assert large.dma_cycles > small.dma_cycles

    @given(st.integers(1, 512), st.integers(1, 512), st.integers(1, 128))
    @settings(max_examples=40, deadline=None)
    def test_cost_positive_and_monotone_in_macs(self, m, k, n):
        g = default_gemmini()
        cost = g.gemm_cost(m, k, n)
        assert cost.compute_cycles >= 1
        bigger = g.gemm_cost(m, k, 2 * n)
        assert bigger.compute_cycles >= cost.compute_cycles


class TestNodeCost:
    def _conv_node(self) -> Node:
        b = GraphBuilder("g", (3, 16, 16))
        name = b.conv(8, 3, padding=1)
        return b.graph.node(name)

    def test_conv_node(self):
        g = default_gemmini()
        cost = g.node_cost(self._conv_node())
        assert cost.total_cycles > 0

    def test_linear_node(self):
        b = GraphBuilder("g", (3, 16, 16))
        b.globalavgpool()
        name = b.linear(10)
        g = default_gemmini()
        assert g.node_cost(b.graph.node(name)).total_cycles > 0

    def test_non_matmul_rejected(self):
        node = Node("r", OpType.RELU, ["input"], (3, 4, 4))
        with pytest.raises(SchedulingError):
            default_gemmini().node_cost(node)

    def test_execute_accounts_busy_cycles(self):
        g = default_gemmini()
        node = self._conv_node()
        cycles = g.execute(node)
        assert g.busy_cycles == cycles
        assert g.ops_executed == 1
        g.reset_counters()
        assert g.busy_cycles == 0
