"""End-to-end tests for the sweep service (deterministic harness).

The service harness runs entirely in-process: a :class:`FakeClock`
drives lease expiry, shard workers are stepped by hand, and the
kill-a-shard scenario uses the worker's ``abort`` fault-injection seam —
no sockets, no real sleeps, no process kills.  The headline assertions
are the serve layer's contract: a sharded, stolen-from, crash-restarted
service run reports **bit-identically** (via :func:`report_signature`)
to a plain serial :class:`SweepRunner` sweep.
"""

from __future__ import annotations

import shutil

import pytest

from repro.core.config import CoSimConfig
from repro.errors import ServeError, SweepError
from repro.serve import (
    FakeClock,
    JobParams,
    SweepService,
    report_signature,
    run_job_to_completion,
)
from repro.sweep import SweepRunner
from repro.sweep.resilience import TaskFailure
from repro.sweep.runner import SweepOutcome, SweepReport

#: Short lease so steal scenarios need only a small clock advance.
LEASE = 30.0


def _tiny_config(seed: int = 0) -> CoSimConfig:
    return CoSimConfig(
        world="tunnel", target_velocity=3.0, max_sim_time=1.0, seed=seed
    )


def _pairs(n: int = 3) -> list[tuple[str, CoSimConfig]]:
    return [(f"seed{s}", _tiny_config(s)) for s in range(n)]


def _params(**overrides) -> JobParams:
    merged = {"shards": 2, "lease_seconds": LEASE, **overrides}
    return JobParams(**merged)


@pytest.fixture(scope="module")
def serial_signature() -> str:
    """The bit-identity target: a plain serial sweep of the same tasks."""
    return report_signature(SweepRunner().run(_pairs()))


@pytest.fixture
def service(tmp_path):
    clock = FakeClock()
    with SweepService(tmp_path / "serve", clock=clock) as svc:
        svc.fake_clock = clock  # test-side convenience handle
        yield svc


def _fail_all(service: SweepService, job_id: str, worker: str = "shard-0"):
    """Hand-complete every task as failed (no missions run)."""
    scheduler = service.scheduler
    while True:
        assignment = scheduler.lease(worker)
        if assignment is None:
            break
        for (name, _config), key in zip(assignment.tasks, assignment.keys):
            scheduler.complete(
                worker, job_id, assignment.claim_id, name, key, "failed", 3,
                failure={"kind": "exception", "message": "boom", "attempt": 3},
            )


# ---------------------------------------------------------------------------
# The headline contract: sharded service == serial runner, bit for bit
# ---------------------------------------------------------------------------
class TestBitIdentity:
    def test_sharded_run_reproduces_serial_report(self, service, serial_signature):
        submitted = service.submit("sweep", _pairs(), _params())
        assert submitted["disposition"] == "submitted"
        status = run_job_to_completion(service, submitted["job"], workers=2)
        assert status["state"] == "done"
        report = service.report(submitted["job"])
        assert report.ok
        assert report_signature(report) == serial_signature
        # Both shards actually executed work.
        assert len(status["owners"]) == 2

    def test_killed_shard_work_is_stolen_and_report_unchanged(
        self, service, serial_signature
    ):
        clock = service.fake_clock
        submitted = service.submit("sweep", _pairs(), _params())
        job_id = submitted["job"]
        # shard-0 leases a slice and dies without reporting a thing.
        dead = service.worker("shard-0", abort=lambda: True)
        assert dead.step()
        # The survivor drains its own share, then idles: the dead
        # shard's slice is still leased.
        survivor = service.worker("shard-1")
        survivor.drain()
        assert service.status(job_id)["state"] == "running"
        # The lease lapses; the next drain steals the orphaned slice.
        clock.advance(LEASE + 1.0)
        assert service.scheduler.tick() == 1
        survivor.drain()
        status = service.status(job_id)
        assert status["state"] == "done"
        assert status["steals"] > 0
        assert set(status["owners"]) == {"shard-1"}
        assert report_signature(service.report(job_id)) == serial_signature
        telemetry = service.telemetry()
        assert telemetry["rose_serve_leases_expired_total"]["series"]
        assert telemetry["rose_serve_tasks_stolen_total"]["series"]

    def test_service_restart_resumes_and_report_unchanged(
        self, tmp_path, serial_signature
    ):
        root = tmp_path / "serve"
        clock = FakeClock()
        with SweepService(root, clock=clock) as first:
            submitted = first.submit("sweep", _pairs(), _params(slice_size=1))
            job_id = submitted["job"]
            worker = first.worker("shard-0")
            worker.drain(max_claims=1)  # one task done, then the crash
            assert first.status(job_id)["state"] == "running"
        # A new service over the same root replays the job store: the
        # completed record survives, the in-flight lease does not.
        with SweepService(root, clock=FakeClock()) as second:
            status = second.status(job_id)
            assert status["state"] == "running"
            assert status["tasks"]["completed"] == 1
            assert status["leases"] == []
            run_job_to_completion(second, job_id, workers=2)
            report = second.report(job_id)
            assert report_signature(report) == serial_signature
            # The pre-crash task resolves from the shared artifact cache.
            assert report.outcomes[0].owner == "shard-0"


# ---------------------------------------------------------------------------
# Control plane semantics
# ---------------------------------------------------------------------------
class TestControlPlane:
    def test_resubmission_deduplicates(self, service):
        first = service.submit("sweep", _pairs(), _params())
        again = service.submit("sweep", _pairs(), _params())
        assert again["disposition"] == "deduplicated"
        assert again["job"] == first["job"]
        run_job_to_completion(service, first["job"])
        done = service.submit("sweep", _pairs(), _params())
        assert done["disposition"] == "deduplicated"  # done jobs stay done
        assert done["state"] == "done"

    def test_cancel_then_resubmit_requeues(self, service):
        submitted = service.submit("sweep", _pairs(), _params())
        job_id = submitted["job"]
        cancelled = service.cancel(job_id)
        assert cancelled["cancelled"] and cancelled["state"] == "cancelled"
        with pytest.raises(ServeError) as excinfo:
            service.report(job_id)
        assert excinfo.value.status == 409
        requeued = service.submit("sweep", _pairs(), _params())
        assert requeued["disposition"] == "requeued"
        assert run_job_to_completion(service, job_id)["state"] == "done"

    def test_report_on_live_job_is_409(self, service):
        submitted = service.submit("sweep", _pairs(), _params())
        with pytest.raises(ServeError) as excinfo:
            service.report(submitted["job"])
        assert excinfo.value.status == 409

    def test_report_on_pruned_cache_is_502(self, service):
        submitted = service.submit("sweep", _pairs(), _params())
        run_job_to_completion(service, submitted["job"])
        shutil.rmtree(service.cache.root)
        with pytest.raises(ServeError) as excinfo:
            service.report(submitted["job"])
        assert excinfo.value.status == 502

    def test_job_telemetry_streams_partial_progress(self, service):
        submitted = service.submit("sweep", _pairs(), _params(slice_size=1))
        job_id = submitted["job"]
        service.worker("shard-0").drain(max_claims=1)
        partial = service.job_telemetry(job_id)
        assert partial["state"] == "running"
        assert partial["completed"] == 1 and partial["total"] == 3
        assert partial["mission_metrics"]  # one mission's metrics merged
        run_job_to_completion(service, job_id)
        assert service.job_telemetry(job_id)["completed"] == 3

    def test_wait_returns_terminal_status_under_fake_clock(self, service):
        submitted = service.submit("sweep", _pairs(), _params())
        job_id = submitted["job"]
        with pytest.raises(ServeError) as excinfo:
            service.wait(job_id, timeout=2.0)  # fake clock: no real delay
        assert excinfo.value.status == 409
        run_job_to_completion(service, job_id)
        assert service.wait(job_id)["state"] == "done"

    def test_failed_job_report_carries_failures_and_owners(self, service):
        submitted = service.submit("sweep", _pairs(), _params())
        job_id = submitted["job"]
        _fail_all(service, job_id, worker="shard-0")
        status = service.status(job_id)
        assert status["state"] == "failed"
        report = service.report(job_id)
        assert not report.ok
        assert all(o.owner == "shard-0" for o in report.outcomes)
        assert all(
            isinstance(o.failure, TaskFailure) for o in report.failures()
        )
        with pytest.raises(SweepError, match=r"\[owner shard-0\]"):
            report.results()


# ---------------------------------------------------------------------------
# Owner attribution in SweepReport.results() (regression)
# ---------------------------------------------------------------------------
class TestOwnerAttribution:
    @staticmethod
    def _report(owner: str | None) -> SweepReport:
        outcome = SweepOutcome(
            name="seed0",
            config=_tiny_config(),
            result=None,
            wall_seconds=0.0,
            from_cache=False,
            state="failed",
            attempts=3,
            failure=TaskFailure(kind="exception", message="boom", attempt=3),
            owner=owner,
        )
        return SweepReport(
            outcomes=[outcome], wall_seconds=0.0, workers=1, fingerprint="fp"
        )

    def test_failure_summary_names_the_owning_shard(self):
        with pytest.raises(SweepError, match=r"seed0: failed \[owner shard-3\]"):
            self._report("shard-3").results()

    def test_anonymous_runs_omit_owner_clause(self):
        with pytest.raises(SweepError) as excinfo:
            self._report(None).results()
        assert "[owner" not in str(excinfo.value)

    def test_runner_stamps_owner_on_outcomes(self, tmp_path):
        report = SweepRunner(owner="shard-7").run(_pairs(1))
        assert [o.owner for o in report.outcomes] == ["shard-7"]
