"""Tests for SyncConfig (Equation 1), CoSimConfig, CSV logging, deploy."""

from __future__ import annotations

import pytest

from repro.core.config import CoSimConfig, SyncConfig
from repro.core.csvlog import SyncLogger, SyncLogRow
from repro.core.deploy import CLOUD_AWS, DEPLOYMENTS, ON_PREMISE, deployment
from repro.errors import ConfigError


class TestSyncConfig:
    def test_equation_1_default(self):
        # 10M cycles at 1 GHz, 100 Hz frames -> 1 frame per sync
        # (Figure 16's finest granularity).
        sync = SyncConfig(cycles_per_sync=10_000_000)
        assert sync.frames_per_sync == 1
        assert sync.sync_period_seconds == pytest.approx(0.01)

    def test_equation_1_coarse(self):
        sync = SyncConfig(cycles_per_sync=400_000_000)
        assert sync.frames_per_sync == 40  # Figure 16's coarsest point

    def test_figure6_configuration(self):
        # "modeling a 1GHz SoC and updating AirSim 60 frames per simulated
        # second, synchronization occurs every 16 million cycles"
        sync = SyncConfig(cycles_per_sync=16_666_667, frame_rate_hz=60.0)
        assert sync.frames_per_sync == 1

    def test_cycles_per_frame(self):
        sync = SyncConfig(cycles_per_sync=100_000_000)
        assert sync.cycles_per_frame == pytest.approx(10_000_000)

    def test_sub_frame_period_rejected(self):
        with pytest.raises(ConfigError):
            SyncConfig(cycles_per_sync=1_000_000)  # 1 ms < one 100 Hz frame

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigError):
            SyncConfig(cycles_per_sync=0)
        with pytest.raises(ConfigError):
            SyncConfig(frame_rate_hz=0.0)

    def test_describe(self):
        assert "10M cycles" in SyncConfig().describe()


class TestCoSimConfig:
    def test_defaults(self):
        config = CoSimConfig()
        assert config.world == "tunnel"
        assert config.soc == "A"
        assert config.model == "resnet14"

    def test_env_config_derived(self):
        config = CoSimConfig(world="s-shape", initial_angle_deg=20.0, seed=3)
        env = config.env_config()
        assert env.world == "s-shape"
        assert env.initial_angle_deg == 20.0
        assert env.seed == 3
        assert env.frame_rate == config.sync.frame_rate_hz

    def test_invalid_velocity(self):
        with pytest.raises(ConfigError):
            CoSimConfig(target_velocity=0.0)

    def test_invalid_sim_time(self):
        with pytest.raises(ConfigError):
            CoSimConfig(max_sim_time=-1.0)


def sample_row(step=0):
    return SyncLogRow(
        step=step,
        sim_time=step * 0.01,
        x=1.0,
        y=0.5,
        z=1.5,
        yaw=0.1,
        speed=3.0,
        course_s=1.0,
        course_d=0.5,
        collisions=0,
        camera_requests=2,
        imu_requests=0,
        depth_requests=1,
        target_v_forward=3.0,
        target_v_lateral=0.2,
        target_yaw_rate=-0.1,
    )


class TestCsvLogger:
    def test_log_and_len(self):
        logger = SyncLogger()
        logger.log(sample_row())
        assert len(logger) == 1

    def test_csv_header(self):
        logger = SyncLogger()
        text = logger.to_csv()
        assert text.splitlines()[0].startswith("step,sim_time,x,y,z,yaw")

    def test_round_trip_via_file(self, tmp_path):
        logger = SyncLogger()
        for step in range(5):
            logger.log(sample_row(step))
        path = tmp_path / "log.csv"
        logger.write(str(path))
        loaded = SyncLogger.read(str(path))
        assert len(loaded) == 5
        assert loaded.rows[3] == logger.rows[3]

    def test_fields_cover_artifact_columns(self):
        # "CSV logs from the synchronizer, tracking UAV dynamics, sensing
        # requests, and control targets".
        fields = set(SyncLogRow.FIELDS)
        assert {"x", "y", "yaw", "speed"} <= fields  # dynamics
        assert {"camera_requests", "imu_requests", "depth_requests"} <= fields
        assert {"target_v_forward", "target_yaw_rate"} <= fields


class TestDeployments:
    def test_table4_machines(self):
        assert ON_PREMISE.airsim.gpu == "GeForce GTX TITAN X"
        assert ON_PREMISE.firesim.fpga == "Xilinx U250"
        assert CLOUD_AWS.airsim.instance == "g4dn.2xlarge"
        assert CLOUD_AWS.firesim.instance == "f1.2xlarge"
        assert CLOUD_AWS.firesim.fpga == "Xilinx VU9P"

    def test_lookup(self):
        assert deployment("on-premise") is ON_PREMISE
        with pytest.raises(KeyError):
            deployment("mars-datacenter")

    def test_table_rows_layout(self):
        rows = ON_PREMISE.table_rows()
        fields = [r[0] for r in rows]
        assert fields == ["Instance", "CPU", "Frequency", "GPU", "FPGA", "OS"]
        gpu_row = dict((r[0], (r[1], r[2])) for r in rows)["GPU"]
        assert gpu_row == ("GeForce GTX TITAN X", "N/A")

    def test_cloud_has_higher_overhead(self):
        assert CLOUD_AWS.perf.sync_overhead_s > ON_PREMISE.perf.sync_overhead_s

    def test_registry_complete(self):
        assert set(DEPLOYMENTS) == {"on-premise", "cloud-aws"}
