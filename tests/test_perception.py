"""Tests for the perception stage (behavioural and CNN-backed)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.app.perception import BehavioralPerception, CnnPerception
from repro.core import packets as pk
from repro.dnn.calibrated import classifier_profile
from repro.dnn.resnet import TrailNetModel
from repro.errors import ConfigError


def camera_packet(heading_error=0.0, lateral_offset=0.0, half_width=1.6, h=32, w=48, ts=1.0):
    return pk.camera_response(
        h, w, ts, heading_error, lateral_offset, half_width, bytes(h * w)
    )


class TestBehavioralPerception:
    def test_uses_packet_metadata(self):
        perception = BehavioralPerception(classifier_profile("resnet34"), seed=0)
        packet = camera_packet(heading_error=math.radians(30), lateral_offset=-1.2)
        result = perception.infer_packet(packet)
        assert result.angular_pred == 0  # LEFT
        assert result.lateral_pred == 2  # RIGHT

    def test_rejects_non_camera_packet(self):
        perception = BehavioralPerception(classifier_profile("resnet14"), seed=0)
        with pytest.raises(ConfigError):
            perception.infer_packet(pk.depth_response(1.0))

    def test_timestamp_drives_correlation(self):
        perception = BehavioralPerception(classifier_profile("resnet6"), seed=1)
        a = perception.infer_packet(camera_packet(ts=1.0))
        b = perception.infer_packet(camera_packet(ts=1.001))
        np.testing.assert_allclose(a.angular_probs, b.angular_probs, atol=0.05)


class TestCnnPerception:
    @pytest.fixture(scope="class")
    def model(self):
        return TrailNetModel(
            input_shape=(1, 32, 48), stage_blocks=(1,), stage_channels=(4,), seed=0
        )

    def test_consumes_pixels(self, model):
        perception = CnnPerception(model)
        result = perception.infer_packet(camera_packet())
        assert result.angular_probs.shape == (3,)
        assert result.angular_probs.sum() == pytest.approx(1.0, rel=1e-5)
        assert 0 <= result.angular_pred <= 2

    def test_eval_mode_forced(self, model):
        model.train()
        CnnPerception(model)
        assert not model.backbone.training

    def test_deterministic_per_image(self, model):
        perception = CnnPerception(model)
        a = perception.infer_packet(camera_packet())
        b = perception.infer_packet(camera_packet())
        np.testing.assert_array_equal(a.angular_probs, b.angular_probs)

    def test_rejects_non_camera_packet(self, model):
        with pytest.raises(ConfigError):
            CnnPerception(model).infer_packet(pk.imu_response(0, 0, 0, 0, 0))
