"""Tests for the roslite middleware and the trail node pipeline."""

from __future__ import annotations

import pytest

from repro import CoSimConfig
from repro.core.cosim import CoSimulation
from repro.errors import ConfigError
from repro.roslite.graph import (
    PUBLISH_OVERHEAD_CYCLES,
    Rate,
    RosGraph,
)
from repro.roslite.msgs import Header, Image, Imu, LaserScan, Twist
from repro.soc.cpu import boom_core
from repro.soc.soc import CONFIG_A, Soc


class TestMessages:
    def test_byte_sizes_scale_with_payload(self):
        small = Image(Header(), 4, 4, bytes(16))
        large = Image(Header(), 32, 48, bytes(32 * 48))
        assert large.byte_size() > small.byte_size()
        assert small.byte_size() > 16

    def test_all_messages_report_sizes(self):
        header = Header(stamp_cycle=5, frame_id="x")
        for msg in (
            Imu(header, (0.0, 0.0, 9.8), 0.1),
            LaserScan(header, 4.7, bytes(64 * 4)),
            Twist(header, 1.0, 0.0, 1.5, 0.1),
        ):
            assert msg.byte_size() > header.byte_size()


class TestGraphTopology:
    def test_topic_names_validated(self):
        graph = RosGraph(boom_core())
        with pytest.raises(ConfigError):
            graph.advertise("no-slash")

    def test_queue_size_validated(self):
        graph = RosGraph(boom_core())
        with pytest.raises(ConfigError):
            graph.subscribe("/t", queue_size=0)

    def test_topics_registry(self):
        graph = RosGraph(boom_core())
        graph.advertise("/b")
        graph.subscribe("/a")
        assert graph.topics == ["/a", "/b"]

    def test_rate_validated(self):
        with pytest.raises(ConfigError):
            Rate(0.0, boom_core())


def run_tasks(*factories, budget=10_000_000):
    soc = Soc(CONFIG_A)
    soc.load_program(factories[0], name="t0")
    for i, factory in enumerate(factories[1:], start=1):
        soc.add_program(factory, name=f"t{i}")
    soc.step(budget)
    return soc


class TestPubSub:
    def test_message_delivery_between_tasks(self):
        graph = RosGraph(boom_core())
        received = []

        def talker(rt):
            publisher = graph.advertise("/chat")
            for i in range(3):
                yield from publisher.publish(rt, Twist(Header(stamp_cycle=i), linear_x=i))
                yield from rt.delay(100_000)

        def listener(rt):
            subscriber = graph.subscribe("/chat", queue_size=8)
            while len(received) < 3:
                msg = yield from subscriber.receive(rt)
                received.append(msg.linear_x)

        run_tasks(talker, listener)
        assert received == [0, 1, 2]

    def test_queue_overflow_drops_oldest(self):
        graph = RosGraph(boom_core())
        got = []

        def talker(rt):
            publisher = graph.advertise("/burst")
            for i in range(5):
                yield from publisher.publish(rt, Twist(Header(stamp_cycle=i), linear_x=i))
            # Only now let the listener drain.
            yield from rt.delay(1_000_000)

        def listener(rt):
            subscriber = graph.subscribe("/burst", queue_size=2)
            yield from rt.delay(500_000)  # arrive late
            while True:
                msg = yield from subscriber.receive(rt, timeout_cycles=200_000)
                if msg is None:
                    return
                got.append(msg.linear_x)

        run_tasks(talker, listener)
        assert got == [3, 4]  # oldest three dropped

    def test_drop_stats_counted(self):
        graph = RosGraph(boom_core())

        def talker(rt):
            publisher = graph.advertise("/burst")
            for i in range(4):
                yield from publisher.publish(rt, Twist(Header(), linear_x=i))

        def idle_listener(rt):
            graph.subscribe("/burst", queue_size=1)
            yield from rt.delay(50_000_000)

        run_tasks(talker, idle_listener)
        stats = graph.topic_stats("/burst")
        assert stats.published == 4
        assert stats.dropped == 3

    def test_publish_without_subscribers_is_fine(self):
        graph = RosGraph(boom_core())

        def talker(rt):
            publisher = graph.advertise("/void")
            yield from publisher.publish(rt, Twist(Header()))

        run_tasks(talker)
        assert graph.topic_stats("/void").published == 1
        assert graph.topic_stats("/void").delivered == 0

    def test_fanout_to_multiple_subscribers(self):
        graph = RosGraph(boom_core())
        counts = {"a": 0, "b": 0}

        def talker(rt):
            publisher = graph.advertise("/fan")
            yield from publisher.publish(rt, Twist(Header()))

        def listener(tag):
            def node(rt):
                subscriber = graph.subscribe("/fan")
                msg = yield from subscriber.receive(rt, timeout_cycles=5_000_000)
                if msg is not None:
                    counts[tag] += 1

            return node

        run_tasks(listener("a"), listener("b"), talker)
        assert counts == {"a": 1, "b": 1}

    def test_publish_cost_scales_with_size(self):
        """Publishing a camera frame costs more cycles than a Twist."""
        graph = RosGraph(boom_core())
        graph.subscribe("/t")

        def publish_and_measure(message, out):
            def node(rt):
                publisher = graph.advertise("/t")
                start = yield from rt.current_cycle()
                yield from publisher.publish(rt, message)
                end = yield from rt.current_cycle()
                out.append(end - start)

            return node

        small_cost, big_cost = [], []
        run_tasks(publish_and_measure(Twist(Header()), small_cost))
        run_tasks(publish_and_measure(Image(Header(), 32, 48, bytes(32 * 48)), big_cost))
        assert big_cost[0] > small_cost[0] + 1000
        assert small_cost[0] >= PUBLISH_OVERHEAD_CYCLES

    def test_latest_drains_queue(self):
        graph = RosGraph(boom_core())
        seen = []

        def talker(rt):
            publisher = graph.advertise("/s")
            for i in range(4):
                yield from publisher.publish(rt, Twist(Header(), linear_x=i))

        def sampler(rt):
            subscriber = graph.subscribe("/s", queue_size=8)
            yield from rt.delay(1_000_000)
            msg = yield from subscriber.latest(rt)
            seen.append(msg.linear_x)
            assert subscriber.pending == 0

        run_tasks(talker, sampler)
        assert seen == [3]


class TestRate:
    def test_paces_a_loop(self):
        ticks = []

        def node(rt):
            rate = Rate(1000.0, boom_core())  # 1 kHz -> 1M cycles period
            for _ in range(3):
                now = yield from rt.current_cycle()
                ticks.append(now)
                yield from rate.sleep(rt)

        run_tasks(node)
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        for gap in gaps:
            assert gap == pytest.approx(1_000_000, rel=0.01)


class TestTrailNodePipeline:
    @pytest.fixture(scope="class")
    def mission(self):
        config = CoSimConfig(
            world="tunnel",
            controller="ros",
            model="resnet14",
            target_velocity=3.0,
            initial_angle_deg=20.0,
            max_sim_time=40.0,
        )
        cosim = CoSimulation(config)
        result = cosim.run()
        return cosim, result

    def test_pipeline_completes_mission(self, mission):
        _, result = mission
        assert result.completed
        assert result.collisions == 0

    def test_three_node_tasks_loaded(self, mission):
        cosim, _ = mission
        names = [task.name for task in cosim.soc.tasks]
        assert names == ["camera-driver", "perception-control", "actuation"]

    def test_messages_flowed(self, mission):
        cosim, result = mission
        graph = cosim.ros_pipeline.graph
        images = graph.topic_stats("/camera/image")
        commands = graph.topic_stats("/cmd_vel")
        assert images.published > 100
        assert commands.published > 100
        # The perception node is the bottleneck: some frames drop on its
        # queue_size=1 subscription (sample-latest behaviour).
        assert images.dropped >= 0
        assert commands.published <= images.published

    def test_end_to_end_latency_exceeds_monolithic(self, mission):
        """Node hops + queues add latency over the monolithic app."""
        _, result = mission
        assert result.mean_inference_latency_ms > 110  # monolithic: ~100 ms
        assert result.mean_inference_latency_ms < 400
