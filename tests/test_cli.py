"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.config import CoSimConfig
from repro.core.manifest import dump_manifest


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fly_defaults(self):
        args = build_parser().parse_args(["fly"])
        assert args.world == "tunnel"
        assert args.soc == "A"
        assert args.velocity == 3.0

    def test_fly_flags(self):
        args = build_parser().parse_args(
            ["fly", "--world", "s-shape", "--soc", "B", "--velocity", "9",
             "--dynamic", "--cycles-per-sync", "50000000"]
        )
        assert args.world == "s-shape"
        assert args.dynamic
        assert args.cycles_per_sync == 50_000_000


class TestFlyCommand:
    def test_complete_mission_exit_zero(self, capsys, tmp_path):
        csv_path = tmp_path / "log.csv"
        trace_path = tmp_path / "trace.json"
        code = main([
            "fly", "--model", "resnet14", "--velocity", "3", "--angle", "0",
            "--max-sim-time", "30", "--plot",
            "--csv", str(csv_path), "--trace", str(trace_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert "#" in out  # trajectory plot walls
        assert csv_path.read_text().startswith("step,")
        assert json.loads(trace_path.read_text())["traceEvents"]

    def test_incomplete_mission_exit_one(self, capsys):
        code = main(["fly", "--max-sim-time", "2"])
        assert code == 1
        assert "DNF" in capsys.readouterr().out

    def test_invalid_flag_combination_raises(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["fly", "--controller", "mpc", "--dynamic", "--max-sim-time", "2"])


class TestRunCommand:
    def test_manifest_run(self, capsys, tmp_path):
        manifest = tmp_path / "exp.json"
        manifest.write_text(
            dump_manifest(
                {
                    "quick": CoSimConfig(
                        world="tunnel", model="resnet14", target_velocity=3.0,
                        max_sim_time=30.0,
                    )
                }
            )
        )
        code = main(["run", str(manifest)])
        assert code == 0
        out = capsys.readouterr().out
        assert "[quick]" in out
        assert "completed" in out

    def test_manifest_with_failure_exit_one(self, capsys, tmp_path):
        manifest = tmp_path / "exp.json"
        manifest.write_text(
            dump_manifest(
                {"short": CoSimConfig(world="tunnel", max_sim_time=2.0)}
            )
        )
        assert main(["run", str(manifest)]) == 1


class TestSweepCommand:
    @pytest.fixture
    def manifest(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(
            dump_manifest(
                {
                    f"seed{s}": CoSimConfig(
                        world="tunnel", target_velocity=3.0,
                        max_sim_time=30.0, seed=s,
                    )
                    for s in range(2)
                }
            )
        )
        return str(path)

    def test_chaos_plan_json_parse_error_exits_two(self, manifest, tmp_path,
                                                   capsys):
        plan = tmp_path / "chaos.json"
        plan.write_text("{not valid json")
        code = main([
            "sweep", manifest, "--no-cache", "--chaos", str(plan),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_chaos_plan_bad_shape_exits_two(self, manifest, tmp_path, capsys):
        plan = tmp_path / "chaos.json"
        plan.write_text(json.dumps({"fail_rate": "not-a-number"}))
        assert main([
            "sweep", manifest, "--no-cache", "--chaos", str(plan),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_resume_requires_a_journal(self, manifest, capsys):
        assert main(["sweep", manifest, "--no-cache", "--resume"]) == 2
        assert "--resume needs a journal" in capsys.readouterr().out

    def test_resume_with_batch_replays_from_cache(self, manifest, tmp_path,
                                                  capsys):
        cache_dir = str(tmp_path / "cache")
        assert main([
            "sweep", manifest, "--cache-dir", cache_dir, "--batch", "2",
        ]) == 0
        first = capsys.readouterr().out
        assert "batched:" in first
        assert "journal:" in first
        # Resuming the same sweep with batching on: every mission is
        # journal-replayed/cache-resolved, none re-executed.
        assert main([
            "sweep", manifest, "--cache-dir", cache_dir, "--batch", "2",
            "--resume",
        ]) == 0
        second = capsys.readouterr().out
        assert "(cache)" in second
        assert "2 hit(s)" in second


class TestTable3Command:
    def test_prints_all_models(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        for model in ("resnet6", "resnet11", "resnet14", "resnet18", "resnet34"):
            assert model in out


class TestVerifyCommand:
    def test_list_shows_missions_and_oracles(self, capsys):
        assert main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        assert "golden missions:" in out
        assert "tunnel-dnn-r14-socA" in out
        assert "differential oracles:" in out
        assert "im2col-col2im" in out

    def test_record_then_check_round_trip(self, capsys, tmp_path):
        golden = tmp_path / "golden"
        assert main([
            "verify", "--record", "--golden-dir", str(golden),
            "--mission", "tunnel-dnn-r6-socB",
        ]) == 0
        capsys.readouterr()
        assert main([
            "verify", "--check", "--golden-dir", str(golden),
            "--mission", "tunnel-dnn-r6-socB",
        ]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out
        assert "1/1 golden mission(s) conform" in out

    def test_check_missing_corpus_exits_one(self, capsys, tmp_path):
        assert main([
            "verify", "--check", "--golden-dir", str(tmp_path / "nowhere"),
            "--mission", "tunnel-dnn-r6-socB",
        ]) == 1
        assert "[MISSING]" in capsys.readouterr().out

    def test_oracle_filter_runs_single_oracle(self, capsys):
        assert main(["verify", "--oracles", "--oracle", "im2col-col2im"]) == 0
        out = capsys.readouterr().out
        assert "1/1 differential oracle(s) agree" in out
