"""Tests for the Ackermann car vehicle mode."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import CoSimConfig, run_mission
from repro.env.car import CarCommand, CarController, CarDynamics, CarParams
from repro.env.flightctl import VelocityTarget
from repro.env.physics import DroneState
from repro.env.simulator import EnvConfig, EnvSimulator
from repro.env.worlds import tunnel_world
from repro.errors import SimulationError

DT = 1.0 / 60.0


@pytest.fixture
def road():
    return tunnel_world(length=300.0, width=30.0)


@pytest.fixture
def car(road):
    return CarDynamics(road, initial_state=DroneState(x=5.0, y=0.0))


def drive(car, command, seconds):
    for _ in range(int(seconds / DT)):
        car.step(command, DT)


class TestCarDynamics:
    def test_param_validation(self):
        with pytest.raises(SimulationError):
            CarParams(wheelbase=0.0)
        with pytest.raises(SimulationError):
            CarParams(max_steer=0.0)

    def test_accelerates_forward(self, car):
        drive(car, CarCommand(accel=3.0), 2.0)
        assert car.state.u > 3.0
        assert car.state.x > 8.0
        assert car.state.v == 0.0  # no sideslip

    def test_cannot_reverse(self, car):
        drive(car, CarCommand(accel=-5.0), 1.0)
        assert car.state.u == 0.0

    def test_speed_capped(self, road):
        car = CarDynamics(road, CarParams(max_speed=10.0), DroneState(x=5.0))
        drive(car, CarCommand(accel=4.0), 30.0)
        assert car.state.u <= 10.0 + 1e-9

    def test_steering_turns_when_moving(self, car):
        drive(car, CarCommand(accel=3.0), 1.0)
        drive(car, CarCommand(accel=0.0, steer_rate=1.0), 1.5)
        assert abs(car.state.yaw) > 0.1
        assert car.steering_angle > 0.0

    def test_no_turn_when_stationary(self, car):
        drive(car, CarCommand(steer_rate=1.0), 1.0)
        assert car.state.yaw == pytest.approx(0.0)
        assert car.state.r == 0.0

    def test_steering_angle_clipped(self, car):
        drive(car, CarCommand(steer_rate=10.0), 5.0)
        assert car.steering_angle <= car.params.max_steer + 1e-9

    def test_bicycle_yaw_rate(self, road):
        car = CarDynamics(road, initial_state=DroneState(x=5.0, u=6.0))
        car.steering_angle = 0.2
        car.step(CarCommand(), DT)
        expected = car.state.u * math.tan(car.steering_angle) / car.params.wheelbase
        assert car.state.r == pytest.approx(expected, rel=0.05)

    def test_turn_radius_matches_kinematics(self):
        """Driving a full circle returns near the start."""
        open_field = tunnel_world(length=300.0, width=100.0)
        car = CarDynamics(open_field, initial_state=DroneState(x=150.0, y=0.0, u=5.0))
        car.steering_angle = 0.3
        radius = car.params.wheelbase / math.tan(0.3)
        circumference = 2 * math.pi * radius
        start = (car.state.x, car.state.y)
        steps = int(circumference / 5.0 / DT)
        for _ in range(steps):
            car.step(CarCommand(accel=car.params.drag * 5.0), DT)
        # Euler integration + drag leave a few meters of closure error on
        # a ~100 m circumference; the path must still close approximately.
        assert car.state.x == pytest.approx(start[0], abs=8.0)
        assert car.state.y == pytest.approx(start[1], abs=8.0)

    def test_collision_and_recovery(self):
        world = tunnel_world(length=20.0, width=4.0)
        car = CarDynamics(world, initial_state=DroneState(x=3.0, u=8.0))
        drive(car, CarCommand(accel=4.0), 4.0)
        assert car.collisions  # hit the end cap
        assert car.state.u < 1.0

    def test_reset(self, car):
        drive(car, CarCommand(accel=3.0, steer_rate=0.5), 2.0)
        car.reset(DroneState(x=5.0))
        assert car.state.u == 0.0
        assert car.steering_angle == 0.0
        assert car.collisions == []


class TestCarController:
    def test_unarmed_idle(self, car):
        ctl = CarController()
        cmd = ctl.update(car, DT)
        assert (cmd.accel, cmd.steer_rate) == (0.0, 0.0)

    def test_tracks_speed(self, road):
        car = CarDynamics(road, initial_state=DroneState(x=5.0))
        ctl = CarController()
        ctl.arm()
        ctl.set_target(VelocityTarget(v_forward=8.0))
        for _ in range(int(10.0 / DT)):
            car.step(ctl.update(car, DT), DT)
        assert car.state.u == pytest.approx(8.0, abs=1.0)

    def test_tracks_yaw_rate(self, road):
        car = CarDynamics(road, initial_state=DroneState(x=50.0, u=6.0))
        ctl = CarController()
        ctl.arm()
        ctl.set_target(VelocityTarget(v_forward=6.0, yaw_rate=0.3))
        for _ in range(int(4.0 / DT)):
            car.step(ctl.update(car, DT), DT)
        assert car.state.r == pytest.approx(0.3, abs=0.1)

    def test_lateral_target_folds_into_steering(self, road):
        car = CarDynamics(road, initial_state=DroneState(x=50.0, u=6.0))
        ctl = CarController()
        ctl.arm()
        ctl.set_target(VelocityTarget(v_forward=6.0, v_lateral=2.0))
        for _ in range(int(3.0 / DT)):
            car.step(ctl.update(car, DT), DT)
        assert car.state.y > 0.5  # drifted left via steering

    def test_reset(self):
        ctl = CarController()
        ctl.arm()
        ctl.set_target(VelocityTarget(v_forward=5.0))
        ctl.reset()
        assert not ctl.armed
        assert ctl.targets_received == 0


class TestCarSimulator:
    def test_env_config_validation(self):
        with pytest.raises(SimulationError):
            EnvConfig(vehicle="boat")

    def test_car_simulator_drives(self):
        sim = EnvSimulator(EnvConfig(world="tunnel", vehicle="car"))
        sim.takeoff()
        sim.send_velocity_target(VelocityTarget(v_forward=3.0))
        sim.continue_for_frames(60 * 5)
        assert sim.get_state().x > 8.0
        assert sim.collision_count == 0

    def test_car_spawns_clear_of_cap(self):
        sim = EnvSimulator(EnvConfig(world="tunnel", vehicle="car"))
        clearance = sim.world.wall_clearance(sim.position)
        assert clearance > sim.dynamics.params.collision_radius

    def test_car_closed_loop_mpc_mission(self):
        config = CoSimConfig(
            world="s-shape",
            vehicle="car",
            controller="mpc",
            target_velocity=8.0,
            max_sim_time=40.0,
        )
        result = run_mission(config)
        assert result.completed
        assert result.collisions == 0

    def test_car_closed_loop_dnn_on_road(self):
        config = CoSimConfig(
            world="s-shape",
            vehicle="car",
            controller="dnn",
            model="resnet14",
            target_velocity=6.0,
            max_sim_time=45.0,
            world_params={"width": 12.0, "amplitude": 6.0},
        )
        result = run_mission(config)
        assert result.completed
        assert result.collisions == 0
