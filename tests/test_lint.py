"""Tests for the repro.analysis.lint static-analysis framework.

Fixture trees replicate the real layout — a ``repro/...`` package under a
scanned source root — so path-scoped rules behave exactly as they do on
the shipped tree.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Baseline,
    LintEngine,
    all_rules,
    baseline_path_for,
    get_rule,
)
from repro.cli import main
from repro.errors import ConfigError


def make_tree(root: Path, files: dict[str, str]) -> Path:
    """Write ``files`` (repo-relative paths -> source) under ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def run_lint(root: Path, rules: list[str] | None = None, baseline: Baseline | None = None):
    selected = [get_rule(r) for r in rules] if rules else None
    return LintEngine(root, rules=selected, baseline=baseline).run()


def active_rules(report) -> list[str]:
    return [d.rule for d in report.active]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_all_families_registered(self):
        families = {r.family for r in all_rules().values()}
        assert {
            "DET", "NUM", "PROTO", "CFG", "OBS", "RES", "PERF", "SCN", "SRV",
        } <= families

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError):
            get_rule("NOPE999")

    def test_rule_scoping(self):
        det002 = get_rule("DET002")
        assert det002.applies_to("repro/core/synchronizer.py")
        assert not det002.applies_to("repro/app/controller.py")
        assert not det002.applies_to("repro/core/timing.py")  # excluded


# ---------------------------------------------------------------------------
# DET: determinism rules
# ---------------------------------------------------------------------------
class TestDet001GlobalRng:
    def test_flags_global_stream_calls(self, tmp_path):
        make_tree(tmp_path, {
            "repro/env/noise.py": """
                import random
                import numpy as np

                def jitter():
                    return random.random() + np.random.rand()
            """,
        })
        report = run_lint(tmp_path, rules=["DET001"])
        assert active_rules(report) == ["DET001", "DET001"]

    def test_flags_seeding_outside_blessed_site(self, tmp_path):
        make_tree(tmp_path, {
            "repro/env/setup.py": """
                import random

                def prep():
                    random.seed(0)
            """,
        })
        report = run_lint(tmp_path, rules=["DET001"])
        assert active_rules(report) == ["DET001"]
        assert "blessed" in report.active[0].message

    def test_blessed_site_may_seed(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/runner.py": """
                import random
                import numpy as np

                def _seed_worker(seed):
                    random.seed(seed)
                    np.random.seed(seed)
            """,
        })
        assert run_lint(tmp_path, rules=["DET001"]).active == []

    def test_instance_rngs_are_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/env/ok.py": """
                import random
                import numpy as np

                def draw(seed):
                    rng = np.random.default_rng(seed)
                    local = random.Random(seed)
                    return rng.normal() + local.random()
            """,
        })
        assert run_lint(tmp_path, rules=["DET001"]).active == []


class TestDet002WallClock:
    def test_flags_wall_clock_in_scope(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                import time

                def stamp():
                    return time.time()
            """,
        })
        report = run_lint(tmp_path, rules=["DET002"])
        assert active_rules(report) == ["DET002"]

    def test_resolves_from_import_alias(self, tmp_path):
        make_tree(tmp_path, {
            "repro/soc/clock.py": """
                from time import perf_counter as tick

                def now():
                    return tick()
            """,
        })
        assert active_rules(run_lint(tmp_path, rules=["DET002"])) == ["DET002"]

    def test_out_of_scope_path_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/app/bench.py": """
                import time

                def stamp():
                    return time.time()
            """,
        })
        assert run_lint(tmp_path, rules=["DET002"]).active == []

    def test_timing_module_is_the_blessed_exception(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/timing.py": """
                from time import perf_counter

                def wall_clock():
                    return perf_counter()
            """,
        })
        assert run_lint(tmp_path, rules=["DET002"]).active == []


class TestDet003SetIteration:
    def test_flags_set_literal_and_set_call(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/order.py": """
                def names(raw):
                    out = []
                    for item in {"b", "a"}:
                        out.append(item)
                    return [x for x in set(raw)] + out
            """,
        })
        assert active_rules(run_lint(tmp_path, rules=["DET003"])) == ["DET003", "DET003"]

    def test_sorted_set_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/order.py": """
                def names(raw):
                    return [x for x in sorted(set(raw))]
            """,
        })
        assert run_lint(tmp_path, rules=["DET003"]).active == []


class TestDet004DigestOrder:
    def test_flags_unsorted_dumps_in_digest_file(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/signature.py": """
                import json

                def payload(data):
                    return json.dumps(data)
            """,
        })
        assert active_rules(run_lint(tmp_path, rules=["DET004"])) == ["DET004"]

    def test_flags_dict_view_iteration_in_hashing_function(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/fingerprint.py": """
                import hashlib

                def digest(data):
                    h = hashlib.sha256()
                    for key, value in data.items():
                        h.update(f"{key}={value}".encode())
                    return h.hexdigest()
            """,
        })
        assert active_rules(run_lint(tmp_path, rules=["DET004"])) == ["DET004"]

    def test_sorted_serialization_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/signature.py": """
                import hashlib
                import json

                def digest(data):
                    text = json.dumps(data, sort_keys=True)
                    return hashlib.sha256(text.encode()).hexdigest()
            """,
        })
        assert run_lint(tmp_path, rules=["DET004"]).active == []

    def test_non_digest_files_unscanned(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/trace.py": """
                import json

                def render(events):
                    return json.dumps(events)
            """,
        })
        assert run_lint(tmp_path, rules=["DET004"]).active == []


# ---------------------------------------------------------------------------
# NUM: numeric hygiene rules
# ---------------------------------------------------------------------------
class TestNum001FloatSum:
    def test_flags_float_sum_in_kernel(self, tmp_path):
        make_tree(tmp_path, {
            "repro/dnn/stats.py": """
                def total_latency(latencies_ms):
                    return sum(latencies_ms)
            """,
        })
        report = run_lint(tmp_path, rules=["NUM001"])
        assert active_rules(report) == ["NUM001"]

    def test_integer_sum_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/dnn/stats.py": """
                def total_macs(mac_counts):
                    return sum(mac_counts)
            """,
        })
        assert run_lint(tmp_path, rules=["NUM001"]).active == []

    def test_out_of_scope_path_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/env/stats.py": """
                def total_latency(latencies_ms):
                    return sum(latencies_ms)
            """,
        })
        assert run_lint(tmp_path, rules=["NUM001"]).active == []


class TestNum002DtypelessArray:
    def test_flags_dtypeless_array(self, tmp_path):
        make_tree(tmp_path, {
            "repro/soc/calib2.py": """
                import numpy as np

                CENTERS = np.array([2.0, 0.0, -2.0])
            """,
        })
        assert active_rules(run_lint(tmp_path, rules=["NUM002"])) == ["NUM002"]

    def test_explicit_dtype_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/soc/calib2.py": """
                import numpy as np

                CENTERS = np.array([2.0, 0.0, -2.0], dtype=np.float64)
                POSITIONAL = np.array([1, 2], np.int32)
            """,
        })
        assert run_lint(tmp_path, rules=["NUM002"]).active == []


# ---------------------------------------------------------------------------
# PROTO: protocol totality and loud failure
# ---------------------------------------------------------------------------
_ENUM_SOURCE = """
    from enum import IntEnum

    class PacketType(IntEnum):
        SYNC_GRANT = 1
        SYNC_DONE = 2
        CAMERA_REQ = 3
        CAMERA_RESP = 4
"""


class TestProto001DispatchTotality:
    def test_flags_missing_member(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/packets.py": _ENUM_SOURCE,
            "repro/core/dispatch.py": """
                from repro.core.packets import PacketType

                HANDLERS = {
                    PacketType.SYNC_GRANT: "grant",
                    PacketType.SYNC_DONE: "done",
                    PacketType.CAMERA_REQ: "req",
                }
            """,
        })
        report = run_lint(tmp_path, rules=["PROTO001"])
        assert active_rules(report) == ["PROTO001"]
        assert "CAMERA_RESP" in report.active[0].message

    def test_total_map_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/packets.py": _ENUM_SOURCE,
            "repro/core/dispatch.py": """
                from repro.core.packets import PacketType

                HANDLERS = {
                    PacketType.SYNC_GRANT: "grant",
                    PacketType.SYNC_DONE: "done",
                    PacketType.CAMERA_REQ: "req",
                    PacketType.CAMERA_RESP: "resp",
                }
            """,
        })
        assert run_lint(tmp_path, rules=["PROTO001"]).active == []

    def test_small_maps_below_threshold_ignored(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/packets.py": _ENUM_SOURCE,
            "repro/core/dispatch.py": """
                from repro.core.packets import PacketType

                SPECIAL = {
                    PacketType.CAMERA_REQ: "req",
                    PacketType.CAMERA_RESP: "resp",
                }
            """,
        })
        assert run_lint(tmp_path, rules=["PROTO001"]).active == []


class TestProto002SwallowedExcept:
    def test_flags_bare_except(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                def poll(sock):
                    try:
                        return sock.recv()
                    except:
                        return None
            """,
        })
        assert active_rules(run_lint(tmp_path, rules=["PROTO002"])) == ["PROTO002"]

    def test_flags_swallowed_broad_except(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                def poll(sock):
                    try:
                        return sock.recv()
                    except Exception:
                        pass
            """,
        })
        assert active_rules(run_lint(tmp_path, rules=["PROTO002"])) == ["PROTO002"]

    def test_broad_except_that_acts_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                def poll(sock, stats):
                    try:
                        return sock.recv()
                    except Exception as exc:
                        stats.errors += 1
                        raise RuntimeError("link failed") from exc
            """,
        })
        assert run_lint(tmp_path, rules=["PROTO002"]).active == []

    def test_specific_except_pass_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                def poll(sock):
                    try:
                        return sock.recv()
                    except BlockingIOError:
                        pass
            """,
        })
        assert run_lint(tmp_path, rules=["PROTO002"]).active == []


# ---------------------------------------------------------------------------
# CFG: cache-key coverage
# ---------------------------------------------------------------------------
_CONFIG_SOURCE = """
    from dataclasses import dataclass, field

    @dataclass
    class SyncConfig:
        cycles_per_sync: int = 1000
        frame_rate_hz: float = 60.0

    @dataclass
    class CoSimConfig:
        world: str = "tunnel"
        seed: int = 0
        sync: SyncConfig = field(default_factory=SyncConfig)
"""


class TestCfg001CacheKeyCoverage:
    def test_missing_field_without_asdict_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/config.py": _CONFIG_SOURCE,
            "repro/core/manifest.py": """
                def config_to_dict(config):
                    return {"world": config.world, "sync": {}}
            """,
        })
        report = run_lint(tmp_path, rules=["CFG001"])
        messages = " | ".join(d.message for d in report.active)
        assert "seed" in messages  # top-level field escaped

    def test_nested_override_missing_field_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/config.py": _CONFIG_SOURCE,
            "repro/core/manifest.py": """
                from dataclasses import asdict

                def config_to_dict(config):
                    data = asdict(config)
                    data["sync"] = {"cycles_per_sync": config.sync.cycles_per_sync}
                    return data
            """,
        })
        report = run_lint(tmp_path, rules=["CFG001"])
        assert active_rules(report) == ["CFG001"]
        assert "frame_rate_hz" in report.active[0].message

    def test_asdict_with_total_override_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/config.py": _CONFIG_SOURCE,
            "repro/core/manifest.py": """
                from dataclasses import asdict

                def config_to_dict(config):
                    data = asdict(config)
                    data["sync"] = {
                        "cycles_per_sync": config.sync.cycles_per_sync,
                        "frame_rate_hz": config.sync.frame_rate_hz,
                    }
                    return data
            """,
        })
        assert run_lint(tmp_path, rules=["CFG001"]).active == []

    def test_missing_serializer_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/config.py": _CONFIG_SOURCE,
            "repro/core/manifest.py": """
                FORMAT = "v1"
            """,
        })
        report = run_lint(tmp_path, rules=["CFG001"])
        assert active_rules(report) == ["CFG001"]
        assert "config_to_dict" in report.active[0].message


# ---------------------------------------------------------------------------
# OBS: metric catalog single-sourcing
# ---------------------------------------------------------------------------
_DECLARATIONS_SOURCE = """
    from repro.obs.metrics import MetricSpec

    DECLARED_METRICS = (
        MetricSpec("rose_sync_steps_total", "counter", "steps"),
        MetricSpec(name="rose_link_bytes_total", kind="counter", help="bytes"),
    )
"""


class TestObs001DeclaredMetrics:
    def test_undeclared_metric_name_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "repro/obs/declarations.py": _DECLARATIONS_SOURCE,
            "repro/core/synchronizer.py": """
                def step(registry):
                    registry.inc("rose_sync_stepz_total")
            """,
        })
        report = run_lint(tmp_path, rules=["OBS001"])
        assert active_rules(report) == ["OBS001"]
        assert "rose_sync_stepz_total" in report.active[0].message

    def test_declared_names_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/obs/declarations.py": _DECLARATIONS_SOURCE,
            "repro/core/synchronizer.py": """
                def step(registry, stats):
                    registry.inc("rose_sync_steps_total")
                    # name= keyword declarations count too:
                    registry.advance_to("rose_link_bytes_total", stats.total)
            """,
        })
        assert run_lint(tmp_path, rules=["OBS001"]).active == []

    def test_metricspec_outside_declarations_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "repro/obs/declarations.py": _DECLARATIONS_SOURCE,
            "repro/app/controller.py": """
                from repro.obs.metrics import MetricSpec

                EXTRA = MetricSpec("rose_extra_total", "counter", "sneaky")
            """,
        })
        report = run_lint(tmp_path, rules=["OBS001"])
        assert active_rules(report) == ["OBS001"]
        assert "MetricSpec" in report.active[0].message

    def test_declarations_module_itself_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/obs/declarations.py": _DECLARATIONS_SOURCE,
        })
        assert run_lint(tmp_path, rules=["OBS001"]).active == []

    def test_non_metric_strings_ignored(self, tmp_path):
        make_tree(tmp_path, {
            "repro/obs/declarations.py": _DECLARATIONS_SOURCE,
            "repro/core/cosim.py": """
                def collect(registry, payload):
                    registry.inc(1)             # non-string first arg
                    payload.get("rose_sync_steps_total")  # not a registry method
                    registry.set("progress", 1.0)         # no rose_ prefix
            """,
        })
        assert run_lint(tmp_path, rules=["OBS001"]).active == []

    def test_missing_declarations_module_skips_name_check(self, tmp_path):
        # Fixture trees without the catalog only get the MetricSpec check.
        make_tree(tmp_path, {
            "repro/core/synchronizer.py": """
                def step(registry):
                    registry.inc("rose_sync_steps_total")
            """,
        })
        assert run_lint(tmp_path, rules=["OBS001"]).active == []

    def test_finding_can_be_baselined(self, tmp_path):
        make_tree(tmp_path, {
            "repro/obs/declarations.py": _DECLARATIONS_SOURCE,
            "repro/core/synchronizer.py": """
                def step(registry):
                    registry.inc("rose_legacy_total")
            """,
        })
        report = run_lint(tmp_path, rules=["OBS001"])
        baseline = Baseline.from_diagnostics(
            report.diagnostics, path=tmp_path / "lint-baseline.json"
        )
        rerun = run_lint(tmp_path, rules=["OBS001"], baseline=baseline)
        assert rerun.active == []
        assert [d.rule for d in rerun.diagnostics if d.baselined] == ["OBS001"]


# ---------------------------------------------------------------------------
# RES: resilience rules
# ---------------------------------------------------------------------------
class TestRes001BoundedRetryLoops:
    def test_flags_while_true_without_exit(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/poller.py": """
                def spin(task):
                    while True:
                        task.try_once()
            """,
        })
        report = run_lint(tmp_path, rules=["RES001"])
        assert active_rules(report) == ["RES001"]

    def test_own_break_is_bounded(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/poller.py": """
                def spin(task):
                    while True:
                        if task.try_once():
                            break
            """,
        })
        assert run_lint(tmp_path, rules=["RES001"]).active == []

    def test_nested_loop_break_does_not_count(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/poller.py": """
                def spin(tasks):
                    while True:
                        for task in tasks:
                            if task.try_once():
                                break
            """,
        })
        report = run_lint(tmp_path, rules=["RES001"])
        assert active_rules(report) == ["RES001"]

    def test_raise_and_return_are_exits(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/poller.py": """
                def spin_raise(task):
                    while True:
                        if task.done():
                            raise RuntimeError("poison")

                def spin_return(task):
                    while True:
                        if task.done():
                            return task
            """,
        })
        assert run_lint(tmp_path, rules=["RES001"]).active == []

    def test_condition_bounded_loop_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/poller.py": """
                def drain(queue, inflight):
                    while queue or inflight:
                        queue.pop()
            """,
        })
        assert run_lint(tmp_path, rules=["RES001"]).active == []

    def test_outside_sweep_is_out_of_scope(self, tmp_path):
        make_tree(tmp_path, {
            "repro/app/controller.py": """
                def spin(task):
                    while True:
                        task.try_once()
            """,
        })
        assert run_lint(tmp_path, rules=["RES001"]).active == []


class TestRes002BareSleep:
    def test_flags_time_sleep_in_sweep(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/runner.py": """
                import time

                def retry(task):
                    time.sleep(0.5)
            """,
        })
        report = run_lint(tmp_path, rules=["RES002"])
        assert active_rules(report) == ["RES002"]
        assert "backoff_sleep" in report.active[0].hint

    def test_flags_from_import_alias(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/runner.py": """
                from time import sleep

                def retry(task):
                    sleep(0.5)
            """,
        })
        assert active_rules(run_lint(tmp_path, rules=["RES002"])) == ["RES002"]

    def test_resilience_module_is_blessed(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/resilience.py": """
                import time

                def backoff_sleep(policy, key, attempt):
                    time.sleep(policy.backoff_delay(key, attempt))
            """,
        })
        assert run_lint(tmp_path, rules=["RES002"]).active == []

    def test_inline_waiver(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/chaos.py": """
                import time

                def hang(seconds):
                    time.sleep(seconds)  # repro: allow[RES002]
            """,
        })
        report = run_lint(tmp_path, rules=["RES002"])
        assert report.active == []
        assert [d.rule for d in report.diagnostics if d.waived] == ["RES002"]

    def test_outside_sweep_is_out_of_scope(self, tmp_path):
        make_tree(tmp_path, {
            "repro/env/simulator.py": """
                import time

                def pace():
                    time.sleep(0.1)
            """,
        })
        assert run_lint(tmp_path, rules=["RES002"]).active == []


# ---------------------------------------------------------------------------
# PERF: batched-engine vectorization
# ---------------------------------------------------------------------------
class TestPerf001BatchLoops:
    def test_flags_for_and_while_in_batch_package(self, tmp_path):
        make_tree(tmp_path, {
            "repro/batch/engine.py": """
                def advance(lanes):
                    total = 0
                    for lane in lanes:
                        total += lane
                    while total > 0:
                        total -= 1
                    return total
            """,
        })
        report = run_lint(tmp_path, rules=["PERF001"])
        assert active_rules(report) == ["PERF001", "PERF001"]
        messages = [d.message for d in report.active]
        assert any("for loop" in m for m in messages)
        assert any("while loop" in m for m in messages)

    def test_waived_loop_with_reason_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/batch/kernels.py": """
                def floor(points):
                    out = []
                    for lo in range(0, len(points), 256):  # repro: allow[PERF001] fixed cache-block loop
                        out.append(points[lo])
                    return out
            """,
        })
        report = run_lint(tmp_path, rules=["PERF001"])
        assert report.active == []
        assert [d.rule for d in report.diagnostics if d.waived] == ["PERF001"]

    def test_comprehensions_are_not_flagged(self, tmp_path):
        make_tree(tmp_path, {
            "repro/batch/engine.py": """
                def indices(lanes):
                    return [lane.index for lane in lanes if lane.alive]
            """,
        })
        assert run_lint(tmp_path, rules=["PERF001"]).active == []

    def test_outside_batch_package_is_out_of_scope(self, tmp_path):
        make_tree(tmp_path, {
            "repro/env/simulator.py": """
                def step(frames):
                    for _ in range(frames):
                        pass
            """,
        })
        assert run_lint(tmp_path, rules=["PERF001"]).active == []

    def test_shipped_batch_package_is_loop_clean(self):
        # The real repro/batch/ tree must carry a waiver (with a reason)
        # on every serial loop it keeps.
        root = Path(__file__).resolve().parent.parent / "src"
        report = run_lint(root, rules=["PERF001"])
        assert active_rules(report) == []
        assert all(d.path.startswith("repro/batch/") for d in report.diagnostics)


# ---------------------------------------------------------------------------
# SRV: serve-layer clock injection
# ---------------------------------------------------------------------------
class TestSrv001DirectTime:
    def test_flags_direct_time_calls_in_serve(self, tmp_path):
        make_tree(tmp_path, {
            "repro/serve/scheduler.py": """
                import time

                def lease_deadline(seconds):
                    return time.monotonic() + seconds

                def park():
                    time.sleep(0.1)
            """,
        })
        report = run_lint(tmp_path, rules=["SRV001"])
        assert active_rules(report) == ["SRV001", "SRV001"]
        assert "Clock" in report.active[0].hint

    def test_clock_module_is_blessed(self, tmp_path):
        make_tree(tmp_path, {
            "repro/serve/clock.py": """
                import time

                class SystemClock:
                    def now(self):
                        return time.monotonic()

                    def sleep(self, seconds):
                        time.sleep(seconds)
            """,
        })
        assert run_lint(tmp_path, rules=["SRV001"]).active == []

    def test_injected_clock_calls_are_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/serve/scheduler.py": """
                def lease_deadline(clock, seconds):
                    return clock.now() + seconds
            """,
        })
        assert run_lint(tmp_path, rules=["SRV001"]).active == []

    def test_inline_waiver(self, tmp_path):
        make_tree(tmp_path, {
            "repro/serve/workers.py": """
                import time

                def profile_step(worker):
                    start = time.perf_counter()  # repro: allow[SRV001] local profiling only
                    worker.step()
                    return time.perf_counter() - start  # repro: allow[SRV001] local profiling only
            """,
        })
        report = run_lint(tmp_path, rules=["SRV001"])
        assert report.active == []
        assert [d.rule for d in report.diagnostics if d.waived] == [
            "SRV001", "SRV001",
        ]

    def test_outside_serve_is_out_of_scope(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/cache.py": """
                import time

                def stamp():
                    return time.time()
            """,
        })
        assert run_lint(tmp_path, rules=["SRV001"]).active == []

    def test_shipped_serve_tree_is_clock_clean(self):
        root = Path(__file__).resolve().parent.parent / "src"
        report = run_lint(root, rules=["SRV001"])
        assert active_rules(report) == []
        # Every time.* call under repro/serve/ lives in the blessed
        # clock module, which the rule excludes entirely.
        assert report.diagnostics == []


class TestScn001GlobalRng:
    def test_flags_module_level_rng_calls(self, tmp_path):
        make_tree(tmp_path, {
            "repro/scenario/mutators.py": """
                import random

                import numpy as np

                def jiggle(value):
                    return value + random.uniform(-1.0, 1.0)

                def noise(shape):
                    return np.random.normal(size=shape)
            """,
        })
        report = run_lint(tmp_path, rules=["SCN001"])
        assert active_rules(report) == ["SCN001", "SCN001"]
        assert "seeded" in report.active[0].hint

    def test_injected_generator_is_clean(self, tmp_path):
        make_tree(tmp_path, {
            "repro/scenario/mutators.py": """
                def jiggle(rng, value):
                    return value + rng.uniform(-1.0, 1.0)
            """,
        })
        assert run_lint(tmp_path, rules=["SCN001"]).active == []

    def test_seeded_constructors_are_allowed(self, tmp_path):
        make_tree(tmp_path, {
            "repro/scenario/fuzz.py": """
                import random

                import numpy as np

                def campaign_rng(seed):
                    return random.Random(seed)

                def kernel_rng(seed):
                    return np.random.default_rng(seed)
            """,
        })
        assert run_lint(tmp_path, rules=["SCN001"]).active == []

    def test_outside_scenario_is_out_of_scope(self, tmp_path):
        make_tree(tmp_path, {
            "repro/sweep/runner.py": """
                import random

                def reseed(seed):
                    random.seed(seed)
            """,
        })
        assert run_lint(tmp_path, rules=["SCN001"]).active == []

    def test_shipped_scenario_tree_is_rng_clean(self):
        root = Path(__file__).resolve().parent.parent / "src"
        report = run_lint(root, rules=["SCN001"])
        assert active_rules(report) == []
        # Every draw in the shipped fuzzer flows through the injected
        # random.Random; nothing is even waived.
        assert report.diagnostics == []


# ---------------------------------------------------------------------------
# Waivers and baseline
# ---------------------------------------------------------------------------
class TestWaivers:
    def test_inline_waiver_on_flagged_line(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                import time

                def stamp():
                    return time.time()  # repro: allow[DET002] host-time by design
            """,
        })
        report = run_lint(tmp_path, rules=["DET002"])
        assert report.active == []
        assert len(report.diagnostics) == 1
        assert report.diagnostics[0].waived

    def test_waiver_on_line_above(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                import time

                def stamp():
                    # repro: allow[DET002]
                    return time.time()
            """,
        })
        assert run_lint(tmp_path, rules=["DET002"]).active == []

    def test_waiver_for_other_rule_does_not_apply(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                import time

                def stamp():
                    return time.time()  # repro: allow[NUM001]
            """,
        })
        assert active_rules(run_lint(tmp_path, rules=["DET002"])) == ["DET002"]

    def test_star_waiver_covers_everything(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                import time

                def stamp():
                    return time.time()  # repro: allow[*]
            """,
        })
        assert run_lint(tmp_path, rules=["DET002"]).active == []


class TestStaleWaivers:
    def _run(self, root, rules):
        selected = [get_rule(r) for r in rules]
        return LintEngine(root, rules=selected, check_waivers=True).run()

    def test_stale_waiver_reported(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                def stamp():
                    return 0  # repro: allow[DET002] nothing here anymore
            """,
        })
        [diag] = self._run(tmp_path, ["DET002"]).active
        assert diag.rule == "WAIVE001"
        assert diag.line == 3
        assert "allow[DET002]" in diag.message

    def test_consumed_waiver_not_reported(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                import time

                def stamp():
                    return time.time()  # repro: allow[DET002] host time by design
            """,
        })
        report = self._run(tmp_path, ["DET002"])
        assert active_rules(report) == []

    def test_waiver_mentioned_in_docstring_is_not_a_waiver(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": '''
                """Waive with ``# repro: allow[DET002] reason`` at the site."""

                HELP = "add '# repro: allow[DET002]' to suppress"
                # The syntax is `# repro: allow[DET002]`, mid-comment.
            ''',
        })
        assert self._run(tmp_path, ["DET002"]).active == []

    def test_stale_waiver_is_not_inline_waivable(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                def stamp():
                    return 0  # repro: allow[DET002,WAIVE001]
            """,
        })
        # A waiver cannot excuse its own staleness — it would never rot.
        assert active_rules(self._run(tmp_path, ["DET002"])) == ["WAIVE001"]

    def test_stale_waiver_can_be_baselined(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                def stamp():
                    return 0  # repro: allow[DET002]
            """,
        })
        baseline = Baseline(entries=[
            {"rule": "WAIVE001", "path": "repro/core/link.py", "line": 3},
        ])
        report = LintEngine(
            tmp_path, rules=[get_rule("DET002")], baseline=baseline,
            check_waivers=True,
        ).run()
        assert report.active == []
        assert [d.baselined for d in report.diagnostics] == [True]

    def test_without_flag_stale_waivers_stay_silent(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/link.py": """
                def stamp():
                    return 0  # repro: allow[DET002]
            """,
        })
        assert run_lint(tmp_path, rules=["DET002"]).diagnostics == []


class TestBaseline:
    def _tree(self, tmp_path):
        return make_tree(tmp_path / "src", {
            "repro/core/link.py": """
                import time

                def stamp():
                    return time.time()
            """,
        })

    def test_baselined_finding_suppressed_not_hidden(self, tmp_path):
        root = self._tree(tmp_path)
        first = run_lint(root, rules=["DET002"])
        baseline = Baseline.from_diagnostics(first.diagnostics)
        report = run_lint(root, rules=["DET002"], baseline=baseline)
        assert report.active == [] and report.ok
        assert [d.baselined for d in report.diagnostics] == [True]

    def test_write_load_round_trip(self, tmp_path):
        root = self._tree(tmp_path)
        first = run_lint(root, rules=["DET002"])
        path = tmp_path / "lint-baseline.json"
        Baseline.from_diagnostics(first.diagnostics).write(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        assert run_lint(root, rules=["DET002"], baseline=loaded).ok

    def test_stale_entries_reported(self, tmp_path):
        root = self._tree(tmp_path)
        baseline = Baseline(entries=[
            {"rule": "DET002", "path": "repro/core/link.py", "line": 5},
            {"rule": "DET002", "path": "repro/core/gone.py", "line": 1},
        ])
        report = run_lint(root, rules=["DET002"], baseline=baseline)
        assert [e["path"] for e in report.stale_baseline] == ["repro/core/gone.py"]

    def test_missing_file_loads_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_bad_format_raises(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text(json.dumps({"format": "bogus/9", "entries": []}))
        with pytest.raises(ConfigError):
            Baseline.load(path)

    def test_baseline_path_discovery(self, tmp_path):
        root = tmp_path / "src"
        root.mkdir()
        (tmp_path / "lint-baseline.json").write_text(
            json.dumps({"format": "rose-lint-baseline/1", "entries": []})
        )
        assert baseline_path_for(root) == tmp_path / "lint-baseline.json"


# ---------------------------------------------------------------------------
# Engine mechanics
# ---------------------------------------------------------------------------
class TestEngine:
    def test_parse_error_reported_not_fatal(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/good.py": "x = 1\n",
            "repro/core/bad.py": "def broken(:\n",
        })
        report = run_lint(tmp_path)
        assert report.files_scanned == 1
        assert len(report.parse_errors) == 1
        assert "repro/core/bad.py" in report.parse_errors[0]
        assert not report.ok

    def test_empty_file_scans_clean(self, tmp_path):
        make_tree(tmp_path, {"repro/core/empty.py": ""})
        report = run_lint(tmp_path)
        assert report.files_scanned == 1
        assert report.ok

    def test_files_outside_root_are_not_scanned(self, tmp_path):
        make_tree(tmp_path, {
            "src/repro/core/ok.py": "x = 1\n",
            "scripts/helper.py": "import time\nx = time.time()\n",
        })
        report = run_lint(tmp_path / "src", rules=["DET002"])
        assert report.files_scanned == 1
        assert report.active == []

    def test_duplicate_rule_registration_raises(self):
        from repro.analysis.lint.registry import rule

        with pytest.raises(ValueError, match="duplicate rule id 'DET002'"):
            rule("DET002", "again", "collides with the real DET002")(
                lambda module, project: []
            )
        # The original registration survives the failed attempt.
        assert get_rule("DET002").title != "again"

    def test_diagnostics_sorted_by_location(self, tmp_path):
        make_tree(tmp_path, {
            "repro/core/b.py": "import time\nx = time.time()\n",
            "repro/core/a.py": "import time\ny = time.time()\nz = time.time()\n",
        })
        report = run_lint(tmp_path, rules=["DET002"])
        locations = [(d.path, d.line) for d in report.active]
        assert locations == sorted(locations)

    def test_ordering_breaks_ties_on_rule_id(self):
        # Same (path, line): order falls back to the rule id, and the
        # suppression flags never influence position.
        from repro.analysis.lint.diagnostics import Diagnostic

        srv = Diagnostic(path="repro/a.py", line=3, rule="SRV001", message="m")
        det = Diagnostic(path="repro/a.py", line=3, rule="DET002", message="m")
        waived_det = det.suppressed(waived=True)
        assert sorted([srv, det]) == [det, srv]
        assert sorted([srv, waived_det])[0].rule == "DET002"


# ---------------------------------------------------------------------------
# The shipped tree and the CLI
# ---------------------------------------------------------------------------
REPO_SRC = Path(__file__).resolve().parents[1] / "src"


class TestShippedTree:
    def test_shipped_tree_is_lint_clean(self):
        baseline = Baseline.load(baseline_path_for(REPO_SRC))
        report = LintEngine(REPO_SRC, baseline=baseline).run()
        assert report.ok, "\n".join(d.location for d in report.active)
        assert report.stale_baseline == []

    def test_lint_clean_oracle_registered(self):
        from repro.verify.oracles import registered_oracles

        oracle = registered_oracles()["lint-clean"]
        assert oracle.run() == []


class TestCli:
    def _tree(self, tmp_path):
        return make_tree(tmp_path / "src", {
            "repro/core/link.py": """
                import time

                def stamp():
                    return time.time()
            """,
        })

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = make_tree(tmp_path / "src", {"repro/core/ok.py": "x = 1\n"})
        assert main(["lint", str(root)]) == 0

    def test_findings_exit_one(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        code = main(["lint", str(root), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DET002" in out and "repro/core/link.py" in out

    def test_bad_root_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        assert main(["lint", str(root), "--rule", "XYZ001"]) == 2

    def test_json_format(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        code = main(["lint", str(root), "--format", "json", "--no-baseline"])
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        assert data["format"] == "rose-lint-report/1"
        assert data["summary"]["active"] == 1
        [finding] = data["diagnostics"]
        assert finding["rule"] == "DET002"

    def test_sarif_format(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        code = main(["lint", str(root), "--format", "sarif", "--no-baseline"])
        log = json.loads(capsys.readouterr().out)
        assert code == 1
        assert log["version"] == "2.1.0"
        [result] = log["runs"][0]["results"]
        assert result["ruleId"] == "DET002" and result["level"] == "error"

    def test_deep_flag_runs_project_rules(self, tmp_path, capsys):
        root = make_tree(tmp_path / "src", {
            "repro/sweep/signature.py": """
                import time

                def mission_signature(result):
                    return (time.time(), result)
            """,
        })
        # The default run skips deep rules (DET002 is out of scope here);
        # --deep finds the tainted root.
        assert main(["lint", str(root), "--no-baseline"]) == 0
        capsys.readouterr()
        code = main(["lint", str(root), "--deep", "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DEEP001" in out and "mission_signature" in out

    def test_check_waivers_flag(self, tmp_path, capsys):
        root = make_tree(tmp_path / "src", {
            "repro/core/ok.py": "x = 1  # repro: allow[DET002] gone\n",
        })
        assert main(["lint", str(root)]) == 0
        capsys.readouterr()
        code = main(["lint", str(root), "--check-waivers"])
        out = capsys.readouterr().out
        assert code == 1
        assert "WAIVE001" in out and "allow[DET002]" in out

    def test_prune_baseline_rewrites_file(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        baseline_path = tmp_path / "lint-baseline.json"
        baseline_path.write_text(json.dumps({
            "format": "rose-lint-baseline/1",
            "entries": [
                {"rule": "DET002", "path": "repro/core/link.py", "line": 5},
                {"rule": "DET002", "path": "repro/core/gone.py", "line": 1},
            ],
        }))
        code = main([
            "lint", str(root), "--baseline", str(baseline_path), "--prune-baseline",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "pruned 1 stale baseline entr" in out
        kept = json.loads(baseline_path.read_text())["entries"]
        assert [e["path"] for e in kept] == ["repro/core/link.py"]

    def test_prune_baseline_conflicts_with_no_baseline(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        assert main([
            "lint", str(root), "--no-baseline", "--prune-baseline",
        ]) == 2

    def test_rule_filter(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        assert main(["lint", str(root), "--rule", "NUM001"]) == 0

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        assert main(["lint", str(root), "--write-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").is_file()
        assert main(["lint", str(root)]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "DET004",
                        "NUM001", "NUM002", "PROTO001", "PROTO002", "CFG001"):
            assert rule_id in out

    def test_shipped_tree_via_cli_default_root(self, capsys):
        assert main(["lint"]) == 0
