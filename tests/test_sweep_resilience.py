"""Tests for resilient sweep execution.

Covers the supervision contract end to end: deterministic retry/backoff
(`repro.sweep.resilience`), the crash-safe journal and `--resume`
(`repro.sweep.journal`), the env-gated chaos harness
(`repro.sweep.chaos`), and the supervised runner paths — worker
exceptions, `BrokenProcessPool` recovery, per-task timeout expiry,
poison-task quarantine, and kill-mid-sweep resume bit-identity.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import CoSimConfig
from repro.core.cosim import run_mission
from repro.errors import ConfigError, SweepError
from repro.sweep import (
    ChaosError,
    ChaosPlan,
    ResultCache,
    RetryPolicy,
    SweepJournal,
    SweepRunner,
    SweepTask,
    TaskFailure,
    config_key,
    mission_signature,
    sweep_id,
)
from repro.sweep.chaos import CHAOS_ENV, load_chaos_plan
from repro.sweep.journal import ReplayEntry
from repro.sweep.resilience import SUCCESS_STATES
from repro.sweep.runner import _pool_initializer


def _tiny_config(seed: int = 0) -> CoSimConfig:
    """A mission short enough to run many times in a test."""
    return CoSimConfig(
        world="tunnel", target_velocity=3.0, max_sim_time=1.0, seed=seed
    )


def _tasks(n: int = 3) -> list[SweepTask]:
    return [SweepTask(f"seed{s}", _tiny_config(s)) for s in range(n)]


#: Fast retry budget for tests: generous attempts, near-zero backoff.
FAST_RETRY = RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.05)


@pytest.fixture
def chaos_env():
    """Set a chaos plan for the test's duration, restoring the old value."""
    previous = os.environ.get(CHAOS_ENV)

    def activate(plan: ChaosPlan) -> None:
        os.environ[CHAOS_ENV] = plan.to_json()

    yield activate
    if previous is None:
        os.environ.pop(CHAOS_ENV, None)
    else:
        os.environ[CHAOS_ENV] = previous


@pytest.fixture(scope="module")
def serial_baseline():
    """Fault-free serial signatures for the standard three-task sweep."""
    return [
        mission_signature(run_mission(task.config)) for task in _tasks()
    ]


# ---------------------------------------------------------------------------
# RetryPolicy / TaskFailure
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy()
        a = [policy.backoff_delay("k" * 64, n) for n in (1, 2, 3)]
        b = [policy.backoff_delay("k" * 64, n) for n in (1, 2, 3)]
        assert a == b

    def test_backoff_decorrelates_by_key(self):
        policy = RetryPolicy()
        assert policy.backoff_delay("a" * 64, 1) != policy.backoff_delay("b" * 64, 1)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, max_delay=0.4, multiplier=2.0, jitter=0.0
        )
        delays = [policy.backoff_delay("k", n) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.25)
        for n in range(1, 20):
            delay = policy.backoff_delay(f"key{n}", 1)
            assert 0.75 <= delay <= 1.25

    def test_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(1) and policy.allows_retry(2)
        assert not policy.allows_retry(3)

    def test_terminal_state_quarantines_with_retries(self):
        assert RetryPolicy(max_attempts=3).terminal_state("exception") == "quarantined"

    def test_terminal_state_keeps_kind_without_retries(self):
        single = RetryPolicy(max_attempts=1)
        assert single.terminal_state("exception") == "failed"
        assert single.terminal_state("timeout") == "timed_out"
        assert single.terminal_state("pool_crash") == "crashed"

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)


class TestTaskFailure:
    def test_round_trip(self):
        failure = TaskFailure(kind="timeout", message="too slow", attempt=2)
        assert TaskFailure.from_dict(failure.to_dict()) == failure

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            TaskFailure(kind="gremlins", message="?", attempt=1)


# ---------------------------------------------------------------------------
# Chaos plan
# ---------------------------------------------------------------------------
class TestChaosPlan:
    def test_decisions_are_deterministic(self):
        plan = ChaosPlan(fail_rate=0.5, seed=7)
        verdicts = [plan.decide(f"key{i}", 1) for i in range(50)]
        assert verdicts == [plan.decide(f"key{i}", 1) for i in range(50)]
        assert "fail" in verdicts and None in verdicts  # both bands hit

    def test_forced_overrides_rates(self):
        plan = ChaosPlan(forced=(("abc", "crash"),))
        assert plan.decide("abcdef", 1) == "crash"
        assert plan.decide("xyz", 1) is None

    def test_max_faulty_attempts_bounds_faults(self):
        plan = ChaosPlan(forced=(("", "fail"),), max_faulty_attempts=2)
        assert plan.decide("anything", 1) == "fail"
        assert plan.decide("anything", 2) == "fail"
        assert plan.decide("anything", 3) is None

    def test_json_round_trip(self):
        plan = ChaosPlan(fail_rate=0.1, crash_rate=0.2, seed=3, forced=(("ab", "hang"),))
        assert ChaosPlan.from_json(plan.to_json()) == plan

    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            ChaosPlan(fail_rate=0.6, crash_rate=0.6)
        with pytest.raises(ConfigError):
            ChaosPlan(forced=(("ab", "explode"),))

    def test_load_accepts_inline_json_or_path(self, tmp_path):
        plan = ChaosPlan(fail_rate=0.1, seed=3)
        assert load_chaos_plan(plan.to_json()) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert load_chaos_plan(str(path)) == plan
        with pytest.raises(ConfigError, match="cannot read chaos plan"):
            load_chaos_plan(str(tmp_path / "missing.json"))


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------
class TestJournal:
    def test_sweep_id_sensitive_to_order_and_content(self):
        tasks = [("a", "k1"), ("b", "k2")]
        base = sweep_id("f" * 64, tasks)
        assert base == sweep_id("f" * 64, tasks)
        assert base != sweep_id("e" * 64, tasks)
        assert base != sweep_id("f" * 64, list(reversed(tasks)))

    def test_replay_round_trip(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.begin("f" * 64, [("a", "k1"), ("b", "k2")], {"max_attempts": 3})
        journal.record_task("a", "k1", "ok", 1)
        journal.record_task(
            "b", "k2", "quarantined", 3,
            failure={"kind": "exception", "message": "boom", "attempt": 3},
        )
        journal.end({"ok": 1, "failed": 1})
        replayed = journal.replay()
        assert replayed == {
            "k1": ReplayEntry(name="a", key="k1", state="ok", attempts=1),
            "k2": ReplayEntry(name="b", key="k2", state="quarantined", attempts=3),
        }

    def test_replay_tolerates_torn_trailing_line(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.begin("f" * 64, [("a", "k1")])
        journal.record_task("a", "k1", "ok", 1)
        # Simulate a crash mid-append: a truncated final record.
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "task", "name": "b", "ke')
        assert journal.replay() == {
            "k1": ReplayEntry(name="a", key="k1", state="ok", attempts=1)
        }

    def test_garbage_mid_file_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('not json\n{"event": "begin"}\n{"event": "end"}\n')
        with pytest.raises(ValueError):
            SweepJournal(path).replay()

    def test_missing_file_replays_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "absent.jsonl").replay() == {}

    def test_new_begin_starts_fresh_segment(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.begin("f" * 64, [("a", "k1")])
        journal.record_task("a", "k1", "ok", 1)
        journal.begin("f" * 64, [("a", "k1")])  # non-resume re-run
        assert journal.replay() == {}

    @settings(
        deadline=None, max_examples=40,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        events=st.lists(
            st.tuples(
                st.sampled_from(["t0", "t1", "t2", "t3"]),
                st.sampled_from(
                    ["ok", "from_cache", "failed", "timed_out", "crashed", "quarantined"]
                ),
                st.integers(min_value=1, max_value=5),
            ),
            max_size=25,
        )
    )
    def test_replay_is_last_event_wins(self, tmp_path, events):
        """Property: replay == fold of the event list, any ordering."""
        journal = SweepJournal(
            tmp_path / f"prop-{abs(hash(tuple(events))) % 10**9}.jsonl"
        )
        journal.begin("f" * 64, [(name, f"key-{name}") for name, _, _ in events])
        expected: dict[str, ReplayEntry] = {}
        for name, state, attempts in events:
            key = f"key-{name}"
            journal.record_task(name, key, state, attempts)
            expected[key] = ReplayEntry(
                name=name, key=key, state=state, attempts=attempts
            )
        assert journal.replay() == expected


# ---------------------------------------------------------------------------
# Supervised execution: exception / crash / hang / quarantine
# ---------------------------------------------------------------------------
class TestSupervisedExecution:
    def test_serial_retry_recovers(self, chaos_env, serial_baseline):
        tasks = _tasks()
        key = config_key(tasks[0].config)
        chaos_env(ChaosPlan(forced=((key[:16], "fail"),), max_faulty_attempts=2))
        report = SweepRunner(workers=1, retry=FAST_RETRY).run(tasks)
        assert report.ok
        assert report.retries == 2
        assert report.outcomes[0].attempts == 3
        sigs = [mission_signature(o.result) for o in report.outcomes]
        assert sigs == serial_baseline

    def test_worker_exception_recovers_in_pool(self, chaos_env, serial_baseline):
        tasks = _tasks()
        key = config_key(tasks[0].config)
        chaos_env(ChaosPlan(forced=((key[:16], "fail"),), max_faulty_attempts=1))
        report = SweepRunner(workers=2, retry=FAST_RETRY).run(tasks)
        assert report.ok
        assert report.retries >= 1
        sigs = [mission_signature(o.result) for o in report.outcomes]
        assert sigs == serial_baseline

    def test_broken_pool_recovers(self, chaos_env, serial_baseline):
        tasks = _tasks()
        key = config_key(tasks[0].config)
        chaos_env(ChaosPlan(forced=((key[:16], "crash"),), max_faulty_attempts=1))
        report = SweepRunner(workers=2, retry=FAST_RETRY).run(tasks)
        assert report.ok
        assert report.pool_crashes >= 1
        sigs = [mission_signature(o.result) for o in report.outcomes]
        assert sigs == serial_baseline

    def test_timeout_expiry_recovers(self, chaos_env, serial_baseline):
        tasks = _tasks()
        key = config_key(tasks[0].config)
        chaos_env(
            ChaosPlan(
                forced=((key[:16], "hang"),),
                max_faulty_attempts=1,
                hang_seconds=60.0,
            )
        )
        report = SweepRunner(
            workers=2, retry=FAST_RETRY, task_timeout=5.0
        ).run(tasks)
        assert report.ok
        assert report.timeouts >= 1
        assert any(
            failure.kind == "timeout"
            for outcome in report.outcomes
            for failure in ([outcome.failure] if outcome.failure else [])
        ) or report.outcomes[0].attempts > 1
        sigs = [mission_signature(o.result) for o in report.outcomes]
        assert sigs == serial_baseline

    def test_poison_task_quarantined(self, chaos_env):
        tasks = _tasks()
        key = config_key(tasks[0].config)
        chaos_env(ChaosPlan(forced=((key[:16], "fail"),), max_faulty_attempts=99))
        report = SweepRunner(
            workers=2,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.02),
        ).run(tasks)
        poisoned = report.outcomes[0]
        assert poisoned.state == "quarantined"
        assert poisoned.attempts == 3
        assert poisoned.result is None
        assert poisoned.failure is not None and poisoned.failure.kind == "exception"
        assert report.quarantined == 1
        # The rest of the sweep still completed.
        assert all(o.ok for o in report.outcomes[1:])
        with pytest.raises(SweepError, match="quarantined"):
            report.results()

    def test_no_retry_policy_keeps_failure_kind(self, chaos_env):
        tasks = _tasks(2)
        key = config_key(tasks[0].config)
        chaos_env(ChaosPlan(forced=((key[:16], "fail"),), max_faulty_attempts=99))
        report = SweepRunner(
            workers=1, retry=RetryPolicy(max_attempts=1)
        ).run(tasks)
        assert report.outcomes[0].state == "failed"
        assert report.retries == 0

    def test_sweep_metrics_in_telemetry(self, chaos_env):
        tasks = _tasks(2)
        key = config_key(tasks[0].config)
        chaos_env(ChaosPlan(forced=((key[:16], "fail"),), max_faulty_attempts=1))
        report = SweepRunner(workers=1, retry=FAST_RETRY).run(tasks)
        merged = report.telemetry()
        series = merged.get("rose_sweep_retries_total", {}).get("series", [])
        assert sum(row["value"] for row in series) == report.retries == 1

    def test_clean_run_telemetry_has_no_resilience_noise(self):
        """Fault-free sweeps keep the pre-resilience telemetry shape:
        every rose_sweep_* series stays empty, so merged snapshots are
        identical to what a plain serial run produces."""
        report = SweepRunner(workers=1).run(_tasks(2))
        merged = report.telemetry()
        for name in (
            "rose_sweep_retries_total",
            "rose_sweep_timeouts_total",
            "rose_sweep_crashes_total",
            "rose_sweep_quarantined_total",
            "rose_sweep_journal_replays_total",
            "rose_cache_corrupt_total",
        ):
            assert merged.get(name, {}).get("series", []) == []


# ---------------------------------------------------------------------------
# Pool initializer (fork-state hygiene)
# ---------------------------------------------------------------------------
class TestPoolInitializer:
    def test_clears_transient_chaos_state(self):
        from repro.sweep import chaos

        chaos._INJECTED.append(("fail", "k", 1))
        try:
            _pool_initializer(generation=1)
            assert chaos.injected_faults() == []
        finally:
            chaos.reset_process_state()

    def test_reseeds_global_rngs(self):
        import random

        _pool_initializer(generation=1)
        first = random.random()
        _pool_initializer(generation=1)
        assert random.random() == first
        _pool_initializer(generation=2)
        assert random.random() != first
        _pool_initializer(generation=0)  # leave a known state behind


# ---------------------------------------------------------------------------
# Journal-backed resume
# ---------------------------------------------------------------------------
class TestResume:
    def _journal_for(self, cache: ResultCache, tasks: list[SweepTask]) -> SweepJournal:
        pairs = [(task.name, config_key(task.config)) for task in tasks]
        return SweepJournal.for_sweep(cache.root, cache.fingerprint, pairs)

    def test_kill_mid_sweep_then_resume_is_bit_identical(
        self, tmp_path, serial_baseline
    ):
        tasks = _tasks()
        # Uninterrupted reference run (separate cache root).
        reference = SweepRunner(
            workers=1, cache=ResultCache(tmp_path / "ref")
        ).run(tasks)
        ref_sigs = [mission_signature(o.result) for o in reference.outcomes]
        assert ref_sigs == serial_baseline

        # "Killed" run: simulate SIGKILL after task 0 completed by
        # truncating cache + journal to their state at that moment —
        # including a torn half-record from the dying append.
        cache = ResultCache(tmp_path / "run")
        journal = self._journal_for(cache, tasks)
        interrupted = SweepRunner(workers=1, cache=cache, journal=journal).run(tasks)
        assert interrupted.ok
        keep_key = config_key(tasks[0].config)
        for task in tasks[1:]:
            cache._path(config_key(task.config)).unlink()
        lines = journal.path.read_text().splitlines(keepends=True)
        kept = [
            line
            for line in lines
            if json.loads(line).get("event") == "begin"
            or json.loads(line).get("key") == keep_key
        ]
        journal.path.write_text("".join(kept) + '{"event": "task", "na')

        # Resume: only the two missing tasks recompute.
        cache2 = ResultCache(tmp_path / "run")
        journal2 = self._journal_for(cache2, tasks)
        resumed = SweepRunner(
            workers=1, cache=cache2, journal=journal2, resume=True
        ).run(tasks)
        assert resumed.ok
        assert [o.from_cache for o in resumed.outcomes] == [True, False, False]
        assert resumed.journal_replays == 1
        assert resumed.cache_hits == 1 and resumed.cache_misses == 2
        # Bit-identical to the uninterrupted run, task for task.
        sigs = [mission_signature(o.result) for o in resumed.outcomes]
        assert sigs == ref_sigs

    def test_resume_full_journal_recomputes_nothing(self, tmp_path):
        tasks = _tasks(2)
        cache = ResultCache(tmp_path)
        journal = self._journal_for(cache, tasks)
        SweepRunner(workers=1, cache=cache, journal=journal).run(tasks)

        cache2 = ResultCache(tmp_path)
        journal2 = self._journal_for(cache2, tasks)
        resumed = SweepRunner(
            workers=1, cache=cache2, journal=journal2, resume=True
        ).run(tasks)
        assert resumed.ok
        assert all(o.from_cache for o in resumed.outcomes)
        assert resumed.journal_replays == 2
        assert resumed.cache_misses == 0

    def test_resume_requires_journal(self):
        with pytest.raises(ConfigError):
            SweepRunner(resume=True)

    def test_journal_records_failures(self, tmp_path, chaos_env):
        tasks = _tasks(2)
        cache = ResultCache(tmp_path)
        journal = self._journal_for(cache, tasks)
        key = config_key(tasks[0].config)
        chaos_env(ChaosPlan(forced=((key[:16], "fail"),), max_faulty_attempts=99))
        SweepRunner(
            workers=1,
            cache=cache,
            journal=journal,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02),
        ).run(tasks)
        replayed = journal.replay()
        assert replayed[key].state == "quarantined"
        assert replayed[key].attempts == 2
        ok_states = {
            entry.state for entry in replayed.values() if entry.key != key
        }
        assert ok_states <= SUCCESS_STATES
