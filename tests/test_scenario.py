"""Tests for the rose-scenario/1 schema and compiler.

The two contracts pinned here:

* **Strict, typed validation** — every malformed or infeasible document
  raises :class:`ScenarioError` (never a bare exception), and canonical
  JSON round-trips exactly.
* **Legacy bit-identity** — the two paper worlds expressed as scenario
  documents compile to configurations and world geometry byte-identical
  to the hand-written ``tunnel`` / ``s-shape`` ones.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import FaultPlan, FaultRule, PacketType
from repro.core.manifest import config_to_dict
from repro.env.sensors import SensorNoiseProfile
from repro.env.worlds import make_world, s_shape_world, tunnel_world
from repro.errors import ConfigError, ScenarioError
from repro.scenario import (
    GeometrySpec,
    ObstacleSpec,
    Scenario,
    SpawnSpec,
    VehicleSpec,
    compile_config,
    legacy_scenarios,
    scenario_key,
    world_from_scenario,
    world_from_spec,
)


def scenario(**overrides) -> Scenario:
    base = dict(name="t", geometry=GeometrySpec())
    base.update(overrides)
    return Scenario(**base)


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------
class TestSchemaValidation:
    def test_defaults_are_valid(self):
        s = scenario()
        assert s.geometry.family == "straight"
        assert s.noise.is_identity

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(name="Bad Name!"),
            dict(name=""),
            dict(seed=-1),
            dict(seed=2**32),
            dict(seed=1.5),
            dict(cycles_per_sync=1_000),
            dict(max_sim_time=0.0),
            dict(max_sim_time=1e9),
            dict(faults="nope"),
            dict(obstacles=(ObstacleSpec(s=10.0, d=1.0),) * 9),
        ],
    )
    def test_bad_scenario_fields(self, overrides):
        with pytest.raises(ScenarioError):
            scenario(**overrides)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(family="moebius"),
            dict(length=5.0),
            dict(length=500.0),
            dict(width=0.5),
            dict(family="sine", amplitude=0.1),
            dict(family="sine", amplitude=30.0, length=40.0),
            dict(family="sine", periods=9.0),
            dict(family="sine", resolution=5),
            dict(family="zigzag", segments=1),
            dict(family="zigzag", amplitude=20.0),
        ],
    )
    def test_bad_geometry(self, kwargs):
        with pytest.raises(ScenarioError):
            GeometrySpec(**kwargs)

    def test_irrelevant_params_normalized(self):
        # A straight corridor ignores amplitude/periods/segments: they are
        # reset to defaults so equal corridors share one canonical form.
        a = GeometrySpec(family="straight", amplitude=3.0, segments=5)
        b = GeometrySpec(family="straight")
        assert a == b
        assert "amplitude" not in a.to_dict()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(s=-1.0, d=1.0),
            dict(s=10.0, d=1.0, radius=0.01),
            dict(s=10.0, d=1.0, radius=5.0),
            dict(s=10.0, d=1.0, shape="sphere"),
            dict(s=True, d=1.0),
        ],
    )
    def test_bad_obstacle(self, kwargs):
        with pytest.raises(ScenarioError):
            ObstacleSpec(**kwargs)

    def test_spawn_bounds(self):
        with pytest.raises(ScenarioError):
            SpawnSpec(angle_deg=90.0)
        # Cross-field: offset vs. corridor width.
        with pytest.raises(ScenarioError):
            scenario(spawn=SpawnSpec(lateral_offset=1.5))  # width 3.2

    def test_vehicle_bounds(self):
        with pytest.raises(ScenarioError):
            VehicleSpec(kind="submarine")
        with pytest.raises(ScenarioError):
            VehicleSpec(controller="pid")
        with pytest.raises(ScenarioError):
            VehicleSpec(target_velocity=0.0)


class TestRoundTrip:
    def full_scenario(self) -> Scenario:
        return Scenario(
            name="full-doc",
            geometry=GeometrySpec(family="zigzag", length=60.0, width=4.0,
                                  amplitude=2.0, segments=6),
            obstacles=(
                ObstacleSpec(s=20.0, d=1.2, radius=0.4, shape="box"),
                ObstacleSpec(s=40.0, d=-1.2, radius=0.3),
            ),
            spawn=SpawnSpec(angle_deg=10.0, lateral_offset=0.5),
            noise=SensorNoiseProfile(imu_scale=2.0, depth_scale=0.5),
            faults=FaultPlan(
                seed=7,
                rules=(FaultRule(ptype=PacketType.IMU_RESP, drop=0.1),),
            ),
            vehicle=VehicleSpec(target_velocity=4.0),
            seed=42,
            cycles_per_sync=40_000_000,
            max_sim_time=12.0,
        )

    def test_canonical_round_trip(self):
        s = self.full_scenario()
        assert Scenario.from_dict(s.to_dict()) == s
        assert Scenario.from_json(s.canonical_json()) == s

    def test_scenario_key_stable_and_content_addressed(self):
        s = self.full_scenario()
        assert scenario_key(s) == scenario_key(Scenario.from_dict(s.to_dict()))
        assert scenario_key(s) != scenario_key(replace(s, seed=43))

    def test_canonical_json_is_canonical(self):
        text = self.full_scenario().canonical_json()
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda d: d.update(format="rose-scenario/2"),
            lambda d: d.update(surprise=1),
            lambda d: d["geometry"].update(surprise=1),
            lambda d: d["spawn"].update(surprise=1),
            lambda d: d["vehicle"].update(surprise=1),
            lambda d: d["obstacles"][0].update(surprise=1),
            lambda d: d.update(name=7),
            lambda d: d.update(obstacles="lots"),
            lambda d: d.update(faults={"rules": [{"ptype": "NOPE"}]}),
            lambda d: d.update(noise={"imu_scale": "big"}),
        ],
    )
    def test_unknown_or_bad_fields_rejected(self, mangle):
        doc = self.full_scenario().to_dict()
        mangle(doc)
        with pytest.raises(ScenarioError):
            Scenario.from_dict(doc)

    def test_invalid_json_text(self):
        with pytest.raises(ScenarioError):
            Scenario.from_json("{not json")


# ---------------------------------------------------------------------------
# Legacy bit-identity
# ---------------------------------------------------------------------------
class TestLegacyIdentity:
    def test_tunnel_config_identical(self):
        cfg = compile_config(legacy_scenarios()["tunnel"])
        assert config_to_dict(cfg) == config_to_dict(
            __import__("repro.core.config", fromlist=["CoSimConfig"]).CoSimConfig(
                world="tunnel"
            )
        )

    def test_s_shape_config_identical(self):
        from repro.core.config import CoSimConfig

        cfg = compile_config(legacy_scenarios()["s-shape"])
        assert config_to_dict(cfg) == config_to_dict(CoSimConfig(world="s-shape"))

    @pytest.mark.parametrize(
        "name,builder", [("tunnel", tunnel_world), ("s-shape", s_shape_world)]
    )
    def test_world_geometry_identical(self, name, builder):
        want = builder()
        got = world_from_scenario(legacy_scenarios()[name])
        np.testing.assert_array_equal(want.centerline.points, got.centerline.points)
        assert want.half_width == got.half_width
        assert want.goal_arclength == got.goal_arclength
        want_walls = [(s.ax, s.ay, s.bx, s.by) for s in want.walls.segments]
        got_walls = [(s.ax, s.ay, s.bx, s.by) for s in got.walls.segments]
        assert want_walls == got_walls

    def test_native_mapping_keeps_only_non_defaults(self):
        s = scenario(geometry=GeometrySpec(family="straight", length=60.0))
        cfg = compile_config(s)
        assert cfg.world == "tunnel"
        assert cfg.world_params == {"length": 60.0}

    def test_fractional_periods_not_native(self):
        s = scenario(
            geometry=GeometrySpec(family="sine", length=80.0, width=6.4,
                                  amplitude=10.0, periods=0.5)
        )
        assert compile_config(s).world == "scenario"


# ---------------------------------------------------------------------------
# Obstacles and feasibility
# ---------------------------------------------------------------------------
class TestObstacleCompile:
    def test_obstacle_world_has_extra_segments(self):
        s = scenario(obstacles=(ObstacleSpec(s=20.0, d=1.0, radius=0.4),))
        world = world_from_scenario(s)
        base = world_from_scenario(scenario())
        assert len(world.walls.segments) == len(base.walls.segments) + 4
        # The obstacle is solid: a position at its center collides.
        center = world.centerline.point_at_arclength(20.0) + (
            1.0 * world.centerline.normal_at_arclength(20.0)
        )
        assert world.in_collision(center, radius=0.3)

    def test_box_and_diamond_differ(self):
        box = scenario(obstacles=(ObstacleSpec(s=20.0, d=1.0, shape="box"),))
        diamond = scenario(obstacles=(ObstacleSpec(s=20.0, d=1.0),))
        box_walls = {(s.ax, s.ay) for s in world_from_scenario(box).obstacles}
        dia_walls = {(s.ax, s.ay) for s in world_from_scenario(diamond).obstacles}
        assert box_walls != dia_walls

    @pytest.mark.parametrize(
        "obstacle",
        [
            ObstacleSpec(s=0.5, d=1.0),  # spawn region
            ObstacleSpec(s=48.9, d=1.0),  # goal region
            ObstacleSpec(s=20.0, d=3.0),  # outside corridor
            ObstacleSpec(s=20.0, d=0.2),  # covers the centerline
        ],
    )
    def test_infeasible_placement(self, obstacle):
        with pytest.raises(ScenarioError):
            compile_config(scenario(obstacles=(obstacle,)))

    def test_overlapping_obstacles_rejected(self):
        with pytest.raises(ScenarioError):
            compile_config(
                scenario(
                    obstacles=(
                        ObstacleSpec(s=20.0, d=1.0),
                        ObstacleSpec(s=20.3, d=1.1),
                    )
                )
            )

    def test_no_passable_gap_rejected(self):
        # Wide obstacle centered near one wall of a narrow corridor can
        # still pass; park obstacles on both sides far enough apart in s
        # to dodge the pairwise check but with no gap is impossible by
        # construction — instead pin the direct gap arithmetic.
        wide = scenario(
            geometry=GeometrySpec(family="straight", width=2.4),
            obstacles=(ObstacleSpec(s=20.0, d=0.95, radius=0.25),),
        )
        # left gap = 1.2 - 1.2 = 0, right gap = 0.7 + 1.2 = 1.9 -> passable
        compile_config(wide)
        blocked = scenario(
            geometry=GeometrySpec(family="straight", width=2.4),
            obstacles=(ObstacleSpec(s=20.0, d=0.8, radius=0.4),),
        )
        with pytest.raises(ScenarioError):
            compile_config(blocked)


class TestWorldFromSpec:
    def test_registered_as_world_builder(self):
        world = make_world(
            "scenario",
            spec={"geometry": {"family": "straight"}, "obstacles": []},
        )
        assert world.name == "scenario"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(),
            dict(spec="nope"),
            dict(spec={"geometry": {}, "bogus": 1}),
            dict(spec={"geometry": {"family": "nope"}}),
            dict(spec={"geometry": {}, "obstacles": "many"}),
            dict(spec={"geometry": {}}, extra=1),
        ],
    )
    def test_bad_spec_raises_scenario_error(self, kwargs):
        with pytest.raises(ScenarioError):
            world_from_spec(**kwargs)

    def test_scenario_error_is_config_error(self):
        # Typed hierarchy: callers catching ConfigError catch these too.
        assert issubclass(ScenarioError, ConfigError)


# ---------------------------------------------------------------------------
# The compile-or-typed-error property
# ---------------------------------------------------------------------------
geometries = st.one_of(
    st.builds(
        GeometrySpec,
        family=st.just("straight"),
        length=st.floats(20.0, 200.0),
        width=st.floats(2.0, 12.0),
    ),
    st.builds(
        GeometrySpec,
        family=st.just("sine"),
        length=st.floats(40.0, 200.0),
        width=st.floats(2.0, 12.0),
        amplitude=st.floats(0.5, 10.0),
        periods=st.floats(0.25, 4.0),
        resolution=st.integers(33, 401),
    ),
    st.builds(
        GeometrySpec,
        family=st.just("zigzag"),
        length=st.floats(64.0, 200.0),
        width=st.floats(2.0, 12.0),
        amplitude=st.floats(0.5, 1.0),
        segments=st.integers(2, 32),
    ),
)

obstacles = st.lists(
    st.builds(
        ObstacleSpec,
        s=st.floats(0.0, 100.0),
        d=st.floats(-6.0, 6.0),
        radius=st.floats(0.15, 1.5),
        shape=st.sampled_from(["diamond", "box"]),
    ),
    max_size=4,
)


class TestCompileProperty:
    @settings(max_examples=60, deadline=None)
    @given(geometry=geometries, obs=obstacles, offset=st.floats(-1.5, 1.5))
    def test_valid_schema_compiles_or_raises_typed(self, geometry, obs, offset):
        # Any schema-valid document either compiles into a collision-checked
        # world or raises ScenarioError — never a bare exception.
        try:
            s = Scenario(
                name="prop",
                geometry=geometry,
                obstacles=tuple(obs),
                spawn=SpawnSpec(lateral_offset=offset),
            )
        except ScenarioError:
            return  # cross-field validation rejected the document: fine
        try:
            config = compile_config(s)
        except ScenarioError:
            return  # infeasible placement rejected with the typed error
        world = world_from_scenario(s)
        assert world.goal_arclength > 0
        # The spawn pose the mission will use is collision-free.
        pose = world.spawn_pose(lateral_offset=config.initial_lateral_offset)
        assert not world.in_collision(pose.position, radius=0.3)
