"""Exception hierarchy for the RoSE reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at an orchestration boundary.  Subsystems raise
the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class ScenarioError(ConfigError):
    """A ``rose-scenario/1`` document is invalid or infeasible.

    Raised by :mod:`repro.scenario` for schema violations (unknown
    fields, out-of-range parameters, bad format tags) *and* for
    constraint failures found while compiling a scenario into a world
    (obstacle inside a wall, blocked corridor, obstacle on the spawn
    point or goal).  The fuzzer's mutators treat it as "this mutation
    produced an infeasible candidate — draw again"; nothing under
    ``repro.scenario`` raises a bare exception for a bad document."""


class PacketError(ReproError):
    """A packet failed to encode, decode, or validate."""


class TransportError(ReproError):
    """A transport endpoint failed (closed, framing violation, timeout)."""


class BridgeError(ReproError):
    """The RoSE bridge was driven outside its protocol (e.g. queue overflow
    on a full hardware queue, token underflow)."""


class SyncError(ReproError):
    """The synchronizer observed an inconsistent simulation state."""


class WatchdogError(SyncError):
    """The synchronizer's watchdog gave up on the RTL side: a sync step
    did not complete within the configured timeout/regrant budget.  The
    mission runner converts this into a structured
    :class:`~repro.core.cosim.MissionResult` failure instead of crashing."""


class InvariantViolation(ReproError):
    """A runtime conformance invariant failed (token conservation, sim-time
    monotonicity, grant/ack pairing, CRC-discard accounting).  Raised by the
    :mod:`repro.core.invariants` checker when enabled — a violation means the
    co-simulation machinery itself broke its contract, not that the mission
    failed."""


class SweepError(ReproError):
    """A sweep finished with failed tasks (after retries/quarantine).

    Raised by :meth:`~repro.sweep.runner.SweepReport.results` when any
    outcome lacks a usable result — callers that tolerate partial sweeps
    should inspect ``SweepReport.outcomes`` instead."""


class ServeError(ReproError):
    """The sweep service rejected a request or a client call failed.

    Carries the HTTP-ish status code the serve API maps it to (400 bad
    request, 404 unknown job, 409 wrong job state, 502 transport
    failure) so the CLI clients can translate failures into exit codes
    without string matching."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class SimulationError(ReproError):
    """The environment simulator was driven incorrectly (e.g. stepping a
    vehicle that has not taken off, out-of-world query)."""


class TargetProgramError(ReproError):
    """A target program running on the simulated SoC misbehaved."""


class SchedulingError(ReproError):
    """The DNN runtime could not place an operator on the requested
    backend."""


class GraphError(ReproError):
    """An operator graph is malformed (cycles, shape mismatch, unknown
    node)."""
