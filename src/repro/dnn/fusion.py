"""Sensor-fusion controller networks (a Section 6 extension).

"[S]tate-of-the-art DNN workloads in robotics also have more irregular
execution patterns.  For instance, controller networks that perform sensor
fusion have separate backbones for each class of sensor.  In this case,
branches of the network can be executed at different rates depending on
sensor data, providing opportunities for both software and hardware
schedulers to improve performance." (Section 6)

This module builds such a network as three operator graphs:

* a **camera backbone** — a truncated ResNet trunk producing a visual
  feature vector (heavy; executed at the camera frame rate);
* an **IMU backbone** — a small MLP over a window of inertial samples
  (light; executed at the IMU sample rate);
* a **fusion head** — fully-connected layers over the concatenated
  features, emitting the usual dual 3-way heads (runs with the IMU
  branch, consuming the *cached* camera features in between frames).

:class:`FusionSessions` binds the three graphs to one SoC's backends so
an application can execute each branch independently, at its own rate —
the irregular schedule the paper points at.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.graph import Graph, GraphBuilder, Shape
from repro.dnn.resnet import resnet_spec
from repro.dnn.runtime import InferenceReport, InferenceSession
from repro.errors import GraphError
from repro.soc.cpu import CpuModel
from repro.soc.gemmini import GemminiModel

#: Width of each backbone's feature vector.
CAMERA_FEATURE_DIM = 128
IMU_FEATURE_DIM = 32

#: IMU window: 32 samples x 4 channels (3-axis accel + yaw gyro).
IMU_WINDOW = 32
IMU_CHANNELS = 4


def build_camera_backbone(
    variant: str = "resnet6", input_shape: Shape = (3, 128, 128)
) -> Graph:
    """Visual trunk: the named variant's stages, pooled to a feature
    vector and projected to :data:`CAMERA_FEATURE_DIM`."""
    spec = resnet_spec(variant)
    b = GraphBuilder(f"fusion-camera-{variant}", input_shape)
    b.conv(spec.stage_channels[0], 7, stride=2, padding=3, name="stem")
    b.batchnorm()
    b.relu()
    b.maxpool(2, 2)
    for stage, (blocks, channels) in enumerate(
        zip(spec.stage_blocks, spec.stage_channels)
    ):
        for block in range(blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            entry = b.cursor
            in_channels = b.graph.node(entry).output_shape[0]
            b.conv(channels, 3, stride=stride, padding=1)
            b.batchnorm()
            b.relu()
            b.conv(channels, 3, stride=1, padding=1)
            body = b.batchnorm()
            if stride != 1 or in_channels != channels:
                b.conv(channels, 1, stride=stride, src=entry)
                skip = b.batchnorm()
            else:
                skip = entry
            b.add(body, skip)
            b.relu()
    b.globalavgpool()
    b.linear(CAMERA_FEATURE_DIM, name="camera_features")
    b.relu()
    b.output()
    return b.build()


def build_imu_backbone(hidden: int = 64) -> Graph:
    """Inertial trunk: MLP over a flattened IMU window."""
    if hidden < 1:
        raise GraphError("hidden width must be positive")
    b = GraphBuilder("fusion-imu", (IMU_WINDOW * IMU_CHANNELS,))
    b.linear(hidden)
    b.relu()
    b.linear(hidden)
    b.relu()
    b.linear(IMU_FEATURE_DIM, name="imu_features")
    b.relu()
    b.output()
    return b.build()


def build_fusion_head(hidden: int = 64, classes: int = 3) -> Graph:
    """Head over the concatenated camera + IMU features."""
    b = GraphBuilder("fusion-head", (CAMERA_FEATURE_DIM + IMU_FEATURE_DIM,))
    b.linear(hidden)
    b.relu()
    trunk = b.cursor
    for head in ("angular", "lateral"):
        b.linear(classes, src=trunk, name=f"{head}_logits")
        b.softmax(name=f"{head}_probs")
        b.output()
    return b.build()


@dataclass(frozen=True)
class FusionCosts:
    """Per-branch cycle costs on one SoC."""

    camera_report: InferenceReport
    imu_report: InferenceReport
    head_report: InferenceReport

    @property
    def camera_path_cycles(self) -> int:
        """Full visual update: camera branch + head."""
        return self.camera_report.total_cycles + self.head_report.total_cycles

    @property
    def imu_path_cycles(self) -> int:
        """Fast inertial update: IMU branch + head (camera cached)."""
        return self.imu_report.total_cycles + self.head_report.total_cycles


class FusionSessions:
    """The three branches bound to one SoC's compute resources.

    The session-fixed cost (image unpack / normalization) belongs to the
    camera branch only; the IMU branch and head are small enough that the
    per-node dispatch dominates their CPU-side cost, which the reports
    capture naturally.
    """

    def __init__(
        self,
        cpu: CpuModel,
        gemmini: GemminiModel | None,
        camera_variant: str = "resnet6",
    ):
        self.camera = InferenceSession(build_camera_backbone(camera_variant), cpu, gemmini)
        self.imu = InferenceSession(
            build_imu_backbone(), cpu, gemmini, include_session_fixed=False
        )
        self.head = InferenceSession(
            build_fusion_head(), cpu, gemmini, include_session_fixed=False
        )

    @property
    def costs(self) -> FusionCosts:
        return FusionCosts(
            camera_report=self.camera.report,
            imu_report=self.imu.report,
            head_report=self.head.report,
        )
