"""A small numpy neural-network library with explicit backward passes.

This is the trainable counterpart of the paper's PyTorch flow: enough of a
layer zoo (conv / batchnorm / relu / pooling / linear / residual) to build
and train the TrailNet-style dual-head classifiers on rendered camera
images.  Layers follow a uniform protocol:

* ``forward(x)`` caches whatever the backward pass needs;
* ``backward(grad)`` returns the gradient w.r.t. the input and accumulates
  parameter gradients;
* ``parameters()`` yields :class:`Parameter` objects (value + grad).

Convolutions are implemented with im2col so the heavy lifting stays inside
numpy matmuls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Parameter:
    """A trainable array and its gradient accumulator."""

    value: np.ndarray
    grad: np.ndarray = field(init=False)
    name: str = ""

    def __post_init__(self) -> None:
        self.value = np.asarray(self.value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)


class Layer:
    """Base layer protocol."""

    training: bool = True

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        return []

    def train(self) -> None:
        self.training = True

    def eval(self) -> None:
        self.training = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


def _he_init(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    return (rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)).astype(np.float32)


# ---------------------------------------------------------------------------
# im2col helpers
# ---------------------------------------------------------------------------
def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into (N * OH * OW, C * KH * KW) patches."""
    n, c, h, w = x.shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Zero-copy sliding-window view (N, C, H', W', KH, KW), subsampled by
    # stride to (N, C, OH, OW, KH, KW); the reshape below materializes it.
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Fold patch gradients back to the input layout (inverse of im2col).

    Two exact paths:

    * **Disjoint windows** (``stride >= kernel``, e.g. 2x2/2 pooling and
      1x1/2 projection convs): no two patches touch the same input pixel,
      so the fold is a pure scatter — one loop-free reshaped assignment.
    * **Overlapping windows**: the KH x KW kernel-offset loop, where each
      iteration scatter-adds one kernel offset's full (N, C, OH, OW) slab.
      This *is* the vectorized form for overlaps: the per-offset slabs are
      strided numpy assignments, and the loop trip count is the kernel
      area (9 for a 3x3), not the image size.  Flat-index alternatives
      (``np.bincount`` / ``np.add.at`` / ``add.reduceat`` over argsorted
      indices) were measured 1.7-6x slower here and — accumulating in a
      different order — not bit-identical.
    """
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    patches = cols.reshape(n, oh, ow, c, kh, kw)
    if stride >= kh and stride >= kw:
        # Disjoint scatter: lay an (OH, stride, OW, stride) cell grid and
        # assign each patch into its cell's top-left KH x KW corner.  The
        # grid is allocated contiguous so the 6-D reshape is a writable
        # view; it may over/undershoot the padded plane when the last
        # window stops short of the edge, so copy the intersection out.
        grid = np.zeros((n, c, oh * stride, ow * stride), dtype=cols.dtype)
        cells = grid.reshape(n, c, oh, stride, ow, stride)
        cells[:, :, :, :kh, :, :kw] = patches.transpose(0, 3, 1, 4, 2, 5)
        if grid.shape[2] == hp and grid.shape[3] == wp:
            x_pad = grid
        else:
            x_pad = np.zeros((n, c, hp, wp), dtype=cols.dtype)
            eh, ew = min(hp, oh * stride), min(wp, ow * stride)
            x_pad[:, :, :eh, :ew] = grid[:, :, :eh, :ew]
    else:
        x_pad = np.zeros((n, c, hp, wp), dtype=cols.dtype)
        offs = patches.transpose(0, 3, 4, 5, 1, 2)
        for i in range(kh):
            for j in range(kw):
                x_pad[
                    :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
                ] += offs[:, :, i, j]
    if pad > 0:
        return x_pad[:, :, pad : pad + h, pad : pad + w]
    return x_pad


# ---------------------------------------------------------------------------
# Layers
# ---------------------------------------------------------------------------
class Conv2d(Layer):
    """2D convolution (NCHW), square kernel, same dilation=1 semantics."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str = "conv",
    ):
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            _he_init(rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in),
            name=f"{name}.weight",
        )
        self.bias = (
            Parameter(np.zeros(out_channels, dtype=np.float32), name=f"{name}.bias")
            if bias
            else None
        )
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, oh, ow = im2col(x, k, k, s, p)
        w2d = self.weight.value.reshape(self.out_channels, -1)
        out = cols @ w2d.T
        if self.bias is not None:
            out += self.bias.value
        n = x.shape[0]
        self._cache = (x.shape, cols, oh, ow)
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols, oh, ow = self._cache
        n = grad.shape[0]
        g2d = grad.transpose(0, 2, 3, 1).reshape(n * oh * ow, self.out_channels)
        w2d = self.weight.value.reshape(self.out_channels, -1)
        self.weight.grad += (g2d.T @ cols).reshape(self.weight.value.shape)
        if self.bias is not None:
            self.bias.grad += g2d.sum(axis=0)
        dcols = g2d @ w2d
        k, s, p = self.kernel_size, self.stride, self.padding
        return col2im(dcols, x_shape, k, k, s, p, oh, ow)

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params


class BatchNorm2d(Layer):
    """Batch normalization over (N, H, W) per channel, with running stats."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5, name: str = "bn"):
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels, dtype=np.float32), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(channels, dtype=np.float32), name=f"{name}.beta")
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            ).astype(np.float32)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std)
        return self.gamma.value[None, :, None, None] * x_hat + self.beta.value[
            None, :, None, None
        ]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        m = grad.shape[0] * grad.shape[2] * grad.shape[3]
        self.gamma.grad += (grad * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad.sum(axis=(0, 2, 3))
        g = grad * self.gamma.value[None, :, None, None]
        if not self.training:
            return g * inv_std[None, :, None, None]
        gsum = g.sum(axis=(0, 2, 3))[None, :, None, None]
        gxsum = (g * x_hat).sum(axis=(0, 2, 3))[None, :, None, None]
        return inv_std[None, :, None, None] * (g - gsum / m - x_hat * gxsum / m)

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]


class Relu(Layer):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(x.dtype)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad * self._mask


class MaxPool2d(Layer):
    """Max pooling with square window; window must tile the input."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k, s = self.kernel_size, self.stride
        cols, oh, ow = im2col(x, k, k, s, 0)
        n, c = x.shape[0], x.shape[1]
        cols = cols.reshape(n * oh * ow, c, k * k)
        idx = cols.argmax(axis=2)
        out = np.take_along_axis(cols, idx[:, :, None], axis=2)[:, :, 0]
        self._cache = (x.shape, idx, oh, ow)
        return out.reshape(n, oh, ow, c).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, idx, oh, ow = self._cache
        k, s = self.kernel_size, self.stride
        n, c = x_shape[0], x_shape[1]
        g = grad.transpose(0, 2, 3, 1).reshape(n * oh * ow, c)
        dcols = np.zeros((n * oh * ow, c, k * k), dtype=grad.dtype)
        np.put_along_axis(dcols, idx[:, :, None], g[:, :, None], axis=2)
        # Fold (rows, C, K*K) -> (rows, C*K*K) in im2col's layout.
        dcols = dcols.reshape(n * oh * ow, c * k * k)
        return col2im(dcols, x_shape, k, k, s, 0, oh, ow)


class GlobalAvgPool2d(Layer):
    """Average over the spatial dimensions, producing (N, C)."""

    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._shape
        return np.broadcast_to(grad[:, :, None, None], self._shape) / (h * w)


class Flatten(Layer):
    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad.reshape(self._shape)


class Linear(Layer):
    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        name: str = "fc",
    ):
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(
            _he_init(rng, (out_features, in_features), in_features), name=f"{name}.weight"
        )
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32), name=f"{name}.bias")
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.value.T + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += grad.T @ self._x
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class Sequential(Layer):
    def __init__(self, *layers: Layer):
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def train(self) -> None:
        self.training = True
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        self.training = False
        for layer in self.layers:
            layer.eval()


class ResidualBlock(Layer):
    """A basic (two-conv) residual block with optional downsampling."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
        name: str = "block",
    ):
        rng = rng or np.random.default_rng(0)
        self.body = Sequential(
            Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng, name=f"{name}.conv1"),
            BatchNorm2d(out_channels, name=f"{name}.bn1"),
            Relu(),
            Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng, name=f"{name}.conv2"),
            BatchNorm2d(out_channels, name=f"{name}.bn2"),
        )
        self.downsample: Sequential | None = None
        if stride != 1 or in_channels != out_channels:
            self.downsample = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng, name=f"{name}.ds"),
                BatchNorm2d(out_channels, name=f"{name}.dsbn"),
            )
        self.relu = Relu()

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = self.downsample.forward(x) if self.downsample else x
        return self.relu.forward(self.body.forward(x) + identity)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.relu.backward(grad)
        dx_body = self.body.backward(grad)
        dx_skip = self.downsample.backward(grad) if self.downsample else grad
        return dx_body + dx_skip

    def parameters(self) -> list[Parameter]:
        params = self.body.parameters()
        if self.downsample:
            params += self.downsample.parameters()
        return params

    def train(self) -> None:
        self.training = True
        self.body.train()
        if self.downsample:
            self.downsample.train()

    def eval(self) -> None:
        self.training = False
        self.body.eval()
        if self.downsample:
            self.downsample.eval()


class DualHead(Layer):
    """Two parallel linear heads over a shared feature vector.

    Mirrors Figure 8: one head classifies the angular view, the other the
    lateral view (each 3 classes: left / center / right).
    """

    def __init__(self, in_features: int, classes: int = 3, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        self.angular = Linear(in_features, classes, rng=rng, name="head.angular")
        self.lateral = Linear(in_features, classes, rng=rng, name="head.lateral")

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Outputs are concatenated: columns [0:3] angular, [3:6] lateral.
        return np.concatenate(
            [self.angular.forward(x), self.lateral.forward(x)], axis=1
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        c = grad.shape[1] // 2
        return self.angular.backward(grad[:, :c]) + self.lateral.backward(grad[:, c:])

    def parameters(self) -> list[Parameter]:
        return self.angular.parameters() + self.lateral.parameters()


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class CrossEntropyLoss:
    """Softmax cross-entropy with integer labels; returns (loss, dlogits)."""

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        n = logits.shape[0]
        probs = softmax(logits, axis=1)
        eps = 1e-12
        loss = float(-np.log(probs[np.arange(n), labels] + eps).mean())
        dlogits = probs.copy()
        dlogits[np.arange(n), labels] -= 1.0
        return loss, dlogits / n
