"""Pure-reference (naive loop) implementations of the optimized kernels.

The layers in :mod:`repro.dnn.layers` are implemented with im2col /
sliding-window tricks and a scatter-based col2im that were tuned for
speed (PR 2).  This module re-states each of those kernels as the most
obvious loop nest possible — slow, but independently and transparently
correct.  The conformance subsystem's differential oracles
(:mod:`repro.verify.oracles`) execute both implementations on the same
inputs and report the first element where they diverge.

Everything here accumulates in float64 *only where the optimized kernel
does too*; where the optimized path is pure float32 matmul, the
reference uses ``np.dot`` over the identical operand dtypes so exact
(bitwise) agreement is achievable and the oracles can assert equality
rather than closeness where the summation order matches, and tight
``allclose`` bounds elsewhere.
"""

from __future__ import annotations

import numpy as np


def naive_im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Loop-nest equivalent of :func:`repro.dnn.layers.im2col`."""
    n, c, h, w = x.shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.zeros((n * oh * ow, c * kh * kw), dtype=x.dtype)
    row = 0
    for image in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = x[
                    image,
                    :,
                    i * stride : i * stride + kh,
                    j * stride : j * stride + kw,
                ]
                cols[row] = patch.reshape(-1)
                row += 1
    return cols, oh, ow


def naive_col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Loop-nest equivalent of :func:`repro.dnn.layers.col2im`."""
    n, c, h, w = x_shape
    x_pad = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    row = 0
    for image in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = cols[row].reshape(c, kh, kw)
                x_pad[
                    image,
                    :,
                    i * stride : i * stride + kh,
                    j * stride : j * stride + kw,
                ] += patch
                row += 1
    if pad > 0:
        return x_pad[:, :, pad : pad + h, pad : pad + w]
    return x_pad


def naive_conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Direct convolution: explicit loops over every output element.

    Each output pixel is the dot product of one flattened input patch
    with one flattened filter — the same two operands, in the same
    order, that the optimized ``cols @ w2d.T`` matmul reduces, so the
    results agree to float32 matmul accumulation differences only.
    """
    n, c, h, w = x.shape
    oc, _, kh, kw = weight.shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.zeros((n, oc, oh, ow), dtype=np.float32)
    flat_filters = weight.reshape(oc, -1)
    for image in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = x[
                    image,
                    :,
                    i * stride : i * stride + kh,
                    j * stride : j * stride + kw,
                ].reshape(-1)
                for f in range(oc):
                    out[image, f, i, j] = np.dot(patch, flat_filters[f])
    if bias is not None:
        out += bias[None, :, None, None]
    return out


def naive_maxpool_forward(x: np.ndarray, k: int, stride: int) -> np.ndarray:
    """Direct max pooling: explicit loops over every output element."""
    n, c, h, w = x.shape
    oh = (h - k) // stride + 1
    ow = (w - k) // stride + 1
    out = np.zeros((n, c, oh, ow), dtype=x.dtype)
    for image in range(n):
        for channel in range(c):
            for i in range(oh):
                for j in range(ow):
                    window = x[
                        image,
                        channel,
                        i * stride : i * stride + k,
                        j * stride : j * stride + k,
                    ]
                    out[image, channel, i, j] = window.max()
    return out


def naive_maxpool_backward(
    x: np.ndarray, grad: np.ndarray, k: int, stride: int
) -> np.ndarray:
    """Route each output gradient to its window's first maximum.

    Ties break to the first (row-major) maximum, matching ``argmax`` in
    the optimized path's flattened-window layout.
    """
    n, c, h, w = x.shape
    oh = (h - k) // stride + 1
    ow = (w - k) // stride + 1
    dx = np.zeros_like(x)
    for image in range(n):
        for channel in range(c):
            for i in range(oh):
                for j in range(ow):
                    window = x[
                        image,
                        channel,
                        i * stride : i * stride + k,
                        j * stride : j * stride + k,
                    ]
                    flat_index = int(window.argmax())
                    di, dj = divmod(flat_index, k)
                    dx[image, channel, i * stride + di, j * stride + dj] += grad[
                        image, channel, i, j
                    ]
    return dx


def naive_global_avgpool_forward(x: np.ndarray) -> np.ndarray:
    """Spatial mean via explicit accumulation."""
    n, c, h, w = x.shape
    out = np.zeros((n, c), dtype=x.dtype)
    for image in range(n):
        for channel in range(c):
            out[image, channel] = x[image, channel].mean()
    return out


def naive_linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray
) -> np.ndarray:
    """Row-by-row dot products (same operand order as ``x @ W.T``)."""
    n = x.shape[0]
    out_features = weight.shape[0]
    out = np.zeros((n, out_features), dtype=np.float32)
    for row in range(n):
        for f in range(out_features):
            out[row, f] = np.dot(x[row], weight[f])
    return out + bias
