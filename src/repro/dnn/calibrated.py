"""Calibrated behavioural trail classifier.

The closed-loop experiments need each ResNet variant's *behaviour* — its
validation accuracy and its prediction confidence — without retraining the
paper's full-size networks (see DESIGN.md, substitutions).  This module
models a trained dual-head classifier as a noisy perception channel:

1. the network perceives the true continuous quantity (heading error /
   lateral offset) through additive Gaussian noise whose standard deviation
   is **fitted so the classifier's accuracy on the validation distribution
   matches Table 3** (72 % for ResNet6 up to 86 % for ResNet34), and
2. it emits a softmax over {left, center, right} whose sharpness is set by
   a per-network temperature — deeper networks classify "with a higher
   confidence level" (Section 5.2), shallower ones make "less confident
   predictions [which] results in a wider turn radius".

Because Equation 2 scales control gains by softmax outputs, both effects
propagate into the flight dynamics exactly as the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dnn.dataset import (
    ANGULAR_BOUNDARY,
    LATERAL_BOUNDARY_FRACTION,
    angular_class,
    lateral_class,
)

#: Normalized class-bin geometry shared by both heads (values divided by
#: the class boundary): outer bins span [1.15, 4.0], the center bin
#: [-0.85, 0.85] — mirroring the dataset generator's sampling margins.
_BIN_MARGIN = 0.15
_BIN_LIMIT = 4.0


def _phi(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF."""
    return 0.5 * (1.0 + np.vectorize(math.erf)(x / math.sqrt(2.0)))


def classification_accuracy(sigma: float, grid: int = 400) -> float:
    """Accuracy of the noisy-perception classifier on the validation
    distribution, for noise std ``sigma`` (in units of the class boundary).

    The validation distribution is class-balanced with values uniform in
    each (margin-trimmed) bin; a prediction is correct when the perceived
    value lands in the same bin as the truth.
    """
    if sigma <= 0:
        return 1.0
    bins = [
        (-_BIN_LIMIT, -1.0 - _BIN_MARGIN),  # right class values
        (-1.0 + _BIN_MARGIN, 1.0 - _BIN_MARGIN),  # center
        (1.0 + _BIN_MARGIN, _BIN_LIMIT),  # left
    ]
    boundaries = [(-np.inf, -1.0), (-1.0, 1.0), (1.0, np.inf)]
    acc = 0.0
    for (lo, hi), (blo, bhi) in zip(bins, boundaries):
        v = np.linspace(lo, hi, grid)
        upper = _phi((bhi - v) / sigma) if np.isfinite(bhi) else np.ones_like(v)
        lower = _phi((blo - v) / sigma) if np.isfinite(blo) else np.zeros_like(v)
        acc += float(np.mean(upper - lower))
    return acc / 3.0


def fit_sigma(target_accuracy: float, tolerance: float = 1e-4) -> float:
    """Invert :func:`classification_accuracy` by bisection."""
    if not (1.0 / 3.0 < target_accuracy < 1.0):
        raise ValueError(
            f"target_accuracy must be in (1/3, 1), got {target_accuracy}"
        )
    lo, hi = 1e-3, 20.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if classification_accuracy(mid) > target_accuracy:
            lo = mid  # too accurate -> need more noise
        else:
            hi = mid
        if hi - lo < tolerance:
            break
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class ClassifierProfile:
    """Behavioural parameters of one trained network.

    ``temperature`` is in units of the class boundary: the softmax over
    class centers uses logits ``-(v - c_k)^2 / (2 temperature^2)``.

    ``correlation_time`` is the persistence of the perception error in
    simulated seconds.  A trained network's mistakes are not independent
    across adjacent video frames — a visually ambiguous stretch of the
    course stays ambiguous — so the closed-loop error process is an
    Ornstein-Uhlenbeck walk whose *marginal* distribution still matches the
    fitted ``sigma`` (validation accuracy is computed on independent
    images and is unaffected).
    """

    name: str
    validation_accuracy: float
    temperature: float
    sigma: float
    correlation_time: float = 0.6

    @staticmethod
    def from_accuracy(
        name: str,
        validation_accuracy: float,
        temperature: float,
        correlation_time: float = 0.6,
    ) -> "ClassifierProfile":
        return ClassifierProfile(
            name=name,
            validation_accuracy=validation_accuracy,
            temperature=temperature,
            sigma=fit_sigma(validation_accuracy),
            correlation_time=correlation_time,
        )


#: Table 3's validation accuracies, with temperatures decreasing in depth:
#: deeper networks produce sharper (more confident) softmax outputs.
_PROFILE_PARAMS: dict[str, tuple[float, float]] = {
    "resnet6": (0.72, 1.60),
    "resnet11": (0.78, 1.25),
    "resnet14": (0.82, 0.95),
    "resnet18": (0.83, 0.75),
    "resnet34": (0.86, 0.55),
}

#: Accuracy cost of post-training INT8 quantization (a standard ~1-3 point
#: drop for small classification networks), with a matching confidence
#: softening.
_QUANTIZATION_ACCURACY_DROP = 0.02
_QUANTIZATION_TEMPERATURE_FACTOR = 1.15

_PROFILE_CACHE: dict[tuple[str, bool], ClassifierProfile] = {}


def classifier_profile(name: str, quantized: bool = False) -> ClassifierProfile:
    """Profile for a named ResNet variant (cached; sigma fit is ~ms).

    ``quantized`` models the INT8 deployment of the same network: slightly
    lower accuracy and slightly softer confidence.
    """
    if name not in _PROFILE_PARAMS:
        raise KeyError(
            f"no classifier profile for {name!r}; available: {sorted(_PROFILE_PARAMS)}"
        )
    key = (name, quantized)
    profile = _PROFILE_CACHE.get(key)
    if profile is None:
        accuracy, temperature = _PROFILE_PARAMS[name]
        suffix = ""
        if quantized:
            accuracy -= _QUANTIZATION_ACCURACY_DROP
            temperature *= _QUANTIZATION_TEMPERATURE_FACTOR
            suffix = "-int8"
        # setdefault: check-then-set from shard threads would race; the
        # profile is a pure function of (name, quantized), so whichever
        # thread wins inserts an identical object.
        profile = _PROFILE_CACHE.setdefault(
            key, ClassifierProfile.from_accuracy(name + suffix, accuracy, temperature)
        )
    return profile


@dataclass(frozen=True)
class TrailInference:
    """One dual-head inference result."""

    angular_probs: np.ndarray  # (3,) over {left, center, right}
    lateral_probs: np.ndarray
    angular_pred: int
    lateral_pred: int


#: Class centers in boundary units; outer classes centered at 2x boundary.
_CLASS_CENTERS = np.array([2.0, 0.0, -2.0], dtype=np.float64)  # left, center, right


class CalibratedTrailClassifier:
    """Stateful (seeded) behavioural classifier for one network profile.

    Per-head perception error follows an Ornstein-Uhlenbeck process in
    simulated time when consecutive calls carry timestamps; calls without
    a timestamp draw independent errors (the validation-set regime).
    """

    def __init__(self, profile: ClassifierProfile, seed: int = 0):
        self.profile = profile
        self._rng = np.random.default_rng(seed)
        self._bias = np.zeros(2)  # angular, lateral error state
        self._last_timestamp: float | None = None

    def _advance_bias(self, timestamp: float | None) -> None:
        """Evolve the OU error state to ``timestamp``."""
        sigma = self.profile.sigma
        if timestamp is None or self._last_timestamp is None:
            self._bias = self._rng.normal(0.0, sigma, 2)
        else:
            dt = max(timestamp - self._last_timestamp, 0.0)
            decay = np.exp(-dt / self.profile.correlation_time)
            innovation = sigma * np.sqrt(max(1.0 - decay**2, 0.0))
            self._bias = decay * self._bias + self._rng.normal(0.0, innovation, 2)
        if timestamp is not None:
            self._last_timestamp = timestamp

    def _head(self, normalized_value: float, bias: float) -> np.ndarray:
        """Softmax over classes given the truth in boundary units."""
        perceived = normalized_value + bias
        logits = -((perceived - _CLASS_CENTERS) ** 2) / (
            2.0 * self.profile.temperature**2
        )
        logits -= logits.max()
        probs = np.exp(logits)
        return probs / probs.sum()

    def infer(
        self,
        heading_error: float,
        lateral_offset: float,
        half_width: float,
        timestamp: float | None = None,
    ) -> TrailInference:
        """Classify the pose captured by a camera frame.

        ``heading_error`` is the drone's yaw relative to the course tangent
        (CCW positive — positive means "angled left"); ``lateral_offset``
        is positive to the left of the centerline.  ``timestamp`` (simulated
        seconds) enables the temporally correlated error model.
        """
        ang_norm = heading_error / ANGULAR_BOUNDARY
        lat_norm = lateral_offset / (LATERAL_BOUNDARY_FRACTION * half_width)
        self._advance_bias(timestamp)
        angular_probs = self._head(ang_norm, float(self._bias[0]))
        lateral_probs = self._head(lat_norm, float(self._bias[1]))
        return TrailInference(
            angular_probs=angular_probs,
            lateral_probs=lateral_probs,
            angular_pred=int(angular_probs.argmax()),
            lateral_pred=int(lateral_probs.argmax()),
        )

    def validation_accuracy(self, samples: int = 3000, seed: int = 123) -> tuple[float, float]:
        """Empirical per-head accuracy on the validation distribution.

        Used by Table 3's bench to report the reproduced accuracy column.
        """
        rng = np.random.default_rng(seed)
        half_width = 1.6
        correct_a = correct_l = 0
        for _ in range(samples):
            cls = int(rng.integers(0, 3))
            sign = {0: 1.0, 1: 0.0, 2: -1.0}[cls]
            if cls == 1:
                ang = rng.uniform(-0.85, 0.85) * ANGULAR_BOUNDARY
                lat = rng.uniform(-0.85, 0.85) * LATERAL_BOUNDARY_FRACTION * half_width
            else:
                ang = sign * rng.uniform(1.15, 4.0) * ANGULAR_BOUNDARY
                lat = sign * rng.uniform(1.15, 4.0) * LATERAL_BOUNDARY_FRACTION * half_width
            result = self.infer(ang, lat, half_width)
            correct_a += int(result.angular_pred == angular_class(ang))
            correct_l += int(result.lateral_pred == lateral_class(lat, half_width))
        return correct_a / samples, correct_l / samples
