"""DNN runtime: schedules operator graphs onto CPU / Gemmini backends.

This is the ONNX-Runtime analog of Section 3.3: "The ONNX models can then
be executed using ONNX-Runtime either directly on CPUs or systolic-array
based matrix accelerators like Gemmini."  The placement policy matches
that flow: matmul-shaped operators (conv / linear) run on Gemmini when the
SoC has one, everything else (batchnorm, relu, residual adds, pooling,
softmax) runs on the host core, and every node pays the runtime's dispatch
overhead.  Each inference also pays a fixed session cost (image unpack,
FP32 normalization).

The resulting :class:`InferenceReport` is the unit of time the simulated
target program consumes per inference, and its ``gemmini_cycles`` feed the
accelerator activity factor of Figure 13.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.dnn.graph import Graph, MATMUL_OPS, Node, OpType
from repro.soc.cpu import CpuModel
from repro.soc.gemmini import GemminiModel

#: Cost of re-activating a session after another one ran (cold caches and
#: weight refetch); the dynamic runtime of Section 5.3 pays this whenever
#: it switches networks, which is why it completes ~15% fewer inferences
#: than a single static session.
SESSION_SWITCH_CYCLES: int = 6_000_000


@dataclass(frozen=True)
class NodeCost:
    """Placement and cycle cost of one scheduled node."""

    name: str
    op: str
    backend: str  # "gemmini" | "cpu"
    cycles: int
    gemmini_cycles: int


@dataclass(frozen=True)
class InferenceReport:
    """Cycle accounting for one full inference."""

    graph_name: str
    total_cycles: int
    gemmini_cycles: int
    dispatch_cycles: int
    session_fixed_cycles: int
    node_costs: tuple[NodeCost, ...] = field(default=())

    @property
    def cpu_cycles(self) -> int:
        return self.total_cycles - self.gemmini_cycles

    def latency_seconds(self, frequency_hz: float) -> float:
        return self.total_cycles / frequency_hz

    def latency_ms(self, frequency_hz: float = 1e9) -> float:
        return 1e3 * self.latency_seconds(frequency_hz)


class InferenceSession:
    """A loaded model bound to an SoC's compute resources.

    The schedule is static (graphs are static), so the cycle plan is
    computed once at load time and every :meth:`run` replays it — exactly
    the cost structure of a real ONNX-Runtime session with static shapes.
    """

    def __init__(
        self,
        graph: Graph,
        cpu: CpuModel,
        gemmini: GemminiModel | None = None,
        include_session_fixed: bool = True,
        stage_timer=None,
    ):
        graph.validate()
        self.graph = graph
        self.cpu = cpu
        self.gemmini = gemmini
        #: Optional :class:`~repro.core.timing.StageTimer`; ``run`` charges
        #: its wall time to the ``inference`` stage when set.
        self.stage_timer = stage_timer
        # The fixed session cost models image unpack + normalization;
        # branches that do not consume a camera frame (e.g. a fusion
        # network's IMU trunk or shared head) skip it.
        self._include_session_fixed = include_session_fixed
        self._plan = self._build_plan()
        self.inferences_run = 0

    def _cost_node(self, node: Node) -> NodeCost:
        if node.op == OpType.INPUT:
            return NodeCost(node.name, node.op.value, "cpu", 0, 0)
        if node.op in MATMUL_OPS:
            if self.gemmini is not None:
                cycles = self.gemmini.node_cost(node).total_cycles
                return NodeCost(node.name, node.op.value, "gemmini", cycles, cycles)
            cycles = self.cpu.matmul_cycles(node.macs)
            return NodeCost(node.name, node.op.value, "cpu", cycles, 0)
        if node.op == OpType.FLATTEN:
            return NodeCost(node.name, node.op.value, "cpu", 0, 0)
        cycles = self.cpu.elementwise_cycles(node.output_elems)
        return NodeCost(node.name, node.op.value, "cpu", cycles, 0)

    def _build_plan(self) -> InferenceReport:
        node_costs = tuple(self._cost_node(node) for node in self.graph)
        op_nodes = sum(1 for n in self.graph if n.op != OpType.INPUT)
        dispatch = op_nodes * self.cpu.dispatch_cycles
        session_fixed = (
            self.cpu.session_fixed_cycles if self._include_session_fixed else 0
        )
        total = sum(c.cycles for c in node_costs) + dispatch + session_fixed
        return InferenceReport(
            graph_name=self.graph.name,
            total_cycles=total,
            gemmini_cycles=sum(c.gemmini_cycles for c in node_costs),
            dispatch_cycles=dispatch,
            session_fixed_cycles=session_fixed,
            node_costs=node_costs,
        )

    @property
    def report(self) -> InferenceReport:
        """The static per-inference cost plan."""
        return self._plan

    def run(self) -> InferenceReport:
        """Execute one inference; updates accelerator busy counters."""
        if self.stage_timer is not None:
            t0 = time.perf_counter()
            try:
                return self._run()
            finally:
                self.stage_timer.add("inference", time.perf_counter() - t0)
        return self._run()

    def _run(self) -> InferenceReport:
        if self.gemmini is not None:
            self.gemmini.busy_cycles += self._plan.gemmini_cycles
            self.gemmini.ops_executed += sum(
                1 for c in self._plan.node_costs if c.backend == "gemmini"
            )
        self.inferences_run += 1
        return self._plan


def latency_table(
    graphs: dict[str, Graph], cpu: CpuModel, gemmini: GemminiModel | None
) -> dict[str, InferenceReport]:
    """Per-model inference reports — the generator behind Table 3."""
    table = {}
    for name, graph in graphs.items():
        session = InferenceSession(graph, cpu, gemmini)
        table[name] = session.report
    return table
