"""Training loop for the runnable trail classifier (the PyTorch flow).

Implements minibatch SGD with momentum and weight decay over the dual-head
cross-entropy objective: both heads are supervised on every image (the
angular head with the angular label, the lateral head with the lateral
label), and per-head validation accuracy is reported — the quantity
Table 3 lists for each network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dnn.dataset import TrailDataset
from repro.dnn.layers import CrossEntropyLoss, Parameter
from repro.dnn.resnet import TrailNetModel


@dataclass
class SgdConfig:
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    batch_size: int = 32
    epochs: int = 5
    seed: int = 0
    lr_decay: float = 0.7  # multiplicative, per epoch


class SgdOptimizer:
    """SGD with classical momentum and decoupled weight decay."""

    def __init__(self, parameters: list[Parameter], config: SgdConfig):
        self.parameters = parameters
        self.config = config
        self.lr = config.learning_rate
        self._velocity = [np.zeros_like(p.value) for p in parameters]

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        cfg = self.config
        for p, v in zip(self.parameters, self._velocity):
            v *= cfg.momentum
            v -= self.lr * (p.grad + cfg.weight_decay * p.value)
            p.value += v

    def decay_lr(self) -> None:
        self.lr *= self.config.lr_decay


@dataclass
class EpochStats:
    epoch: int
    loss: float
    angular_accuracy: float
    lateral_accuracy: float


@dataclass
class TrainResult:
    history: list[EpochStats] = field(default_factory=list)

    @property
    def final(self) -> EpochStats:
        if not self.history:
            raise ValueError("training produced no epochs")
        return self.history[-1]


def evaluate(model: TrailNetModel, dataset: TrailDataset, batch_size: int = 64) -> tuple[float, float]:
    """Per-head accuracy of ``model`` on ``dataset`` (eval mode)."""
    model.eval()
    correct_a = correct_l = 0
    for start in range(0, len(dataset), batch_size):
        batch = slice(start, start + batch_size)
        ang_probs, lat_probs = model.predict_probs(dataset.images[batch])
        correct_a += int((ang_probs.argmax(axis=1) == dataset.angular_labels[batch]).sum())
        correct_l += int((lat_probs.argmax(axis=1) == dataset.lateral_labels[batch]).sum())
    n = len(dataset)
    return correct_a / n, correct_l / n


def train(
    model: TrailNetModel,
    train_set: TrailDataset,
    val_set: TrailDataset,
    config: SgdConfig | None = None,
) -> TrainResult:
    """Train the dual-head model; returns per-epoch stats."""
    config = config or SgdConfig()
    rng = np.random.default_rng(config.seed)
    optimizer = SgdOptimizer(model.parameters(), config)
    loss_fn = CrossEntropyLoss()
    result = TrainResult()
    classes = model.classes

    for epoch in range(config.epochs):
        model.train()
        order = rng.permutation(len(train_set))
        losses = []
        for start in range(0, len(order), config.batch_size):
            idx = order[start : start + config.batch_size]
            if len(idx) < 2:
                continue  # batchnorm needs at least two samples
            images = train_set.images[idx]
            optimizer.zero_grad()
            logits = model.forward(images)
            loss_a, grad_a = loss_fn(logits[:, :classes], train_set.angular_labels[idx])
            loss_l, grad_l = loss_fn(logits[:, classes:], train_set.lateral_labels[idx])
            model.backward(np.concatenate([grad_a, grad_l], axis=1))
            optimizer.step()
            losses.append(loss_a + loss_l)
        acc_a, acc_l = evaluate(model, val_set)
        result.history.append(
            EpochStats(
                epoch=epoch,
                loss=float(np.mean(losses)) if losses else float("nan"),
                angular_accuracy=acc_a,
                lateral_accuracy=acc_l,
            )
        )
        optimizer.decay_lr()
    return result
