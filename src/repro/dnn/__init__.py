"""DNN stack: the PyTorch / ONNX / ONNX-Runtime substitute.

Three layers of functionality:

* **Runnable networks** (:mod:`repro.dnn.layers`): a small numpy NN library
  with explicit forward/backward, used to actually train and run the tiny
  trail-classifier CNN on rendered camera images.
* **Operator graphs** (:mod:`repro.dnn.graph`, :mod:`repro.dnn.resnet`):
  ONNX-like static graphs of the paper's ResNet-6/11/14/18/34 dual-head
  controllers with exact MAC / parameter / activation counts — the input to
  the SoC cycle models.
* **Runtime** (:mod:`repro.dnn.runtime`): the ONNX-Runtime analog that
  schedules a graph's operators onto CPU / Gemmini backends and reports
  cycle counts and accelerator activity.

:mod:`repro.dnn.calibrated` provides the calibrated behavioural classifier
used by the closed-loop experiments (see DESIGN.md for the substitution
rationale).
"""

from repro.dnn.graph import Graph, Node, OpType
from repro.dnn.resnet import RESNET_NAMES, build_resnet_graph, resnet_spec
from repro.dnn.layers import (
    BatchNorm2d,
    Conv2d,
    CrossEntropyLoss,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Relu,
    Sequential,
)
from repro.dnn.calibrated import CalibratedTrailClassifier, ClassifierProfile
from repro.dnn.dataset import TrailDataset, generate_trail_dataset

__all__ = [
    "Graph",
    "Node",
    "OpType",
    "RESNET_NAMES",
    "build_resnet_graph",
    "resnet_spec",
    "Conv2d",
    "BatchNorm2d",
    "Relu",
    "Linear",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Sequential",
    "CrossEntropyLoss",
    "CalibratedTrailClassifier",
    "ClassifierProfile",
    "TrailDataset",
    "generate_trail_dataset",
]
