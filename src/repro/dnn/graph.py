"""ONNX-like static operator graphs ("onnx-lite").

The paper's build flow "exports trained models in ONNX format" which are
then "executed using ONNX-Runtime either directly on CPUs or systolic-array
based matrix accelerators like Gemmini" (Section 3.3).  This module is the
model-interchange layer of that flow: a static operator graph with exact
per-node shape, MAC, parameter and activation accounting.  The SoC cycle
models consume these numbers; the runtime schedules the nodes.

Graphs serialize to/from JSON so trained models can be stored alongside
experiment configurations, like the artifact's ``trail_dnn_resnet*.onnx``
files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import GraphError

Shape = tuple[int, ...]

FP32_BYTES = 4


class OpType(str, Enum):
    """Operator vocabulary: the ops a TrailNet-style ResNet needs."""

    INPUT = "input"
    CONV = "conv"
    BATCHNORM = "batchnorm"
    RELU = "relu"
    MAXPOOL = "maxpool"
    GLOBALAVGPOOL = "globalavgpool"
    FLATTEN = "flatten"
    LINEAR = "linear"
    ADD = "add"
    SOFTMAX = "softmax"


#: Ops the Gemmini systolic array can execute (matmul-shaped); everything
#: else runs on the host CPU, matching the paper's ONNX-Runtime + Gemmini
#: execution split.
MATMUL_OPS = frozenset({OpType.CONV, OpType.LINEAR})


@dataclass
class Node:
    """One operator instance.

    ``macs`` counts multiply-accumulates; ``output_elems`` the number of
    output activations (element-wise op cost); ``weight_bytes`` the FP32
    parameter footprint streamed from DRAM.
    """

    name: str
    op: OpType
    inputs: list[str]
    output_shape: Shape
    macs: int = 0
    param_count: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def output_elems(self) -> int:
        n = 1
        for d in self.output_shape:
            n *= d
        return n

    @property
    def weight_bytes(self) -> int:
        return self.param_count * FP32_BYTES

    @property
    def output_bytes(self) -> int:
        return self.output_elems * FP32_BYTES

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "op": self.op.value,
            "inputs": list(self.inputs),
            "output_shape": list(self.output_shape),
            "macs": self.macs,
            "param_count": self.param_count,
            "attrs": dict(self.attrs),
        }

    @staticmethod
    def from_dict(d: dict) -> "Node":
        return Node(
            name=d["name"],
            op=OpType(d["op"]),
            inputs=list(d["inputs"]),
            output_shape=tuple(d["output_shape"]),
            macs=int(d["macs"]),
            param_count=int(d["param_count"]),
            attrs=dict(d.get("attrs", {})),
        )


class Graph:
    """An append-ordered DAG of :class:`Node`.

    Nodes must be appended after all of their inputs, so append order is a
    valid topological order; :meth:`validate` enforces it.
    """

    def __init__(self, name: str, input_shape: Shape):
        self.name = name
        self.input_shape = tuple(input_shape)
        self.nodes: dict[str, Node] = {}
        self.outputs: list[str] = []
        self.add(Node(name="input", op=OpType.INPUT, inputs=[], output_shape=self.input_shape))

    def add(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise GraphError(f"duplicate node name {node.name!r} in graph {self.name!r}")
        for src in node.inputs:
            if src not in self.nodes:
                raise GraphError(
                    f"node {node.name!r} references unknown input {src!r} "
                    "(nodes must be appended after their inputs)"
                )
        self.nodes[node.name] = node
        return node

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes.values())

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise GraphError(f"no node named {name!r} in graph {self.name!r}") from None

    def mark_output(self, name: str) -> None:
        self.node(name)
        if name not in self.outputs:
            self.outputs.append(name)

    def validate(self) -> None:
        """Check the append order is topological and outputs exist."""
        seen: set[str] = set()
        for node in self:
            for src in node.inputs:
                if src not in seen:
                    raise GraphError(
                        f"graph {self.name!r} is not topologically ordered: "
                        f"{node.name!r} consumes {src!r} before it is defined"
                    )
            seen.add(node.name)
        if not self.outputs:
            raise GraphError(f"graph {self.name!r} has no outputs marked")
        for out in self.outputs:
            self.node(out)

    # ------------------------------------------------------------------
    # Aggregate accounting
    # ------------------------------------------------------------------
    @property
    def total_macs(self) -> int:
        return sum(n.macs for n in self)

    @property
    def total_params(self) -> int:
        return sum(n.param_count for n in self)

    @property
    def total_weight_bytes(self) -> int:
        return self.total_params * FP32_BYTES

    @property
    def total_activation_elems(self) -> int:
        """Total activations produced by non-matmul (CPU-executed) ops."""
        return sum(n.output_elems for n in self if n.op not in MATMUL_OPS and n.op != OpType.INPUT)

    def count_ops(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self:
            counts[node.op.value] = counts.get(node.op.value, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Serialization ("onnx-lite")
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "onnx-lite/1",
                "name": self.name,
                "input_shape": list(self.input_shape),
                "outputs": list(self.outputs),
                "nodes": [n.to_dict() for n in self if n.op != OpType.INPUT],
            }
        )

    @staticmethod
    def from_json(text: str) -> "Graph":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise GraphError(f"invalid onnx-lite JSON: {exc}") from exc
        if data.get("format") != "onnx-lite/1":
            raise GraphError(f"unsupported graph format {data.get('format')!r}")
        graph = Graph(data["name"], tuple(data["input_shape"]))
        for node_dict in data["nodes"]:
            graph.add(Node.from_dict(node_dict))
        for out in data["outputs"]:
            graph.mark_output(out)
        graph.validate()
        return graph


class GraphBuilder:
    """Sequential graph construction with shape propagation.

    Tracks a "cursor" (the most recent node) so networks read as a linear
    layer list, with :meth:`checkpoint` / explicit input names for skip
    connections.
    """

    def __init__(self, name: str, input_shape: Shape):
        self.graph = Graph(name, input_shape)
        self.cursor = "input"
        self._counter: dict[str, int] = {}

    def _fresh(self, prefix: str) -> str:
        i = self._counter.get(prefix, 0)
        self._counter[prefix] = i + 1
        return f"{prefix}_{i}"

    @property
    def shape(self) -> Shape:
        return self.graph.node(self.cursor).output_shape

    def _append(self, node: Node) -> str:
        self.graph.add(node)
        self.cursor = node.name
        return node.name

    # -- ops -------------------------------------------------------------
    def conv(
        self,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        src: str | None = None,
        name: str | None = None,
    ) -> str:
        src = src or self.cursor
        c, h, w = self.graph.node(src).output_shape
        oh = (h + 2 * padding - kernel_size) // stride + 1
        ow = (w + 2 * padding - kernel_size) // stride + 1
        if oh <= 0 or ow <= 0:
            raise GraphError(
                f"conv reduces {h}x{w} below 1x1 (k={kernel_size}, s={stride}, p={padding})"
            )
        macs = out_channels * c * kernel_size * kernel_size * oh * ow
        params = out_channels * c * kernel_size * kernel_size
        return self._append(
            Node(
                name=name or self._fresh("conv"),
                op=OpType.CONV,
                inputs=[src],
                output_shape=(out_channels, oh, ow),
                macs=macs,
                param_count=params,
                attrs={"kernel": kernel_size, "stride": stride, "padding": padding},
            )
        )

    def batchnorm(self, src: str | None = None, name: str | None = None) -> str:
        src = src or self.cursor
        shape = self.graph.node(src).output_shape
        return self._append(
            Node(
                name=name or self._fresh("bn"),
                op=OpType.BATCHNORM,
                inputs=[src],
                output_shape=shape,
                param_count=2 * shape[0],
            )
        )

    def relu(self, src: str | None = None, name: str | None = None) -> str:
        src = src or self.cursor
        shape = self.graph.node(src).output_shape
        return self._append(
            Node(name=name or self._fresh("relu"), op=OpType.RELU, inputs=[src], output_shape=shape)
        )

    def maxpool(self, kernel_size: int, stride: int, src: str | None = None, name: str | None = None) -> str:
        src = src or self.cursor
        c, h, w = self.graph.node(src).output_shape
        oh = (h - kernel_size) // stride + 1
        ow = (w - kernel_size) // stride + 1
        if oh <= 0 or ow <= 0:
            raise GraphError(f"maxpool reduces {h}x{w} below 1x1")
        return self._append(
            Node(
                name=name or self._fresh("maxpool"),
                op=OpType.MAXPOOL,
                inputs=[src],
                output_shape=(c, oh, ow),
                attrs={"kernel": kernel_size, "stride": stride},
            )
        )

    def add(self, a: str, b: str, name: str | None = None) -> str:
        sa = self.graph.node(a).output_shape
        sb = self.graph.node(b).output_shape
        if sa != sb:
            raise GraphError(f"add shape mismatch: {a}:{sa} vs {b}:{sb}")
        return self._append(
            Node(name=name or self._fresh("add"), op=OpType.ADD, inputs=[a, b], output_shape=sa)
        )

    def globalavgpool(self, src: str | None = None, name: str | None = None) -> str:
        src = src or self.cursor
        c, _, _ = self.graph.node(src).output_shape
        return self._append(
            Node(
                name=name or self._fresh("gap"),
                op=OpType.GLOBALAVGPOOL,
                inputs=[src],
                output_shape=(c,),
            )
        )

    def linear(self, out_features: int, src: str | None = None, name: str | None = None) -> str:
        src = src or self.cursor
        shape = self.graph.node(src).output_shape
        if len(shape) != 1:
            raise GraphError(f"linear requires a flat input, got {shape}")
        in_features = shape[0]
        return self._append(
            Node(
                name=name or self._fresh("fc"),
                op=OpType.LINEAR,
                inputs=[src],
                output_shape=(out_features,),
                macs=in_features * out_features,
                param_count=in_features * out_features + out_features,
            )
        )

    def softmax(self, src: str | None = None, name: str | None = None) -> str:
        src = src or self.cursor
        shape = self.graph.node(src).output_shape
        return self._append(
            Node(name=name or self._fresh("softmax"), op=OpType.SOFTMAX, inputs=[src], output_shape=shape)
        )

    def output(self, src: str | None = None) -> None:
        self.graph.mark_output(src or self.cursor)

    def build(self) -> Graph:
        self.graph.validate()
        return self.graph
