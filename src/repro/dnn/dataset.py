"""Procedural trail-image dataset generation (Section 4.2.2).

The paper trains its classifier heads on images "sampled ... with
randomized positions, angles, and textures" from the AirSim tunnel
environment: 2000 images per class for each of the three angular classes
and three lateral classes (12,000 total), evaluated on a separate set of
1,200 validation images.

We reproduce the pipeline against the software-rendered FPV camera: sample
poses whose heading error / lateral offset fall in the class bins below,
render the corridor view, and label with both heads' classes.  "Texture"
randomization maps to per-image render-noise reseeding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.env.camera import CameraParams, FpvCamera
from repro.env.geometry import Pose2
from repro.env.worlds import World, tunnel_world

#: Class index convention shared with the calibrated classifier:
#: 0 = left, 1 = center, 2 = right.
LEFT, CENTER, RIGHT = 0, 1, 2
CLASS_NAMES = ("left", "center", "right")

#: Angular class boundaries (radians of heading error).  The drone is
#: "angled left" when its heading error exceeds +ANGULAR_BOUNDARY (CCW
#: positive), "angled right" below -ANGULAR_BOUNDARY.
ANGULAR_BOUNDARY = math.radians(7.5)

#: Lateral class boundaries as a fraction of the corridor half-width.
LATERAL_BOUNDARY_FRACTION = 0.20


def angular_class(heading_error: float) -> int:
    """Class of the UAV's angle relative to the trail."""
    if heading_error > ANGULAR_BOUNDARY:
        return LEFT
    if heading_error < -ANGULAR_BOUNDARY:
        return RIGHT
    return CENTER


def lateral_class(offset: float, half_width: float) -> int:
    """Class of the UAV's lateral offset relative to the trail.

    ``offset`` is positive to the left of the centerline (the world's
    course-coordinate convention).
    """
    boundary = LATERAL_BOUNDARY_FRACTION * half_width
    if offset > boundary:
        return LEFT
    if offset < -boundary:
        return RIGHT
    return CENTER


@dataclass
class TrailDataset:
    """Images plus per-head labels and the underlying continuous pose."""

    images: np.ndarray  # (N, 1, H, W) float32 in [0, 1]
    angular_labels: np.ndarray  # (N,) int
    lateral_labels: np.ndarray  # (N,) int
    heading_errors: np.ndarray  # (N,) float radians
    lateral_offsets: np.ndarray  # (N,) float meters
    half_width: float

    def __len__(self) -> int:
        return self.images.shape[0]

    def split(self, fraction: float, seed: int = 0) -> tuple["TrailDataset", "TrailDataset"]:
        """Random split into (first, second) with ``fraction`` in the first."""
        if not (0.0 < fraction < 1.0):
            raise ValueError("fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        first, second = order[:cut], order[cut:]

        def take(idx: np.ndarray) -> "TrailDataset":
            return TrailDataset(
                images=self.images[idx],
                angular_labels=self.angular_labels[idx],
                lateral_labels=self.lateral_labels[idx],
                heading_errors=self.heading_errors[idx],
                lateral_offsets=self.lateral_offsets[idx],
                half_width=self.half_width,
            )

        return take(first), take(second)


def _sample_in_class(rng: np.random.Generator, cls: int, boundary: float, limit: float) -> float:
    """Sample a continuous value inside a class bin.

    Left bin: (boundary, limit]; center: [-boundary, boundary]; right:
    [-limit, -boundary).  Values keep a small margin off the boundary so
    labels are unambiguous.
    """
    margin = 0.15 * boundary
    if cls == LEFT:
        return float(rng.uniform(boundary + margin, limit))
    if cls == RIGHT:
        return float(rng.uniform(-limit, -boundary - margin))
    return float(rng.uniform(-boundary + margin, boundary - margin))


def generate_trail_dataset(
    samples_per_class: int = 50,
    world: World | None = None,
    camera: CameraParams | None = None,
    seed: int = 0,
    balance: str = "angular",
) -> TrailDataset:
    """Render a class-balanced dataset.

    ``balance`` selects which head's classes are balanced (the paper builds
    one dataset per head); the other head's value is drawn from its full
    range, so both labels remain informative.
    """
    if balance not in ("angular", "lateral"):
        raise ValueError("balance must be 'angular' or 'lateral'")
    world = world or tunnel_world()
    cam_params = camera or CameraParams()
    rng = np.random.default_rng(seed)
    cam = FpvCamera(cam_params, seed=seed + 1)

    half_width = world.half_width
    angle_limit = math.radians(30.0)
    offset_limit = 0.8 * half_width
    lateral_boundary = LATERAL_BOUNDARY_FRACTION * half_width

    n = samples_per_class * 3
    images = np.empty((n, 1, cam_params.height, cam_params.width), dtype=np.float32)
    ang = np.empty(n, dtype=np.int64)
    lat = np.empty(n, dtype=np.int64)
    errs = np.empty(n, dtype=np.float64)
    offs = np.empty(n, dtype=np.float64)

    i = 0
    for cls in (LEFT, CENTER, RIGHT):
        for _ in range(samples_per_class):
            if balance == "angular":
                heading_error = _sample_in_class(rng, cls, ANGULAR_BOUNDARY, angle_limit)
                offset = float(rng.uniform(-offset_limit, offset_limit))
            else:
                offset = _sample_in_class(rng, cls, lateral_boundary, offset_limit)
                heading_error = float(rng.uniform(-angle_limit, angle_limit))

            # Random position along the course, away from the end caps.
            s = float(rng.uniform(2.0, world.goal_arclength - 10.0))
            center = world.centerline.point_at_arclength(s)
            tangent = world.centerline.tangent_at_arclength(s)
            normal = world.centerline.normal_at_arclength(s)
            pos = center + offset * normal
            course_yaw = math.atan2(tangent[1], tangent[0])
            pose = Pose2(float(pos[0]), float(pos[1]), course_yaw + heading_error)

            # "Randomized textures": reseed the render noise per image.
            cam.reset(seed=int(rng.integers(0, 2**31 - 1)))
            images[i, 0] = cam.render(world, pose)
            ang[i] = angular_class(heading_error)
            lat[i] = lateral_class(offset, half_width)
            errs[i] = heading_error
            offs[i] = offset
            i += 1

    order = rng.permutation(n)
    return TrailDataset(
        images=images[order],
        angular_labels=ang[order],
        lateral_labels=lat[order],
        heading_errors=errs[order],
        lateral_offsets=offs[order],
        half_width=half_width,
    )
