"""TrailNet-style dual-head ResNet controllers (Figure 8).

The paper evaluates ResNet-6/11/14/18/34 variants of TrailNet's
architecture: a ResNet backbone feeding two 3-way classifier heads, one for
the UAV's angle relative to the trail and one for its lateral offset.  This
module defines the variants twice, for the two jobs the paper needs them
for:

* :func:`build_resnet_graph` produces the exact operator graph (onnx-lite)
  with real MAC / parameter counts — what the SoC cycle models execute to
  obtain Table 3's latencies;
* :func:`build_trainable_trailnet` instantiates a *runnable* scaled-down
  network from :mod:`repro.dnn.layers` for the real train/eval path on
  rendered camera images.

Depth naming convention (matching the paper's counting of weighted
layers): stem conv + 2 x (blocks per stage) convs + 1 head layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.dnn.graph import Graph, GraphBuilder, Shape
from repro.dnn.layers import (
    Conv2d,
    BatchNorm2d,
    DualHead,
    Flatten,
    GlobalAvgPool2d,
    MaxPool2d,
    Relu,
    ResidualBlock,
    Sequential,
)
from repro.errors import GraphError


@dataclass(frozen=True)
class ResNetSpec:
    """Architecture of one ResNet variant."""

    name: str
    stage_blocks: tuple[int, ...]
    stage_channels: tuple[int, ...]
    classes: int = 3

    @property
    def depth(self) -> int:
        """Weighted-layer count: stem + 2 convs per block + head."""
        return 1 + 2 * sum(self.stage_blocks) + 1


_SPECS: dict[str, ResNetSpec] = {
    spec.name: spec
    for spec in (
        ResNetSpec("resnet6", (1, 1), (64, 128)),
        ResNetSpec("resnet11", (1, 1, 1, 1), (64, 128, 256, 512)),
        ResNetSpec("resnet14", (1, 2, 2, 1), (64, 128, 256, 512)),
        ResNetSpec("resnet18", (2, 2, 2, 2), (64, 128, 256, 512)),
        ResNetSpec("resnet34", (3, 4, 6, 3), (64, 128, 256, 512)),
    )
}

RESNET_NAMES: tuple[str, ...] = tuple(sorted(_SPECS, key=lambda n: _SPECS[n].depth))

#: Camera-image resolution assumed by the latency graphs (FPV frame scaled
#: to the network input, FP32, CHW).
DEFAULT_INPUT_SHAPE: Shape = (3, 128, 128)


def resnet_spec(name: str) -> ResNetSpec:
    try:
        return _SPECS[name]
    except KeyError:
        raise GraphError(
            f"unknown ResNet variant {name!r}; available: {list(RESNET_NAMES)}"
        ) from None


def _basic_block_graph(b: GraphBuilder, channels: int, stride: int) -> None:
    """Append one basic residual block at the builder cursor."""
    entry = b.cursor
    in_channels = b.graph.node(entry).output_shape[0]
    b.conv(channels, 3, stride=stride, padding=1)
    b.batchnorm()
    b.relu()
    b.conv(channels, 3, stride=1, padding=1)
    body = b.batchnorm()
    if stride != 1 or in_channels != channels:
        b.conv(channels, 1, stride=stride, src=entry)
        skip = b.batchnorm()
    else:
        skip = entry
    b.add(body, skip)
    b.relu()


def build_resnet_graph(name: str, input_shape: Shape = DEFAULT_INPUT_SHAPE) -> Graph:
    """Build the dual-head operator graph for a named variant (memoized).

    Outputs are the two softmaxed heads: ``angular_probs`` and
    ``lateral_probs`` (3 classes each: left / center / right).

    Graphs are static and treated as immutable after construction (the
    runtime only reads them), so repeated calls with the same
    ``(name, input_shape)`` return one shared instance — a
    :class:`CoSimulation` or sweep worker pays the build cost once per
    model rather than once per session.
    """
    return _build_resnet_graph_cached(name, tuple(input_shape))


@lru_cache(maxsize=None)
def _build_resnet_graph_cached(name: str, input_shape: Shape) -> Graph:
    spec = resnet_spec(name)
    b = GraphBuilder(name, input_shape)
    # Stem: 7x7/2 conv + 2x2 maxpool, as in standard ResNets.
    b.conv(spec.stage_channels[0], 7, stride=2, padding=3, name="stem")
    b.batchnorm()
    b.relu()
    b.maxpool(2, 2)
    for stage, (blocks, channels) in enumerate(
        zip(spec.stage_blocks, spec.stage_channels)
    ):
        for block in range(blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            _basic_block_graph(b, channels, stride)
    trunk = b.globalavgpool()
    for head in ("angular", "lateral"):
        b.linear(spec.classes, src=trunk, name=f"{head}_logits")
        b.softmax(name=f"{head}_probs")
        b.output()
    return b.build()


def build_all_graphs(input_shape: Shape = DEFAULT_INPUT_SHAPE) -> dict[str, Graph]:
    """All five variants, keyed by name, ordered by depth."""
    return {name: build_resnet_graph(name, input_shape) for name in RESNET_NAMES}


# ---------------------------------------------------------------------------
# Runnable (trainable) network
# ---------------------------------------------------------------------------
class TrailNetModel:
    """A runnable dual-head classifier over rendered camera images.

    A scaled-down instantiation (narrow channels, small input) of the same
    topology, practical to train with the numpy layer library.  Used by the
    training example and the train/eval tests; the full-size variants exist
    as operator graphs for the cycle models.
    """

    def __init__(
        self,
        input_shape: Shape = (1, 32, 48),
        stage_blocks: tuple[int, ...] = (1, 1),
        stage_channels: tuple[int, ...] = (8, 16),
        classes: int = 3,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        self.input_shape = tuple(input_shape)
        c_in = input_shape[0]
        layers: list = [
            Conv2d(c_in, stage_channels[0], 3, stride=1, padding=1, bias=False, rng=rng, name="stem"),
            BatchNorm2d(stage_channels[0], name="stem_bn"),
            Relu(),
            MaxPool2d(2, 2),
        ]
        in_ch = stage_channels[0]
        for stage, (blocks, channels) in enumerate(zip(stage_blocks, stage_channels)):
            for block in range(blocks):
                stride = 2 if (stage > 0 and block == 0) else 1
                layers.append(
                    ResidualBlock(in_ch, channels, stride=stride, rng=rng, name=f"s{stage}b{block}")
                )
                in_ch = channels
        layers.append(GlobalAvgPool2d())
        self.backbone = Sequential(*layers)
        self.head = DualHead(in_ch, classes=classes, rng=rng)
        self.classes = classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits of shape (N, 2 * classes): angular then lateral."""
        return self.head.forward(self.backbone.forward(x))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.backbone.backward(self.head.backward(grad))

    def parameters(self):
        return self.backbone.parameters() + self.head.parameters()

    def train(self) -> None:
        self.backbone.train()

    def eval(self) -> None:
        self.backbone.eval()

    def predict_probs(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(angular_probs, lateral_probs), each (N, classes)."""
        from repro.dnn.layers import softmax

        logits = self.forward(x)
        c = self.classes
        return softmax(logits[:, :c], axis=1), softmax(logits[:, c:], axis=1)


def build_trainable_trailnet(seed: int = 0, input_shape: Shape = (1, 32, 48)) -> TrailNetModel:
    """Convenience constructor used by examples and tests."""
    return TrailNetModel(input_shape=input_shape, seed=seed)
