"""Parallel mission-sweep engine with deterministic result caching.

The paper's evaluation is sweep-shaped: every figure re-runs the same
co-simulation across a grid of configs (velocities, models, SoCs, sync
intervals, fault rates).  This package turns the per-figure serial loops
into one engine:

* :class:`SweepRunner` fans configs over worker processes with
  deterministic per-task seeding — parallel results are bit-identical to
  serial ones;
* :class:`ResultCache` stores results content-addressed by config hash
  under a code fingerprint, so warm re-runs skip simulation entirely;
* :func:`mission_signature` is the bit-identity check both rely on;
* :class:`RetryPolicy` / :class:`TaskFailure` (``repro.sweep.resilience``)
  give the runner its supervised-execution vocabulary — bounded retries
  with deterministic backoff, per-task failure taxonomy;
* :class:`SweepJournal` (``repro.sweep.journal``) is the crash-safe
  append-only log behind ``python -m repro sweep --resume``;
* :class:`ChaosPlan` (``repro.sweep.chaos``) injects deterministic worker
  faults so tests and CI can prove the resilience claims.
"""

from repro.sweep.cache import ResultCache, default_cache_dir
from repro.sweep.chaos import CHAOS_ENV, ChaosError, ChaosPlan, load_chaos_plan
from repro.sweep.fingerprint import code_fingerprint, config_key
from repro.sweep.journal import JOURNAL_FORMAT, SweepJournal, sweep_id
from repro.sweep.resilience import (
    OUTCOME_STATES,
    SUCCESS_STATES,
    RetryPolicy,
    TaskFailure,
    backoff_sleep,
)
from repro.sweep.runner import (
    BATCH_ENV,
    SweepOutcome,
    SweepReport,
    SweepRunner,
    SweepTask,
    sweep_missions,
)
from repro.sweep.signature import canonical_payload, mission_signature

__all__ = [
    "BATCH_ENV",
    "CHAOS_ENV",
    "ChaosError",
    "ChaosPlan",
    "JOURNAL_FORMAT",
    "OUTCOME_STATES",
    "ResultCache",
    "RetryPolicy",
    "SUCCESS_STATES",
    "SweepJournal",
    "SweepOutcome",
    "SweepReport",
    "SweepRunner",
    "SweepTask",
    "TaskFailure",
    "backoff_sleep",
    "canonical_payload",
    "code_fingerprint",
    "config_key",
    "default_cache_dir",
    "load_chaos_plan",
    "mission_signature",
    "sweep_id",
    "sweep_missions",
]
