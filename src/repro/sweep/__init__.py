"""Parallel mission-sweep engine with deterministic result caching.

The paper's evaluation is sweep-shaped: every figure re-runs the same
co-simulation across a grid of configs (velocities, models, SoCs, sync
intervals, fault rates).  This package turns the per-figure serial loops
into one engine:

* :class:`SweepRunner` fans configs over worker processes with
  deterministic per-task seeding — parallel results are bit-identical to
  serial ones;
* :class:`ResultCache` stores results content-addressed by config hash
  under a code fingerprint, so warm re-runs skip simulation entirely;
* :func:`mission_signature` is the bit-identity check both rely on.
"""

from repro.sweep.cache import ResultCache, default_cache_dir
from repro.sweep.fingerprint import code_fingerprint, config_key
from repro.sweep.runner import (
    SweepOutcome,
    SweepReport,
    SweepRunner,
    SweepTask,
    sweep_missions,
)
from repro.sweep.signature import canonical_payload, mission_signature

__all__ = [
    "ResultCache",
    "canonical_payload",
    "SweepOutcome",
    "SweepReport",
    "SweepRunner",
    "SweepTask",
    "code_fingerprint",
    "config_key",
    "default_cache_dir",
    "mission_signature",
    "sweep_missions",
]
