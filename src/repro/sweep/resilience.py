"""Failure taxonomy and deterministic retry policy for resilient sweeps.

A sweep is only as reliable as its worst task: one worker exception,
hang, or pool crash used to abort the whole run.  This module defines
the vocabulary the supervised execution loop speaks instead of raising:

* :data:`OUTCOME_STATES` — the per-task terminal states a
  :class:`~repro.sweep.runner.SweepOutcome` can carry;
* :class:`TaskFailure` — one failed attempt (kind, message, attempt);
* :class:`RetryPolicy` — bounded, capped exponential backoff whose
  jitter is *seeded from the task's config key*, never from wall clock
  or global RNG state, so retry schedules are reproducible and mission
  signatures / cached envelopes stay bit-identical;
* :func:`backoff_sleep` / :func:`wait_for` — the only blessed
  ``time.sleep`` sites in ``repro.sweep`` (lint rule RES002): every
  other sweep-side wait must route through the policy.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.errors import ConfigError

#: Terminal states a sweep task can end in.  ``ok`` / ``from_cache``
#: carry a result; the failure states carry a :class:`TaskFailure`.
OUTCOME_STATES: tuple[str, ...] = (
    "ok",
    "from_cache",
    "failed",
    "timed_out",
    "crashed",
    "quarantined",
)

#: States that mean "this outcome has a usable MissionResult".
SUCCESS_STATES: frozenset[str] = frozenset({"ok", "from_cache"})

#: Failure kinds observed by the supervisor, mapped to the terminal
#: state used when the retry budget is a single attempt (with retries
#: enabled, an exhausted task is ``quarantined`` instead — see
#: :meth:`RetryPolicy.terminal_state`).
FAILURE_KINDS: dict[str, str] = {
    "exception": "failed",  # the worker raised; the exception crossed the pool
    "timeout": "timed_out",  # the attempt exceeded the per-task deadline
    "pool_crash": "crashed",  # the worker process died (BrokenProcessPool)
}


@dataclass(frozen=True)
class TaskFailure:
    """One failed attempt at a sweep task."""

    kind: str  # "exception" | "timeout" | "pool_crash"
    message: str
    attempt: int  # 1-based attempt number that produced this failure

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ConfigError(
                f"unknown failure kind {self.kind!r}; "
                f"expected one of {sorted(FAILURE_KINDS)}"
            )
        if self.attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {self.attempt}")

    def describe(self) -> str:
        return f"attempt {self.attempt}: {self.kind} ({self.message})"

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "message": self.message, "attempt": self.attempt}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "TaskFailure":
        return cls(
            kind=str(payload["kind"]),
            message=str(payload["message"]),
            attempt=int(payload["attempt"]),  # type: ignore[call-overload]
        )


def _jitter_unit(key: str, attempt: int) -> float:
    """A reproducible uniform sample in ``[0, 1)`` from (key, attempt).

    Derived from a SHA-256 digest, not an RNG stream: there is no global
    state to seed, no draw order to perturb, and the same (key, attempt)
    pair yields the same jitter on every host and every run.
    """
    digest = hashlib.sha256(f"backoff:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff and seeded jitter.

    ``delay(attempt) = min(max_delay, base_delay * multiplier**(attempt-1))``
    scaled by a jitter factor in ``[1 - jitter, 1 + jitter]`` derived
    from the task's config key — deterministic, per-task decorrelated,
    and free of wall-clock reads in any signature-bearing path.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {self.jitter}")

    # ------------------------------------------------------------------
    def backoff_delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before re-dispatching ``key`` after ``attempt``."""
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        raw = self.base_delay * self.multiplier ** (attempt - 1)
        capped = min(self.max_delay, raw)
        unit = _jitter_unit(key, attempt)  # [0, 1)
        return capped * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def allows_retry(self, attempt: int) -> bool:
        """Whether a failure on ``attempt`` leaves budget for another try."""
        return attempt < self.max_attempts

    def terminal_state(self, kind: str) -> str:
        """The outcome state for a task whose retry budget is exhausted.

        With retries enabled the task is a poison task — it failed every
        permitted attempt — and is ``quarantined``.  With a single-attempt
        policy (retries disabled) the one failure keeps its own kind, so
        failure taxonomies stay honest in no-retry sweeps.
        """
        if self.max_attempts > 1:
            return "quarantined"
        return FAILURE_KINDS[kind]

    def to_dict(self) -> dict[str, object]:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "multiplier": self.multiplier,
            "jitter": self.jitter,
        }


def backoff_sleep(policy: RetryPolicy, key: str, attempt: int) -> float:
    """Sleep out the policy's backoff for (key, attempt); returns seconds.

    The shared backoff helper: the serial execution path calls this
    between attempts.  Lint rule RES002 forbids ``time.sleep`` anywhere
    else under ``repro/sweep`` so every wait is policy-shaped and
    bounded.
    """
    delay = policy.backoff_delay(key, attempt)
    if delay > 0:
        time.sleep(delay)
    return delay


def wait_for(seconds: float) -> None:
    """Sleep a supervisor-computed interval (pool backoff scheduling).

    The supervised loop never blocks a worker slot on backoff — it folds
    per-task ``ready_at`` times into its wait deadline and parks here
    only when every slot is idle.  Lives in this module so RES002 keeps
    a single auditable sleep site for the whole sweep package.
    """
    if seconds > 0:
        time.sleep(seconds)
