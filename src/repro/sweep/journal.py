"""Append-only, crash-safe sweep journal (``rose-journal/1``).

The :class:`~repro.sweep.cache.ResultCache` is the sweep's artifact
store; the journal is its write-ahead log.  Every sweep writes one JSONL
file under ``<cache root>/journal/`` named by the sweep's content
identity (code fingerprint + ordered task list), and appends one record
per completed task — ``ok``, ``from_cache``, or a terminal failure —
flushed and fsync'd at the moment of completion.  A sweep killed
mid-flight therefore leaves a journal whose replay says exactly which
tasks finished; ``python -m repro sweep --resume`` recomputes only the
rest and reassembles a report bit-identical to an uninterrupted run
(results themselves come back from the cache).

Crash-safety contract:

* appends are a single ``write`` of one newline-terminated line,
  followed by ``flush`` + ``os.fsync`` — a torn write can only truncate
  the *final* line;
* :meth:`SweepJournal.replay` tolerates a truncated or garbage trailing
  line (it is ignored, its task simply recomputes);
* the file is append-only across restarts: each run appends a ``begin``
  record and replay only reads events after the last ``begin``, so a
  non-resume re-run starts a fresh segment without destroying history.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

JOURNAL_FORMAT = "rose-journal/1"


def append_jsonl(path: Path, record: dict[str, object]) -> None:
    """Append one record to a crash-safe JSONL log.

    The shared append discipline behind every durable log in this
    repository (the sweep journal here, the serve job store in
    :mod:`repro.serve.jobs`): one ``write`` of a single
    newline-terminated line, then ``flush`` + ``os.fsync``, so a torn
    write can only truncate the final line.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())


def read_jsonl(path: Path) -> list[dict[str, object]]:
    """Parsed records from an append-only JSONL log.

    Tolerates a truncated or garbage *trailing* line (the crash artifact
    :func:`append_jsonl` can leave behind); unparsable content anywhere
    else means the file is not such a log, and the error propagates.
    """
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return []
    records: list[dict[str, object]] = []
    lines = raw.split(b"\n")
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            # A torn append can only damage the final line; anything
            # unparsable there is the crash artifact and is dropped.
            # Garbage mid-file means the file is not a journal.
            if index >= len(lines) - 2:
                continue
            raise
        if isinstance(record, dict):
            records.append(record)
    return records


def sweep_id(fingerprint: str, tasks: Sequence[tuple[str, str]]) -> str:
    """Content identity of a sweep: code fingerprint + ordered task list.

    ``tasks`` is the ordered ``(name, config_key)`` list.  Any change to
    the code, the task set, or the task order yields a different journal
    — the same invalidation philosophy as the result cache.
    """
    digest = hashlib.sha256()
    digest.update(fingerprint.encode())
    for name, key in tasks:
        digest.update(b"\0")
        digest.update(name.encode())
        digest.update(b"\x01")
        digest.update(key.encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class ReplayEntry:
    """One task's last recorded terminal event in the current segment."""

    name: str
    key: str
    state: str
    attempts: int


class SweepJournal:
    """One sweep's append-only JSONL event log."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.appended = 0

    # ------------------------------------------------------------------
    @classmethod
    def for_sweep(
        cls,
        root: str | Path,
        fingerprint: str,
        tasks: Sequence[tuple[str, str]],
    ) -> "SweepJournal":
        """The journal for this (fingerprint, task-list) under ``root``."""
        identity = sweep_id(fingerprint, tasks)
        return cls(Path(root) / "journal" / f"{identity[:16]}.jsonl")

    # ------------------------------------------------------------------
    def _append(self, record: dict[str, object]) -> None:
        """Append one record: single write, then flush + fsync."""
        append_jsonl(self.path, record)
        self.appended += 1

    def begin(
        self,
        fingerprint: str,
        tasks: Sequence[tuple[str, str]],
        policy: dict[str, object] | None = None,
    ) -> None:
        """Open a fresh segment: replay will only see events after this."""
        self._append(
            {
                "format": JOURNAL_FORMAT,
                "event": "begin",
                "sweep": sweep_id(fingerprint, tasks),
                "fingerprint": fingerprint,
                "tasks": [{"name": name, "key": key} for name, key in tasks],
                "policy": policy or {},
            }
        )

    def resume(self, replayed: int) -> None:
        """Mark a resume point (informational; does not reset the segment)."""
        self._append({"event": "resume", "replayed": replayed})

    def record_task(
        self,
        name: str,
        key: str,
        state: str,
        attempts: int,
        failure: dict[str, object] | None = None,
        owner: str | None = None,
    ) -> None:
        """Record one task reaching a terminal state (fsync'd).

        ``owner`` attributes the completion to the shard/worker that
        produced it (informational: replay keys on the config key).
        """
        record: dict[str, object] = {
            "event": "task",
            "name": name,
            "key": key,
            "state": state,
            "attempts": attempts,
        }
        if failure is not None:
            record["failure"] = failure
        if owner is not None:
            record["owner"] = owner
        self._append(record)

    def end(self, summary: dict[str, object] | None = None) -> None:
        """Mark a clean finish (absent after a crash — that is the point)."""
        self._append({"event": "end", "summary": summary or {}})

    # ------------------------------------------------------------------
    def _records(self) -> Iterable[dict[str, object]]:
        """Parsed records, skipping a torn/garbage trailing line."""
        return read_jsonl(self.path)

    def replay(self) -> dict[str, ReplayEntry]:
        """Task states from the latest segment, keyed by config key.

        Returns the last terminal event per task after the most recent
        ``begin`` record.  Missing file or empty segment replay to an
        empty dict — the sweep simply runs from scratch.
        """
        entries: dict[str, ReplayEntry] = {}
        for record in self._records():
            event = record.get("event")
            if event == "begin":
                entries = {}
            elif event == "task":
                try:
                    entry = ReplayEntry(
                        name=str(record["name"]),
                        key=str(record["key"]),
                        state=str(record["state"]),
                        attempts=int(record["attempts"]),  # type: ignore[call-overload]
                    )
                except (KeyError, TypeError, ValueError):
                    continue  # damaged record: recompute that task
                entries[entry.key] = entry
        return entries
