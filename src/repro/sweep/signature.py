"""Bit-identity signatures for mission results.

:func:`mission_signature` digests everything a result *means* — scalar
metrics, the full trajectory, the synchronizer's per-step op stream, and
the sync counters — while excluding host-side observations (wall-clock
``stage_timings``) that legitimately differ between runs.  Two results
with equal signatures are interchangeable for every figure and table.

This is the contract the sweep engine is tested against: serial,
parallel, and cache-hit executions of the same config must produce equal
signatures.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.core.cosim import MissionResult


def _num(value: float | None) -> str:
    """Canonical text for a number: ``repr`` round-trips floats exactly."""
    if value is None:
        return "None"
    return repr(float(value))


#: Column names for the nested list rows of :func:`canonical_payload` —
#: the conformance diff reports translate list indices through these.
TRAJECTORY_FIELDS = ("time", "x", "y", "z", "yaw", "speed", "s", "d")


def canonical_payload(result: MissionResult) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "completed": bool(result.completed),
        "mission_time": _num(result.mission_time),
        "failure_reason": result.failure_reason,
        "sim_time": _num(result.sim_time),
        "collisions": int(result.collisions),
        "progress": _num(result.progress),
        "average_velocity": _num(result.average_velocity),
        "activity_factor": _num(result.activity_factor),
        "soc_cycles": int(result.soc_cycles),
        "gemmini_busy_cycles": int(result.gemmini_busy_cycles),
        "inference_count": int(result.inference_count),
        "mean_inference_latency_ms": _num(result.mean_inference_latency_ms),
        "trajectory": [
            [_num(v) for v in (p.time, p.x, p.y, p.z, p.yaw, p.speed, p.s, p.d)]
            for p in result.trajectory
        ],
    }
    if result.logger is not None:
        payload["op_stream"] = [
            [
                _num(v) if isinstance(v, float) else v
                for v in row.as_tuple()
            ]
            for row in result.logger.rows
        ]
    stats = result.sync_stats
    if stats is not None:
        payload["sync_stats"] = {
            "steps": stats.steps,
            "packets_from_rtl": stats.packets_from_rtl,
            "packets_to_rtl": stats.packets_to_rtl,
            "camera_requests": stats.camera_requests,
            "imu_requests": stats.imu_requests,
            "depth_requests": stats.depth_requests,
            "lidar_requests": stats.lidar_requests,
            "state_requests": stats.state_requests,
            "target_commands": stats.target_commands,
            "last_target": [_num(v) for v in stats.last_target],
            "camera_request_times": [_num(t) for t in stats.camera_request_times],
            "faults": stats.fault_summary(),
        }
    return payload


def mission_signature(result: MissionResult) -> str:
    """Content hash of a result's simulated behaviour (never wall time)."""
    payload = json.dumps(
        canonical_payload(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()
