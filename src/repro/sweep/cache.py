"""Content-addressed on-disk cache of :class:`MissionResult` objects.

Layout::

    <root>/<fingerprint[:16]>/<config_key>.pkl

One directory per code fingerprint: editing any source file under
``repro`` moves the fingerprint, so stale results are never *read* — they
are simply orphaned under the old directory (``prune`` deletes them).

Entries are pickled envelopes carrying their own key and fingerprint so a
mis-filed or truncated file is detected on read; corrupt entries are
*quarantined* — renamed to ``<key>.pkl.corrupt`` so the evidence survives
for post-mortem — counted in :meth:`ResultCache.stats`, and treated as
misses.  Writes go through a temp file and ``os.replace`` so concurrent
workers and interrupted runs can never publish a half-written entry.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from pathlib import Path

from repro.core.config import CoSimConfig
from repro.core.cosim import MissionResult
from repro.sweep.fingerprint import code_fingerprint, config_key

CACHE_FORMAT = "rose-sweep-cache/1"

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_SWEEP_CACHE_DIR`` or ``~/.cache/rose-repro/sweeps``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "rose-repro" / "sweeps"


class ResultCache:
    """Mission results keyed by config hash, scoped to one code fingerprint."""

    def __init__(self, root: str | Path, fingerprint: str | None = None):
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    def _dir(self) -> Path:
        return self.root / self.fingerprint[:16]

    def _path(self, key: str) -> Path:
        return self._dir() / f"{key}.pkl"

    def key_for(self, config: CoSimConfig) -> str:
        return config_key(config)

    # ------------------------------------------------------------------
    def get(self, config: CoSimConfig) -> MissionResult | None:
        """The cached result for ``config``, or ``None`` on a miss."""
        key = self.key_for(config)
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
            if (
                envelope.get("format") != CACHE_FORMAT
                or envelope.get("key") != key
                or envelope.get("fingerprint") != self.fingerprint
            ):
                raise ValueError("cache envelope mismatch")
            result = envelope["result"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated, unreadable, or mis-filed: quarantine the file so
            # the evidence survives for post-mortem, then recompute.  The
            # rename also vacates the key, so the recomputed result's
            # ``put`` publishes cleanly.
            try:
                os.replace(path, path.with_name(path.name + ".corrupt"))
            except OSError:
                path.unlink(missing_ok=True)
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, config: CoSimConfig, result: MissionResult) -> Path:
        """Atomically store ``result`` under ``config``'s key."""
        key = self.key_for(config)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "format": CACHE_FORMAT,
            "key": key,
            "fingerprint": self.fingerprint,
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        self.stores += 1
        return path

    # ------------------------------------------------------------------
    def prune(self) -> int:
        """Delete entries from other code fingerprints; returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        keep = self._dir().name
        for child in self.root.iterdir():
            if child.is_dir() and child.name != keep:
                removed += sum(1 for _ in child.glob("*.pkl"))
                shutil.rmtree(child, ignore_errors=True)
        return removed

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }
