"""The sweep engine: fan missions over processes, reuse cached results.

Execution discipline (the determinism contract):

* Every task is executed by the same module-level :func:`_execute_task`
  whether it runs serially in-process or inside a pool worker, and each
  execution first reseeds the *global* RNGs (``random``, legacy
  ``numpy.random``) from the task's config hash.  The simulation stack
  itself only uses explicitly-seeded generators, so this closes the one
  remaining door — ambient global-RNG use — and makes worker placement
  irrelevant: serial, 2-worker and 8-worker sweeps are bit-identical.
* Workers are forked (POSIX), so they inherit the parent's warmed
  module-level memos (graphs, worlds, classifier profiles) for free.
* Cache lookups happen in the parent before any fan-out; only misses are
  simulated, and their results are stored back as they arrive.
"""

from __future__ import annotations

import multiprocessing
import os
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing.context import BaseContext
from time import perf_counter
from typing import Iterable, Union

import numpy as np

from repro.core.config import CoSimConfig
from repro.core.cosim import MissionResult, run_mission
from repro.core.timing import merge_timings
from repro.obs.aggregate import merge_snapshots
from repro.sweep.cache import CACHE_DIR_ENV, ResultCache
from repro.sweep.fingerprint import config_key

#: Environment variable setting the default worker count (1 = serial).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: What :meth:`SweepRunner.run` accepts per task: an explicit
#: :class:`SweepTask`, a bare config (auto-named), or a (name, config) pair.
TaskLike = Union["SweepTask", CoSimConfig, tuple[str, CoSimConfig]]


@dataclass(frozen=True)
class SweepTask:
    """One named mission in a sweep."""

    name: str
    config: CoSimConfig


@dataclass
class SweepOutcome:
    """One task's result plus how it was obtained."""

    name: str
    config: CoSimConfig
    result: MissionResult
    wall_seconds: float
    from_cache: bool


@dataclass
class SweepReport:
    """Everything a sweep run produced, in task order."""

    outcomes: list[SweepOutcome]
    wall_seconds: float
    workers: int
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    fingerprint: str | None = field(repr=False, default=None)

    def results(self) -> list[MissionResult]:
        return [outcome.result for outcome in self.outcomes]

    def stage_seconds(self) -> dict[str, float]:
        """Summed per-stage wall clock across executed (non-cached) missions."""
        return merge_timings(
            outcome.result.stage_timings
            for outcome in self.outcomes
            if not outcome.from_cache
        )

    def telemetry(self) -> dict[str, object]:
        """The sweep's aggregated metrics snapshot (repro.obs).

        Merges every mission's flight-recorder snapshot — cache hits
        included, since their telemetry rides in the cached result —
        into one registry-shaped dict.  The merge is associative and
        commutative, so worker count and placement cannot change it:
        a 2-worker sweep aggregates to exactly the serial run's value.
        """
        return merge_snapshots(
            outcome.result.obs.metrics
            for outcome in self.outcomes
            if outcome.result.obs is not None
        )


def _seed_worker(key: str) -> None:
    """Reseed the global RNGs deterministically from a config hash."""
    seed = int(key[:16], 16) % (2**32)
    random.seed(seed)
    np.random.seed(seed)


def _execute_task(item: tuple[str, CoSimConfig]) -> tuple[str, MissionResult, float]:
    """Run one mission (used identically by serial and pooled execution)."""
    name, config = item
    _seed_worker(config_key(config))
    t0 = perf_counter()
    result = run_mission(config)
    return name, result, perf_counter() - t0


def _pool_context() -> BaseContext:
    """Fork where available so workers inherit warmed memo caches."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


class SweepRunner:
    """Runs a list of sweep tasks, optionally parallel and/or cached."""

    def __init__(self, workers: int | None = None, cache: ResultCache | None = None):
        self.workers = max(1, int(workers or 1))
        self.cache = cache

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(tasks: Iterable[TaskLike]) -> list[SweepTask]:
        normalized: list[SweepTask] = []
        for index, task in enumerate(tasks):
            if isinstance(task, SweepTask):
                normalized.append(task)
            elif isinstance(task, CoSimConfig):
                normalized.append(SweepTask(name=f"task{index}", config=task))
            else:
                name, config = task
                normalized.append(SweepTask(name=str(name), config=config))
        return normalized

    # ------------------------------------------------------------------
    def run(self, tasks: Iterable[TaskLike]) -> SweepReport:
        """Execute ``tasks`` (SweepTasks, configs, or ``(name, config)``).

        Outcomes preserve task order regardless of worker scheduling.
        """
        sweep_t0 = perf_counter()
        normalized = self._normalize(tasks)
        outcomes: list[SweepOutcome | None] = [None] * len(normalized)

        # Cache pass: resolve hits in the parent, collect misses to run.
        misses: list[tuple[int, SweepTask]] = []
        for index, task in enumerate(normalized):
            cached = self.cache.get(task.config) if self.cache is not None else None
            if cached is not None:
                outcomes[index] = SweepOutcome(
                    name=task.name,
                    config=task.config,
                    result=cached,
                    wall_seconds=0.0,
                    from_cache=True,
                )
            else:
                misses.append((index, task))

        # Execution pass over the misses only.
        items = [(task.name, task.config) for _, task in misses]
        workers = min(self.workers, max(1, len(items)))
        if items:
            if workers <= 1:
                executed = [_execute_task(item) for item in items]
            else:
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=_pool_context()
                ) as pool:
                    executed = list(pool.map(_execute_task, items))
            for (index, task), (name, result, seconds) in zip(misses, executed):
                outcomes[index] = SweepOutcome(
                    name=name,
                    config=task.config,
                    result=result,
                    wall_seconds=seconds,
                    from_cache=False,
                )
                if self.cache is not None:
                    self.cache.put(task.config, result)

        report = SweepReport(
            outcomes=[outcome for outcome in outcomes if outcome is not None],
            wall_seconds=perf_counter() - sweep_t0,
            workers=workers if items else 0,
        )
        if self.cache is not None:
            report.cache_hits = self.cache.hits
            report.cache_misses = self.cache.misses
            report.cache_stores = self.cache.stores
            report.fingerprint = self.cache.fingerprint
        return report


def sweep_missions(
    configs: Iterable[TaskLike],
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> list[MissionResult]:
    """Run configs through the sweep engine; results in input order.

    Drop-in replacement for ``[run_mission(c) for c in configs]``.  With
    no arguments the knobs come from the environment: ``REPRO_SWEEP_WORKERS``
    (default 1 = serial) and ``REPRO_SWEEP_CACHE_DIR`` (caching stays off
    unless the directory is set — library callers opt in explicitly).
    """
    if workers is None:
        workers = int(os.environ.get(WORKERS_ENV, "1") or "1")
    if cache is None and os.environ.get(CACHE_DIR_ENV):
        cache = ResultCache(os.environ[CACHE_DIR_ENV])
    return SweepRunner(workers=workers, cache=cache).run(configs).results()
