"""The sweep engine: fan missions over processes, survive partial failure.

Execution discipline (the determinism contract):

* Every task is executed by the same module-level :func:`_execute_task`
  whether it runs serially in-process or inside a pool worker, and each
  execution first reseeds the *global* RNGs (``random``, legacy
  ``numpy.random``) from the task's config hash.  The simulation stack
  itself only uses explicitly-seeded generators, so this closes the one
  remaining door — ambient global-RNG use — and makes worker placement
  irrelevant: serial, 2-worker and 8-worker sweeps are bit-identical.
* Workers are forked (POSIX), so they inherit the parent's warmed
  module-level memos (graphs, worlds, classifier profiles) for free —
  those memos are immutable-after-construction.  Mutable per-process
  state (global RNG stream position, chaos bookkeeping) must *not* be
  inherited: every pool (re)spawn runs :func:`_pool_initializer`, which
  reseeds the globals and clears registered transient state.
* Cache lookups happen in the parent before any fan-out; only misses are
  simulated, and their results are stored back as they arrive.

Resilience discipline (the supervision contract):

* A task attempt that raises, hangs past the per-task timeout, or kills
  its worker process becomes a :class:`TaskFailure` on that task — never
  a sweep-killing exception in the parent.
* Failed attempts are retried under a deterministic
  :class:`~repro.sweep.resilience.RetryPolicy` (capped exponential
  backoff, jitter seeded from the config key); tasks that fail every
  permitted attempt are *quarantined* and reported, and the rest of the
  sweep completes.
* A broken pool (``BrokenProcessPool``: some worker died mid-task) is
  respawned and only the in-flight tasks are re-dispatched; completed
  results are never recomputed.  Attribution under a pool break is
  collective — every in-flight task is charged one attempt — so retry
  budgets should exceed the worst expected crash count.
* Every terminal outcome is appended to the crash-safe
  :class:`~repro.sweep.journal.SweepJournal` (when one is attached), so
  a killed sweep resumes instead of restarting.
"""

from __future__ import annotations

import multiprocessing
import os
import random
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing.context import BaseContext
from time import perf_counter
from typing import Any, Callable, Iterable, Union

import numpy as np

from repro.batch.eligibility import batch_eligible, batch_group_key
from repro.batch.engine import run_batch
from repro.core.config import CoSimConfig
from repro.core.cosim import MissionResult, run_mission
from repro.core.timing import merge_timings
from repro.errors import ConfigError, SweepError
from repro.obs.aggregate import merge_snapshots
from repro.obs.declarations import sweep_registry
from repro.obs.metrics import MetricsRegistry
from repro.sweep import chaos
from repro.sweep.cache import CACHE_DIR_ENV, ResultCache
from repro.sweep.fingerprint import code_fingerprint, config_key
from repro.sweep.journal import SweepJournal
from repro.sweep.resilience import (
    SUCCESS_STATES,
    RetryPolicy,
    TaskFailure,
    backoff_sleep,
    wait_for,
)

#: Environment variable setting the default worker count (1 = serial).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Environment variable setting the default batch size (1 = no batching).
BATCH_ENV = "REPRO_SWEEP_BATCH"

#: What :meth:`SweepRunner.run` accepts per task: an explicit
#: :class:`SweepTask`, a bare config (auto-named), or a (name, config) pair.
TaskLike = Union["SweepTask", CoSimConfig, tuple[str, CoSimConfig]]


@dataclass(frozen=True)
class SweepTask:
    """One named mission in a sweep."""

    name: str
    config: CoSimConfig


@dataclass
class SweepOutcome:
    """One task's terminal state plus how it was reached.

    ``state`` is one of :data:`~repro.sweep.resilience.OUTCOME_STATES`;
    success states (``ok`` / ``from_cache``) carry a ``result``, failure
    states carry the last attempt's ``failure`` and ``result is None``.
    """

    name: str
    config: CoSimConfig
    result: MissionResult | None
    wall_seconds: float
    from_cache: bool
    state: str = "ok"
    attempts: int = 1
    failure: TaskFailure | None = None
    #: Shard/worker attribution: which executor produced this terminal
    #: state.  ``None`` for anonymous single-host runs; the serve layer
    #: stamps its shard-worker id so a quarantined poison task names the
    #: worker that gave up on it.
    owner: str | None = None

    @property
    def ok(self) -> bool:
        return self.state in SUCCESS_STATES


@dataclass
class SweepReport:
    """Everything a sweep run produced, in task order."""

    outcomes: list[SweepOutcome]
    wall_seconds: float
    workers: int
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    fingerprint: str | None = field(repr=False, default=None)
    # Resilience activity (also recorded as rose_sweep_* metrics).
    retries: int = 0
    timeouts: int = 0
    pool_crashes: int = 0
    quarantined: int = 0
    journal_replays: int = 0
    #: Batched-engine activity (cache misses run in lockstep groups).
    batched_missions: int = 0
    batch_chunks: int = 0
    #: Sweep-level metrics snapshot (rose_sweep_* / rose_cache_*),
    #: merged into :meth:`telemetry` alongside the mission snapshots.
    sweep_metrics: dict[str, Any] | None = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        """Every task reached a success state (result available)."""
        return all(outcome.ok for outcome in self.outcomes)

    def failures(self) -> list[SweepOutcome]:
        """Outcomes that ended in a failure state, in task order."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def results(self) -> list[MissionResult]:
        """Every mission result, in task order.

        Raises :class:`~repro.errors.SweepError` if any task failed —
        callers that tolerate partial sweeps should walk ``outcomes``
        (or ``failures()``) instead of this convenience view.
        """
        failed = self.failures()
        if failed:
            summary = "; ".join(
                f"{o.name}: {o.state}"
                + (f" [owner {o.owner}]" if o.owner is not None else "")
                + (f" ({o.failure.describe()})" if o.failure is not None else "")
                for o in failed[:5]
            )
            raise SweepError(
                f"{len(failed)} of {len(self.outcomes)} sweep task(s) failed "
                f"after retries: {summary}"
            )
        return [outcome.result for outcome in self.outcomes if outcome.result]

    def stage_seconds(self) -> dict[str, float]:
        """Summed per-stage wall clock across executed (non-cached) missions."""
        return merge_timings(
            outcome.result.stage_timings
            for outcome in self.outcomes
            if outcome.result is not None and not outcome.from_cache
        )

    def telemetry(self) -> dict[str, object]:
        """The sweep's aggregated metrics snapshot (repro.obs).

        Merges every mission's flight-recorder snapshot — cache hits
        included, since their telemetry rides in the cached result —
        plus the sweep-level resilience snapshot into one
        registry-shaped dict.  The merge is associative and commutative,
        so worker count and placement cannot change it; on a fault-free
        run the resilience series are empty and the merged snapshot is
        exactly the serial run's value.
        """
        snapshots = [
            outcome.result.obs.metrics
            for outcome in self.outcomes
            if outcome.result is not None and outcome.result.obs is not None
        ]
        if self.sweep_metrics is not None:
            snapshots.append(self.sweep_metrics)
        return merge_snapshots(snapshots)


def _seed_worker(key: str) -> None:
    """Reseed the global RNGs deterministically from a config hash."""
    seed = int(key[:16], 16) % (2**32)
    random.seed(seed)
    np.random.seed(seed)


def _execute_task(
    item: tuple[str, CoSimConfig, int]
) -> tuple[str, MissionResult, float]:
    """Run one mission attempt (identical for serial and pooled execution).

    The chaos hook fires *before* the mission and draws nothing from any
    RNG stream, so an injected-and-retried task replays bit-identically.
    """
    name, config, attempt = item
    key = config_key(config)
    _seed_worker(key)
    chaos.maybe_inject(key, attempt)
    t0 = perf_counter()
    result = run_mission(config)
    return name, result, perf_counter() - t0


def _execute_batch(
    configs: list[CoSimConfig], keys: list[str]
) -> tuple[list[MissionResult], float]:
    """Run one lockstep-compatible chunk on the batched engine.

    Mirrors :func:`_execute_task`'s discipline: the ambient global RNGs
    are reseeded deterministically (from the first lane's key — the
    simulation stack itself draws only from explicitly-seeded
    generators, so this closes the same door the serial path closes).
    Returns the per-lane results plus the chunk's wall time.
    """
    _seed_worker(keys[0])
    t0 = perf_counter()
    results = run_batch(configs)
    return results, perf_counter() - t0


#: Per-process transient state cleared on every pool (re)spawn.  Modules
#: with mutable process-scoped bookkeeping register a reset hook; the
#: deterministic memo caches (worlds, graphs, profiles) are deliberately
#: *not* here — inheriting them warm is the point of forking.
_TRANSIENT_RESETS: list[Callable[[], None]] = [chaos.reset_process_state]


def register_transient_reset(reset: Callable[[], None]) -> None:
    """Register per-process transient state to clear in pool workers."""
    _TRANSIENT_RESETS.append(reset)


def _pool_initializer(generation: int) -> None:
    """Fresh execution state for a newly (re)spawned pool worker.

    Forked workers inherit everything the parent process had: the warmed
    immutable memos we want, but also the parent's ambient global-RNG
    stream position and any per-process transient bookkeeping (chaos
    injection logs) we must not keep.  Reseed the globals from the pool
    generation and clear registered transient state; per-task reseeding
    in :func:`_execute_task` still runs afterwards — this closes the
    window before the first task and after every pool respawn.
    """
    seed = (0x5EED ^ generation) % (2**32)
    random.seed(seed)
    np.random.seed(seed)
    for reset in _TRANSIENT_RESETS:
        reset()


def _pool_context() -> BaseContext:
    """Fork where available so workers inherit warmed memo caches."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


@dataclass
class _Pending:
    """One task waiting to be (re)dispatched."""

    index: int
    task: SweepTask
    key: str
    attempt: int  # the attempt number the next dispatch will be (1-based)
    ready_at: float  # perf_counter time before which it must not dispatch
    failures: list[TaskFailure] = field(default_factory=list)


@dataclass
class _Flight:
    """One dispatched attempt: its pending record plus its deadline."""

    pending: _Pending
    deadline: float | None


class SweepRunner:
    """Runs a list of sweep tasks: parallel, cached, supervised, journaled."""

    def __init__(
        self,
        workers: int | None = None,
        cache: ResultCache | None = None,
        retry: RetryPolicy | None = None,
        task_timeout: float | None = None,
        journal: SweepJournal | None = None,
        resume: bool = False,
        batch_size: int | None = None,
        owner: str | None = None,
    ):
        self.workers = max(1, int(workers or 1))
        if batch_size is None:
            batch_size = int(os.environ.get(BATCH_ENV, "1") or "1")
        self.batch_size = max(1, int(batch_size))
        self.cache = cache
        self.retry = retry or RetryPolicy()
        if task_timeout is not None and task_timeout <= 0:
            raise ConfigError(f"task_timeout must be positive, got {task_timeout}")
        self.task_timeout = task_timeout
        self.journal = journal
        if resume and journal is None:
            raise ConfigError("resume=True requires a journal to replay")
        self.resume = resume
        #: Attribution label stamped on every outcome (and journaled with
        #: each task event).  The serve layer sets this to its shard
        #: worker id; plain single-host sweeps leave it ``None``.
        self.owner = owner

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(tasks: Iterable[TaskLike]) -> list[SweepTask]:
        normalized: list[SweepTask] = []
        for index, task in enumerate(tasks):
            if isinstance(task, SweepTask):
                normalized.append(task)
            elif isinstance(task, CoSimConfig):
                normalized.append(SweepTask(name=f"task{index}", config=task))
            else:
                name, config = task
                normalized.append(SweepTask(name=str(name), config=config))
        return normalized

    # ------------------------------------------------------------------
    def run(self, tasks: Iterable[TaskLike]) -> SweepReport:
        """Execute ``tasks`` (SweepTasks, configs, or ``(name, config)``).

        Outcomes preserve task order regardless of worker scheduling,
        retries, or pool respawns.
        """
        sweep_t0 = perf_counter()
        normalized = self._normalize(tasks)
        keys = [config_key(task.config) for task in normalized]
        outcomes: list[SweepOutcome | None] = [None] * len(normalized)
        registry = sweep_registry()

        replayed = self._journal_open(normalized, keys)

        # Cache pass: resolve hits in the parent, collect misses to run.
        misses: list[_Pending] = []
        for index, task in enumerate(normalized):
            cached = self.cache.get(task.config) if self.cache is not None else None
            if cached is not None:
                entry = replayed.get(keys[index])
                if entry is not None and entry.state in SUCCESS_STATES:
                    registry.inc("rose_sweep_journal_replays_total")
                outcomes[index] = SweepOutcome(
                    name=task.name,
                    config=task.config,
                    result=cached,
                    wall_seconds=0.0,
                    from_cache=True,
                    state="from_cache",
                    owner=self.owner,
                )
                if entry is None:
                    self._journal_task(task.name, keys[index], "from_cache", 1, None)
            else:
                misses.append(
                    _Pending(
                        index=index,
                        task=task,
                        key=keys[index],
                        attempt=1,
                        ready_at=0.0,
                    )
                )

        # Batch pre-pass: lockstep-compatible groups of cache misses run
        # on the batched engine in the parent; whatever it does not take
        # (ineligible, unpaired, or failed-over) continues to the normal
        # serial/pooled path below.  Under an active chaos plan every
        # task must pass through the per-attempt injection point, so
        # batching is disabled.
        if misses and self.batch_size > 1 and chaos.active_plan() is None:
            misses = self._run_batched(misses, outcomes, registry)

        workers = min(self.workers, max(1, len(misses)))
        if misses:
            if workers <= 1:
                self._run_serial(misses, outcomes, registry)
            else:
                self._run_pool(misses, outcomes, registry, workers)

        if self.cache is not None and self.cache.corrupt:
            registry.advance_to("rose_cache_corrupt_total", self.cache.corrupt)

        final = [outcome for outcome in outcomes if outcome is not None]
        report = SweepReport(
            outcomes=final,
            wall_seconds=perf_counter() - sweep_t0,
            workers=workers if misses else 0,
            retries=int(registry.total("rose_sweep_retries_total")),
            timeouts=int(registry.total("rose_sweep_timeouts_total")),
            pool_crashes=int(registry.total("rose_sweep_crashes_total")),
            quarantined=int(registry.total("rose_sweep_quarantined_total")),
            journal_replays=int(registry.total("rose_sweep_journal_replays_total")),
            batched_missions=int(
                registry.total("rose_sweep_batched_missions_total")
            ),
            batch_chunks=int(registry.total("rose_sweep_batch_chunks_total")),
            sweep_metrics=registry.snapshot(),
        )
        if self.cache is not None:
            report.cache_hits = self.cache.hits
            report.cache_misses = self.cache.misses
            report.cache_stores = self.cache.stores
            report.fingerprint = self.cache.fingerprint
        if self.journal is not None:
            self.journal.end(
                {
                    "ok": sum(1 for o in final if o.ok),
                    "failed": sum(1 for o in final if not o.ok),
                    "retries": report.retries,
                }
            )
        return report

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    def _journal_open(
        self, tasks: list[SweepTask], keys: list[str]
    ) -> dict[str, Any]:
        """Begin (or resume) the journal; returns the replayed entries."""
        if self.journal is None:
            return {}
        fingerprint = (
            self.cache.fingerprint if self.cache is not None else code_fingerprint()
        )
        pairs = [(task.name, key) for task, key in zip(tasks, keys)]
        if self.resume:
            replayed = self.journal.replay()
            done = sum(
                1 for entry in replayed.values() if entry.state in SUCCESS_STATES
            )
            self.journal.resume(done)
            return replayed
        self.journal.begin(fingerprint, pairs, self.retry.to_dict())
        return {}

    def _journal_task(
        self,
        name: str,
        key: str,
        state: str,
        attempts: int,
        failure: TaskFailure | None,
    ) -> None:
        if self.journal is None:
            return
        self.journal.record_task(
            name,
            key,
            state,
            attempts,
            failure.to_dict() if failure is not None else None,
            owner=self.owner,
        )

    # ------------------------------------------------------------------
    # Outcome bookkeeping shared by the serial and pooled paths
    # ------------------------------------------------------------------
    def _complete(
        self,
        pending: _Pending,
        result: MissionResult,
        seconds: float,
        outcomes: list[SweepOutcome | None],
    ) -> None:
        outcomes[pending.index] = SweepOutcome(
            name=pending.task.name,
            config=pending.task.config,
            result=result,
            wall_seconds=seconds,
            from_cache=False,
            state="ok",
            attempts=pending.attempt,
            owner=self.owner,
        )
        if self.cache is not None:
            self.cache.put(pending.task.config, result)
        self._journal_task(pending.task.name, pending.key, "ok", pending.attempt, None)

    def _charge(
        self,
        pending: _Pending,
        kind: str,
        message: str,
        registry: MetricsRegistry,
        outcomes: list[SweepOutcome | None],
        now: float,
    ) -> _Pending | None:
        """Record a failed attempt; returns the retry record or ``None``.

        ``None`` means the task is terminal: its outcome slot is filled
        with the failure state and the journal gets the terminal event.
        """
        failure = TaskFailure(kind=kind, message=message, attempt=pending.attempt)
        pending.failures.append(failure)
        if kind == "timeout":
            registry.inc("rose_sweep_timeouts_total")
        if self.retry.allows_retry(pending.attempt):
            registry.inc("rose_sweep_retries_total")
            delay = self.retry.backoff_delay(pending.key, pending.attempt)
            return _Pending(
                index=pending.index,
                task=pending.task,
                key=pending.key,
                attempt=pending.attempt + 1,
                ready_at=now + delay,
                failures=pending.failures,
            )
        state = self.retry.terminal_state(kind)
        if state == "quarantined":
            registry.inc("rose_sweep_quarantined_total")
        outcomes[pending.index] = SweepOutcome(
            name=pending.task.name,
            config=pending.task.config,
            result=None,
            wall_seconds=0.0,
            from_cache=False,
            state=state,
            attempts=pending.attempt,
            failure=failure,
            owner=self.owner,
        )
        self._journal_task(
            pending.task.name, pending.key, state, pending.attempt, failure
        )
        return None

    # ------------------------------------------------------------------
    # Batched execution (lockstep engine, parent process)
    # ------------------------------------------------------------------
    def _run_batched(
        self,
        misses: list[_Pending],
        outcomes: list[SweepOutcome | None],
        registry: MetricsRegistry,
    ) -> list[_Pending]:
        """Run lockstep-compatible chunks of ``misses`` batched.

        Returns the tasks still pending for the serial/pooled path.  The
        batched engine is bit-identical to serial execution (enforced by
        the ``batch_vs_serial`` oracle), so completed lanes reuse the
        ordinary completion path — same cache writes, same journal
        events, same outcome shape.  A chunk that errors is *not*
        charged a failed attempt: its tasks simply fall through to the
        supervised path, which owns retry bookkeeping.
        """
        remaining: list[_Pending] = []
        groups: dict[str, list[_Pending]] = {}
        for pending in misses:
            eligible, _reason = batch_eligible(pending.task.config)
            if eligible:
                groups.setdefault(
                    batch_group_key(pending.task.config), []
                ).append(pending)
            else:
                remaining.append(pending)
        for key in sorted(groups):
            group = groups[key]
            for lo in range(0, len(group), self.batch_size):
                chunk = group[lo : lo + self.batch_size]
                if len(chunk) < 2:
                    # A lone lane gains nothing from lockstep; let the
                    # normal path run it.
                    remaining.extend(chunk)
                    continue
                try:
                    results, seconds = _execute_batch(
                        [p.task.config for p in chunk], [p.key for p in chunk]
                    )
                except Exception:  # noqa: BLE001 - fall back, path owns retries
                    remaining.extend(chunk)
                    continue
                registry.inc("rose_sweep_batch_chunks_total")
                registry.inc("rose_sweep_batched_missions_total", len(chunk))
                share = seconds / len(chunk)
                for pending, result in zip(chunk, results):
                    self._complete(pending, result, share, outcomes)
        remaining.sort(key=lambda p: p.index)
        return remaining

    # ------------------------------------------------------------------
    # Serial execution (in-process, retries with blocking backoff)
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        misses: list[_Pending],
        outcomes: list[SweepOutcome | None],
        registry: MetricsRegistry,
    ) -> None:
        """In-process execution with retries.

        Worker exceptions are supervised exactly like the pooled path;
        crash and hang protection need process isolation, so chaos plans
        that inject those belong on the pooled path only.
        """
        for pending in misses:
            current: _Pending | None = pending
            while current is not None:
                item = (current.task.name, current.task.config, current.attempt)
                try:
                    _, result, seconds = _execute_task(item)
                except Exception as exc:  # noqa: BLE001 - taxonomy, not policy
                    retry = self._charge(
                        current,
                        "exception",
                        f"{type(exc).__name__}: {exc}",
                        registry,
                        outcomes,
                        perf_counter(),
                    )
                    if retry is not None:
                        backoff_sleep(self.retry, current.key, current.attempt)
                    current = retry
                else:
                    self._complete(current, result, seconds, outcomes)
                    current = None

    # ------------------------------------------------------------------
    # Supervised pool execution
    # ------------------------------------------------------------------
    def _new_pool(self, workers: int, generation: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(),
            initializer=_pool_initializer,
            initargs=(generation,),
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down even if a worker is wedged mid-task.

        ``shutdown`` alone would join the hung worker forever, so the
        worker processes are killed first.  ``_processes`` is CPython
        executor internals — there is no public "abandon this worker"
        API — accessed defensively so a layout change degrades to a
        plain shutdown rather than an error.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, ValueError):  # pragma: no cover - already dead
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _run_pool(
        self,
        misses: list[_Pending],
        outcomes: list[SweepOutcome | None],
        registry: MetricsRegistry,
        workers: int,
    ) -> None:
        queue: list[_Pending] = list(misses)
        generation = 0
        pool = self._new_pool(workers, generation)
        inflight: dict[Future[tuple[str, MissionResult, float]], _Flight] = {}

        def respawn() -> None:
            nonlocal generation, pool
            self._kill_pool(pool)
            generation += 1
            pool = self._new_pool(workers, generation)

        def requeue_inflight(charge_kind: str | None, now: float) -> None:
            """Drain in-flight tasks back onto the queue.

            With a ``charge_kind`` each drained task is charged one
            failed attempt (pool crash: attribution is collective);
            without one they are innocent victims of a sibling's
            timeout kill and re-dispatch at their current attempt.
            """
            for flight in list(inflight.values()):
                if charge_kind is None:
                    flight.pending.ready_at = now
                    queue.append(flight.pending)
                else:
                    retry = self._charge(
                        flight.pending,
                        charge_kind,
                        "worker pool broke while this task was in flight",
                        registry,
                        outcomes,
                        now,
                    )
                    if retry is not None:
                        queue.append(retry)
            inflight.clear()

        try:
            while queue or inflight:
                now = perf_counter()
                queue.sort(key=lambda p: (p.ready_at, p.index))

                # Dispatch every ready task into a free slot.
                while queue and len(inflight) < workers and queue[0].ready_at <= now:
                    pending = queue.pop(0)
                    item = (pending.task.name, pending.task.config, pending.attempt)
                    try:
                        future = pool.submit(_execute_task, item)
                    except BrokenProcessPool:
                        # The pool died between waits: charge the flights,
                        # respawn, and let the main loop redispatch.
                        queue.append(pending)
                        registry.inc("rose_sweep_crashes_total")
                        requeue_inflight("pool_crash", now)
                        respawn()
                        break
                    deadline = (
                        now + self.task_timeout
                        if self.task_timeout is not None
                        else None
                    )
                    inflight[future] = _Flight(pending, deadline)

                if not inflight:
                    if queue:
                        # Every slot idle, nothing ready: park until the
                        # earliest backoff expires (blessed sleep site).
                        wait_for(max(0.0, queue[0].ready_at - perf_counter()))
                    continue

                # Wait for a completion, the next deadline, or the next
                # backoff expiry — whichever comes first.
                wake_times = [
                    flight.deadline
                    for flight in inflight.values()
                    if flight.deadline is not None
                ]
                if queue and len(inflight) < workers:
                    wake_times.append(queue[0].ready_at)
                timeout = (
                    max(0.0, min(wake_times) - perf_counter()) if wake_times else None
                )
                done, _ = futures_wait(
                    set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )

                now = perf_counter()
                broken = False
                for future in done:
                    flight = inflight.pop(future)
                    exc = future.exception()
                    if exc is None:
                        _, result, seconds = future.result()
                        self._complete(flight.pending, result, seconds, outcomes)
                    elif isinstance(exc, BrokenProcessPool):
                        broken = True
                        retry = self._charge(
                            flight.pending,
                            "pool_crash",
                            str(exc) or "worker process died mid-task",
                            registry,
                            outcomes,
                            now,
                        )
                        if retry is not None:
                            queue.append(retry)
                    else:
                        retry = self._charge(
                            flight.pending,
                            "exception",
                            f"{type(exc).__name__}: {exc}",
                            registry,
                            outcomes,
                            now,
                        )
                        if retry is not None:
                            queue.append(retry)

                if broken:
                    # Every surviving flight is doomed with the pool.
                    registry.inc("rose_sweep_crashes_total")
                    requeue_inflight("pool_crash", now)
                    respawn()
                    continue

                # Deadline pass: kill hung attempts, spare the innocent.
                expired = [
                    future
                    for future, flight in inflight.items()
                    if flight.deadline is not None and now >= flight.deadline
                ]
                if expired:
                    for future in expired:
                        flight = inflight.pop(future)
                        retry = self._charge(
                            flight.pending,
                            "timeout",
                            f"attempt exceeded task_timeout={self.task_timeout}s",
                            registry,
                            outcomes,
                            now,
                        )
                        if retry is not None:
                            queue.append(retry)
                    # A hung worker cannot be reclaimed individually:
                    # recycle the pool; untimed-out flights re-dispatch
                    # without an attempt charge.
                    requeue_inflight(None, now)
                    respawn()
        finally:
            self._kill_pool(pool)


def sweep_missions(
    configs: Iterable[TaskLike],
    workers: int | None = None,
    cache: ResultCache | None = None,
    batch_size: int | None = None,
) -> list[MissionResult]:
    """Run configs through the sweep engine; results in input order.

    Drop-in replacement for ``[run_mission(c) for c in configs]``.  With
    no arguments the knobs come from the environment: ``REPRO_SWEEP_WORKERS``
    (default 1 = serial), ``REPRO_SWEEP_BATCH`` (default 1 = no
    batching) and ``REPRO_SWEEP_CACHE_DIR`` (caching stays off unless
    the directory is set — library callers opt in explicitly).
    Transient failures are retried under the default
    :class:`~repro.sweep.resilience.RetryPolicy`; a task that still
    fails raises :class:`~repro.errors.SweepError` from ``results()``.
    """
    if workers is None:
        workers = int(os.environ.get(WORKERS_ENV, "1") or "1")
    if cache is None and os.environ.get(CACHE_DIR_ENV):
        cache = ResultCache(os.environ[CACHE_DIR_ENV])
    return (
        SweepRunner(workers=workers, cache=cache, batch_size=batch_size)
        .run(configs)
        .results()
    )
