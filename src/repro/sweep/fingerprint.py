"""Content hashes for sweep cache keys.

Two hashes address a cached result:

* :func:`config_key` — the *what*: a stable digest of the canonical
  manifest dict of a :class:`~repro.core.config.CoSimConfig`.  Configs
  that serialize identically simulate identically (the whole stack is
  seeded), so the digest is a complete identity for the result.
* :func:`code_fingerprint` — the *how*: a digest over the ``repro``
  package's source files.  Any code change — even one that would not
  alter results — moves the fingerprint and invalidates the cache, which
  is the safe direction for a bit-identity contract.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.core.config import CoSimConfig
from repro.core.manifest import config_to_dict

_FINGERPRINT_CACHE: dict[str, str] = {}


def code_fingerprint() -> str:
    """Digest of every ``*.py`` file in the installed ``repro`` package.

    Files are walked in sorted relative-path order and hashed as
    ``path NUL contents NUL`` so renames and content edits both move the
    fingerprint.  Computed once per process (the tree does not change
    under a running sweep).
    """
    cached = _FINGERPRINT_CACHE.get("fingerprint")
    if cached is not None:
        return cached
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    # setdefault: atomic under the GIL, and the value is a pure function
    # of the source tree, so a racing thread computes the same digest.
    return _FINGERPRINT_CACHE.setdefault("fingerprint", digest.hexdigest())


def config_key(config: CoSimConfig) -> str:
    """Stable content hash of a config's canonical manifest form."""
    payload = json.dumps(
        config_to_dict(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()
