"""Env-gated chaos harness: inject worker faults into sweep tasks.

The supervised sweep loop claims to survive worker exceptions, crashes,
and hangs.  This module makes those events *injectable and
deterministic* so tests, the ``sweep-chaos`` differential oracle, and
the CI chaos job can prove the claim: a chaos-injected sweep must
complete via retries with results bit-identical to a fault-free serial
run.

Gating and determinism:

* chaos is off unless ``REPRO_SWEEP_CHAOS`` holds a JSON
  :class:`ChaosPlan` — an environment variable, not a config field, so
  fault injection can never enter a config key, a mission signature, or
  a cached envelope, and forked pool workers inherit it for free;
* every injection decision is a pure function of
  ``(plan.seed, config_key, attempt)`` via SHA-256 — no RNG stream, no
  wall clock — so the same plan faults the same attempts on every host;
* decisions beyond ``max_faulty_attempts`` are always ``None``, which
  bounds the faults any single task can see and guarantees a
  sufficiently-budgeted :class:`~repro.sweep.resilience.RetryPolicy`
  converges.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError, ReproError

#: Environment variable carrying the JSON chaos plan (empty/absent = off).
CHAOS_ENV = "REPRO_SWEEP_CHAOS"

#: Exit code used by injected worker crashes (visible in pool post-mortems).
CRASH_EXIT_CODE = 13

#: The fault kinds a plan can inject.
KINDS = ("fail", "crash", "hang")


class ChaosError(ReproError):
    """The injected worker-side exception."""


#: Per-process record of injected faults: ``(kind, key, attempt)``.
#: Transient state — cleared by the pool initializer on every (re)spawn
#: so a forked worker never inherits the parent's (or a previous pool
#: generation's) injection history.
_INJECTED: list[tuple[str, str, int]] = []


def injected_faults() -> list[tuple[str, str, int]]:
    """This process's injection log (workers log their own)."""
    return list(_INJECTED)


def reset_process_state() -> None:
    """Clear per-process chaos bookkeeping (pool-initializer hook)."""
    _INJECTED.clear()


def _decision_unit(seed: int, key: str, attempt: int) -> float:
    """Reproducible uniform sample in ``[0, 1)`` for one (task, attempt)."""
    digest = hashlib.sha256(f"chaos:{seed}:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic worker-fault injection plan.

    ``forced`` pins specific tasks to specific fault kinds by config-key
    prefix — the tool tests and the differential oracle use it to
    guarantee every kind is exercised without probabilistic flake; the
    rate fields drive broad randomized campaigns.
    """

    fail_rate: float = 0.0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    seed: int = 0
    #: Attempts beyond this are never faulted: convergence is guaranteed
    #: whenever the retry budget exceeds it.
    max_faulty_attempts: int = 2
    #: How long an injected hang sleeps (the supervisor's timeout must
    #: kill it first; this is just "longer than any sane timeout").
    hang_seconds: float = 3600.0
    #: ``(config_key_prefix, kind)`` pairs: a matching task is faulted
    #: with that kind on every attempt up to ``max_faulty_attempts``.
    forced: tuple[tuple[str, str], ...] = field(default=())

    def __post_init__(self) -> None:
        for name in ("fail_rate", "crash_rate", "hang_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.fail_rate + self.crash_rate + self.hang_rate > 1.0:
            raise ConfigError("fault rates must sum to at most 1.0")
        if self.max_faulty_attempts < 0:
            raise ConfigError("max_faulty_attempts must be >= 0")
        for pair in self.forced:
            if len(pair) != 2 or pair[1] not in KINDS:
                raise ConfigError(f"forced entries are (key_prefix, kind): {pair!r}")

    # ------------------------------------------------------------------
    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The fault to inject for (key, attempt), or ``None``.

        Pure and reproducible: same plan, key, and attempt — same
        verdict, on every host, in every process.
        """
        if attempt > self.max_faulty_attempts:
            return None
        for prefix, kind in self.forced:
            if key.startswith(prefix):
                return kind
        unit = _decision_unit(self.seed, key, attempt)
        if unit < self.crash_rate:
            return "crash"
        if unit < self.crash_rate + self.hang_rate:
            return "hang"
        if unit < self.crash_rate + self.hang_rate + self.fail_rate:
            return "fail"
        return None

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "fail_rate": self.fail_rate,
            "crash_rate": self.crash_rate,
            "hang_rate": self.hang_rate,
            "seed": self.seed,
            "max_faulty_attempts": self.max_faulty_attempts,
            "hang_seconds": self.hang_seconds,
            "forced": [list(pair) for pair in self.forced],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"invalid chaos plan JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ConfigError("chaos plan must be a JSON object")
        try:
            forced = tuple(
                (str(prefix), str(kind))
                for prefix, kind in payload.get("forced", [])
            )
            return cls(
                fail_rate=float(payload.get("fail_rate", 0.0)),
                crash_rate=float(payload.get("crash_rate", 0.0)),
                hang_rate=float(payload.get("hang_rate", 0.0)),
                seed=int(payload.get("seed", 0)),
                max_faulty_attempts=int(payload.get("max_faulty_attempts", 2)),
                hang_seconds=float(payload.get("hang_seconds", 3600.0)),
                forced=forced,
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"invalid chaos plan field: {exc}") from exc


def load_chaos_plan(spec: str) -> ChaosPlan:
    """Parse a chaos plan from an inline JSON object or a file path."""
    spec = spec.strip()
    if spec.startswith("{"):
        return ChaosPlan.from_json(spec)
    try:
        with open(spec) as handle:
            return ChaosPlan.from_json(handle.read())
    except OSError as exc:
        raise ConfigError(f"cannot read chaos plan file {spec!r}: {exc}") from exc


def active_plan() -> Optional[ChaosPlan]:
    """The plan in ``$REPRO_SWEEP_CHAOS``, or ``None`` when chaos is off.

    Parsed on every call (it is one small JSON object) so tests can flip
    the environment without cache invalidation ceremonies.
    """
    spec = os.environ.get(CHAOS_ENV, "").strip()
    if not spec:
        return None
    return ChaosPlan.from_json(spec)


def maybe_inject(key: str, attempt: int) -> None:
    """Worker-side injection point, called before each mission attempt.

    ``fail`` raises :class:`ChaosError`; ``crash`` hard-exits the worker
    process the way a segfaulting simulator would (``os._exit``, no
    cleanup, breaking the pool); ``hang`` sleeps far past any sane
    per-task timeout so the supervisor must kill and respawn.
    """
    plan = active_plan()
    if plan is None:
        return
    kind = plan.decide(key, attempt)
    if kind is None:
        return
    _INJECTED.append((kind, key, attempt))
    if kind == "fail":
        raise ChaosError(f"injected worker exception (key={key[:12]}, attempt={attempt})")
    if kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    # "hang": simulate a wedged worker.  This sleep *is* the injected
    # fault, not a wait — the supervisor's per-task timeout kills it.
    time.sleep(plan.hang_seconds)  # repro: allow[RES002]
