"""The lint engine: parse a source tree, build a project model, run rules.

The engine scans every ``*.py`` under a *source root* (the directory that
contains the top-level package, e.g. ``src/``), so module paths are
repo-relative POSIX strings like ``repro/core/transport.py`` — the same
vocabulary rule scopes, waivers, and baseline entries use.  Fixture
trees in tests reproduce that layout under a temp directory and get the
exact same behaviour.

Two passes:

1. **model** — parse all files, collect the cross-module facts rules
   introspect: enum definitions (member names), dataclass definitions
   (field names), and a function index;
2. **rules** — run every registered rule over every module in its scope,
   then mark each diagnostic ``waived`` (inline ``# repro: allow[RULE]``)
   or ``baselined`` (committed baseline file) as appropriate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.lint.baseline import Baseline
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.registry import Rule, all_rules, default_rules

#: Inline waiver: ``# repro: allow[DET002]`` or ``# repro: allow[DET002,NUM001]``
#: on the flagged line or the line directly above it.  ``allow[*]`` waives
#: every rule on that line (reserved for generated code).
_WAIVER_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")

_ENUM_BASES = {"Enum", "IntEnum", "IntFlag", "Flag", "StrEnum"}


@dataclass(frozen=True)
class EnumDef:
    """An enum class found in the tree: its members, in definition order."""

    name: str
    path: str
    line: int
    members: tuple[str, ...]


@dataclass(frozen=True)
class DataclassDef:
    """A ``@dataclass`` found in the tree: its field names, in order."""

    name: str
    path: str
    line: int
    fields: tuple[str, ...]
    #: Unparsed annotation text per field, parallel to ``fields``.
    field_types: tuple[str, ...] = ()

    def annotation_for(self, field_name: str) -> str:
        try:
            return self.field_types[self.fields.index(field_name)]
        except (ValueError, IndexError):
            return ""


class Module:
    """One parsed source file plus the lookup tables rules need."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: local name -> dotted origin ("np" -> "numpy",
        #: "perf_counter" -> "time.perf_counter", "time" -> "time").
        self.aliases: dict[str, str] = _import_aliases(tree)
        #: 1-based line -> set of waived rule ids (may contain "*").
        self.waivers: dict[int, set[str]] = _waivers(source, self.lines)
        #: Waiver lines that suppressed at least one diagnostic this run
        #: (fed by :meth:`is_waived`; unconsumed lines become WAIVE001).
        self.consumed_waivers: set[int] = set()

    def dotted(self, node: ast.AST) -> str | None:
        """Dotted name of an expression, resolved through import aliases.

        ``np.random.seed`` with ``import numpy as np`` resolves to
        ``numpy.random.seed``; returns ``None`` for non-name expressions
        (calls, subscripts, ...).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))

    def call_name(self, node: ast.Call) -> str | None:
        """Dotted name of a call's target (``None`` if not a plain name)."""
        return self.dotted(node.func)

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def is_waived(self, rule_id: str, line: int) -> bool:
        """Inline waiver on ``line`` or the line directly above it.

        A match marks the waiver line *consumed*: waivers that finish a
        run unconsumed no longer suppress anything and are reported as
        stale (WAIVE001) when the engine runs with waiver checking on.
        """
        for at in (line, line - 1):
            rules = self.waivers.get(at)
            if rules and (rule_id in rules or "*" in rules):
                self.consumed_waivers.add(at)
                return True
        return False


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
                if name.asname:
                    aliases[name.asname] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def _waivers(source: str, lines: list[str]) -> dict[int, set[str]]:
    """Collect inline waivers, keyed by 1-based line number.

    Only real ``#`` comment tokens count, and the waiver must *start*
    the comment — a waiver quoted inside a docstring, a hint string, or
    the prose of another comment (this very module documents the syntax)
    is documentation, not a suppression, and must not trip WAIVE001.
    """
    waivers: dict[int, set[str]] = {}

    def record(line: int, text: str) -> None:
        match = _WAIVER_RE.match(text)
        if match:
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            if rules:
                waivers[line] = rules

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                record(tok.start[0], tok.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparsable tail (the file still ast-parsed, so this is rare):
        # fall back to a per-line scan of comment-looking text.
        for index, text in enumerate(lines, start=1):
            stripped = text.lstrip()
            if stripped.startswith("#"):
                record(index, stripped)
    return waivers


class ProjectModel:
    """Cross-module facts: enums, dataclasses, a function index."""

    def __init__(self, modules: list[Module]):
        self.modules = modules
        self.by_path: dict[str, Module] = {m.path: m for m in modules}
        self.enums: dict[str, EnumDef] = {}
        self.dataclasses: dict[str, DataclassDef] = {}
        #: function name -> [(module, node)] in path order.
        self.functions: dict[str, list[tuple[Module, ast.FunctionDef]]] = {}
        for module in modules:
            self._index(module)

    def _index(self, module: Module) -> None:
        for node in module.walk():
            if isinstance(node, ast.ClassDef):
                if _is_enum(node, module):
                    self.enums.setdefault(
                        node.name,
                        EnumDef(
                            name=node.name,
                            path=module.path,
                            line=node.lineno,
                            members=_enum_members(node),
                        ),
                    )
                elif _is_dataclass(node, module):
                    names, types = _dataclass_fields(node)
                    self.dataclasses.setdefault(
                        node.name,
                        DataclassDef(
                            name=node.name,
                            path=module.path,
                            line=node.lineno,
                            fields=names,
                            field_types=types,
                        ),
                    )
            elif isinstance(node, ast.FunctionDef):
                self.functions.setdefault(node.name, []).append((module, node))


def _is_enum(node: ast.ClassDef, module: Module) -> bool:
    for base in node.bases:
        dotted = module.dotted(base)
        if dotted and dotted.split(".")[-1] in _ENUM_BASES:
            return True
    return False


def _enum_members(node: ast.ClassDef) -> tuple[str, ...]:
    members: list[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    members.append(target.id)
    return tuple(members)


def _is_dataclass(node: ast.ClassDef, module: Module) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = module.dotted(target)
        if dotted and dotted.split(".")[-1] == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> tuple[tuple[str, ...], tuple[str, ...]]:
    names: list[str] = []
    types: list[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if not stmt.target.id.startswith("_") and not _is_classvar(stmt):
                names.append(stmt.target.id)
                types.append(ast.unparse(stmt.annotation))
    return tuple(names), tuple(types)


def _is_classvar(stmt: ast.AnnAssign) -> bool:
    annotation = stmt.annotation
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    return isinstance(annotation, ast.Name) and annotation.id == "ClassVar" or (
        isinstance(annotation, ast.Attribute) and annotation.attr == "ClassVar"
    )


@dataclass
class LintReport:
    """Everything one engine run produced."""

    root: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Baseline entries that matched nothing (stale; safe to prune).
    stale_baseline: list[dict[str, object]] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def active(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.active]

    @property
    def ok(self) -> bool:
        return not self.active and not self.parse_errors

    def describe(self) -> str:
        parts = [
            f"{self.files_scanned} file(s) scanned, "
            f"{len(self.diagnostics)} finding(s): "
            f"{len(self.active)} active, "
            f"{sum(1 for d in self.diagnostics if d.waived)} waived, "
            f"{sum(1 for d in self.diagnostics if d.baselined)} baselined"
        ]
        if self.stale_baseline:
            parts.append(f"{len(self.stale_baseline)} stale baseline entr(y/ies)")
        if self.parse_errors:
            parts.append(f"{len(self.parse_errors)} unparsable file(s)")
        return "; ".join(parts)


class LintEngine:
    """Run the registered rules over one source tree.

    ``deep=True`` adds the registered whole-program project rules (the
    deepcheck passes) to the default per-module set; an explicit
    ``rules`` list is always used as-is.  ``check_waivers=True`` turns
    inline waivers that suppressed nothing into WAIVE001 findings —
    meaningful only when the full rule set runs (a waiver for an
    unselected rule is not stale), so it is opt-in.
    """

    def __init__(
        self,
        root: str | Path,
        rules: Iterable[Rule] | None = None,
        baseline: Baseline | None = None,
        deep: bool = False,
        check_waivers: bool = False,
    ):
        self.root = Path(root)
        if rules is not None:
            self.rules = list(rules)
        elif deep:
            self.rules = list(all_rules().values())
        else:
            self.rules = list(default_rules().values())
        self.baseline = baseline if baseline is not None else Baseline.empty()
        self.check_waivers = check_waivers

    # ------------------------------------------------------------------
    def load(self) -> tuple[ProjectModel, list[str]]:
        """Parse the tree; returns the model plus parse-error strings."""
        modules: list[Module] = []
        errors: list[str] = []
        for path in sorted(self.root.rglob("*.py")):
            rel = path.relative_to(self.root).as_posix()
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=rel)
            except SyntaxError as exc:
                errors.append(f"{rel}:{exc.lineno or 0}: syntax error: {exc.msg}")
                continue
            modules.append(Module(path=rel, source=source, tree=tree))
        return ProjectModel(modules), errors

    def run(self) -> LintReport:
        """Parse, run every rule, apply waivers and the baseline.

        Module rules run per file, project rules once over the whole
        model; both funnel through the same waiver/baseline suppression.
        Diagnostics are sorted by ``(path, line, rule, ...)`` so output
        (and the baseline file) is stable across filesystem walk order.
        """
        project, errors = self.load()
        report = LintReport(
            root=str(self.root),
            files_scanned=len(project.modules),
            parse_errors=errors,
        )
        for module in project.modules:
            for rule in self.rules:
                if rule.func is None or not rule.applies_to(module.path):
                    continue
                for diag in rule.check(module, project):
                    report.diagnostics.append(self._suppress(diag, project))
        for rule in self.rules:
            if rule.project_func is None:
                continue
            for diag in rule.check_project(project):
                report.diagnostics.append(self._suppress(diag, project))
        if self.check_waivers:
            for diag in _stale_waivers(project):
                # Stale-waiver findings can be baselined but not waived:
                # a waiver that waives its own staleness would never rot.
                report.diagnostics.append(
                    diag.suppressed(baselined=self.baseline.matches(diag))
                )
        report.diagnostics.sort()
        report.stale_baseline = self.baseline.stale()
        return report

    def _suppress(self, diag: Diagnostic, project: ProjectModel) -> Diagnostic:
        """Apply inline-waiver and baseline state to one finding."""
        module = project.by_path.get(diag.path)
        waived = module.is_waived(diag.rule, diag.line) if module is not None else False
        return diag.suppressed(waived=waived, baselined=self.baseline.matches(diag))


#: Stale-waiver rule id (implemented by the engine, not a rule function,
#: because consumption is only known after every other rule has run).
WAIVE001 = "WAIVE001"


def _stale_waivers(project: ProjectModel) -> Iterator[Diagnostic]:
    """WAIVE001 findings: inline waivers that suppressed nothing."""
    for module in project.modules:
        for line in sorted(set(module.waivers) - module.consumed_waivers):
            rules = ",".join(sorted(module.waivers[line]))
            yield Diagnostic(
                path=module.path,
                line=line,
                rule=WAIVE001,
                message=f"stale waiver allow[{rules}] suppresses no finding",
                hint="delete the '# repro: allow[...]' comment (the code it "
                "excused has moved or been fixed)",
            )
