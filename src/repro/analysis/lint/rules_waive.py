"""WAIVE rules: the suppression surface itself must not rot.

An inline ``# repro: allow[RULE]`` is a standing claim that the flagged
code is intentional.  When the code moves or gets fixed, the comment
outlives the finding and silently pre-excuses the *next* violation that
lands on that line.  WAIVE001 closes the loop: a waiver that suppressed
nothing in a full-rule-set run is itself a finding.

The detection lives in the engine (``check_waivers=True`` /
``lint --check-waivers``) because staleness is only known after every
other rule has run and consumed its waivers; this module registers the
rule's identity and catalog entry.  Baseline staleness has the same
story — unmatched entries are reported per run and ``--prune-baseline``
rewrites the file — but needs no rule id since the baseline file is not
source code.
"""

from __future__ import annotations

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import ProjectModel
from repro.analysis.lint.registry import project_rule


@project_rule(
    "WAIVE001",
    "no stale inline waivers",
    "a '# repro: allow[...]' comment that no longer suppresses any "
    "diagnostic silently pre-excuses the next violation on its line; "
    "delete waivers when the code they excused is gone",
    deep=False,
)
def waive001_stale_waivers(project: ProjectModel) -> list[Diagnostic]:
    # Implemented by the engine (see engine._stale_waivers): staleness is
    # a property of the whole run, not of the project model alone.
    return []
