"""PERF rules: the batched engine must stay vectorized.

The batched mission engine (:mod:`repro.batch`) earns its throughput by
advancing every lane with numpy kernels — one interpreter dispatch per
*operation*, not per *lane*.  A Python-level ``for``/``while`` loop in
that package is the exact regression the subsystem exists to remove: it
reintroduces per-lane interpreter cost on the hottest path in the sweep
engine, and it does so silently (the differential oracle still passes —
the result is merely slow).

PERF001 therefore flags every ``for``/``while`` *statement* under
``repro/batch/``.  Loops that are genuinely required — per-lane scalar
math with no bit-identical vector form (``math.hypot``, ``math.atan2``),
fixed cache-block loops, rare-event handling, per-lane object
bookkeeping — carry an inline waiver naming the reason::

    for lane in active:  # repro: allow[PERF001] per-lane packet inspection

Comprehensions are not flagged: the ones in the package build small
per-round index lists, and flagging them would drown the signal.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import Module, ProjectModel
from repro.analysis.lint.registry import rule


@rule(
    "PERF001",
    "no Python-level loops in the batched engine",
    "a for/while statement under repro/batch/ iterates in the interpreter "
    "what the batched engine exists to vectorize; hoist the body into a "
    "numpy kernel over the batch axis, or waive inline with the reason the "
    "loop must stay serial (no bit-identical vector form, fixed "
    "cache-block loop, rare-event handling)",
    paths=("repro/batch/",),
)
def perf001_batch_loops(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in module.walk():
        if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            continue
        kind = "while" if isinstance(node, ast.While) else "for"
        out.append(
            Diagnostic(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                rule="PERF001",
                message=f"Python-level {kind} loop in batched-engine code",
                hint="vectorize over the batch axis with a kernel in "
                "repro/batch/kernels.py, or add "
                "`# repro: allow[PERF001] <reason>` stating why the loop "
                "cannot be a numpy operation",
            )
        )
    return out
