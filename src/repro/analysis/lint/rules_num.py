"""NUM rules: float reassociation and dtype drift in numeric kernels.

Bit-exactness of the DNN and SoC models is part of the conformance
contract (the oracles compare kernels bit-for-bit where the arithmetic
matches).  Two quiet ways to lose it: builtin ``sum()`` over floats
(its accumulation order — and therefore its rounding — changes whenever
the iterable's construction changes) and ``np.array`` without a dtype
(the inferred dtype flips between int64 and float64 with the literal
contents, changing downstream arithmetic wholesale).
"""

from __future__ import annotations

import ast

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import Module, ProjectModel
from repro.analysis.lint.registry import rule

_KERNEL_PATHS = ("repro/dnn/", "repro/soc/")

#: Identifier fragments that mark a value as float-valued in this
#: codebase's vocabulary (times, rates, energies, measured seconds).
_FLOAT_HINTS = (
    "seconds",
    "latency",
    "energy",
    "joule",
    "watt",
    "power",
    "duration",
    "time",
    "_ms",
    "_s",
    "rate",
)


def _float_evidence(node: ast.AST, module: Module) -> str | None:
    """Why an expression looks float-valued, or ``None`` if it doesn't."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return f"float literal {sub.value!r}"
        if isinstance(sub, ast.Call):
            dotted = module.call_name(sub)
            if dotted == "float":
                return "float(...) conversion"
            if dotted is not None and dotted.startswith("numpy."):
                return f"numpy expression {dotted}(...)"
        name = None
        if isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Name):
            name = sub.id
        if name is not None:
            lowered = name.lower()
            for hint in _FLOAT_HINTS:
                if hint.startswith("_"):
                    if lowered.endswith(hint):
                        return f"float-named value {name!r}"
                elif hint in lowered:
                    return f"float-named value {name!r}"
    return None


@rule(
    "NUM001",
    "no builtin sum() over float values in kernels",
    "builtin sum() accumulates left-to-right in whatever order the "
    "iterable happens to produce; over floats the rounding depends on that "
    "order, so refactoring the producer silently changes kernel results",
    paths=_KERNEL_PATHS,
)
def num001_float_sum(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in module.walk():
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and node.args
        ):
            continue
        evidence = _float_evidence(node.args[0], module)
        if evidence is not None:
            out.append(
                Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="NUM001",
                    message=f"builtin sum() over float values ({evidence})",
                    hint="use math.fsum (order-insensitive) or np.sum with an "
                    "explicit dtype; integer reductions may be waived inline",
                )
            )
    return out


@rule(
    "NUM002",
    "np.array in kernels must pin its dtype",
    "np.array infers dtype from the payload: [1, 2] is int64, [1.0, 2] is "
    "float64 — editing a literal or a producer changes the dtype and with "
    "it every downstream arithmetic result",
    paths=_KERNEL_PATHS,
)
def num002_dtypeless_array(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in module.walk():
        if not isinstance(node, ast.Call):
            continue
        if module.call_name(node) != "numpy.array":
            continue
        if any(kw.arg == "dtype" for kw in node.keywords):
            continue
        if len(node.args) >= 2:  # positional dtype
            continue
        out.append(
            Diagnostic(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                rule="NUM002",
                message="np.array without an explicit dtype in kernel code",
                hint="pass dtype=np.float32/np.float64/... so the element type "
                "cannot drift with the payload",
            )
        )
    return out
