"""DET rules: sources of run-to-run nondeterminism.

The sweep cache and the golden corpus assume that a config simulates
identically on every run and on every host.  Three things silently break
that: global-state RNG (seeded by nobody, or seeded twice), wall-clock
reads on simulation paths (results then depend on host speed), and
iteration order that is not defined by the data (set iteration varies
across processes under string-hash randomization — exactly the boundary
the parallel sweep engine crosses).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import Module, ProjectModel
from repro.analysis.lint.registry import rule

#: Files allowed to touch global RNG state: worker seeding at the sweep
#: fan-out boundary is *the* blessed site (every task re-seeds from its
#: config hash before running).
BLESSED_SEEDING_SITES = ("repro/sweep/runner.py",)

#: numpy.random attributes that construct seeded, instance-scoped state
#: instead of mutating the global stream.
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: stdlib ``random`` attributes that are instance constructors, not
#: global-stream calls.
_RANDOM_OK = {"Random", "SystemRandom"}

_SEED_CALLS = {"random.seed", "numpy.random.seed", "numpy.random.set_state"}

#: Wall-clock reads: anything here makes simulated behaviour (or data
#: feeding signatures) depend on host time.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Files whose output feeds hashes/signatures/cache keys (DET004 scope).
_DIGEST_FILES = (
    "repro/sweep/signature.py",
    "repro/sweep/fingerprint.py",
    "repro/core/manifest.py",
    "repro/verify/golden.py",
)


@rule(
    "DET001",
    "no unseeded global-state RNG",
    "calls into the process-global random stream (random.*, np.random.*) "
    "draw from state no config seeds, so two identical configs diverge; "
    "route randomness through a seeded np.random.default_rng/random.Random "
    "instance carried by the component",
)
def det001_global_rng(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    blessed = module.path in BLESSED_SEEDING_SITES
    for node in module.walk():
        if not isinstance(node, ast.Call):
            continue
        dotted = module.call_name(node)
        if dotted is None:
            continue
        if dotted in _SEED_CALLS:
            if not blessed:
                out.append(
                    Diagnostic(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="DET001",
                        message=f"global RNG seeding via {dotted}() outside the "
                        "blessed seeding sites",
                        hint="seed instance RNGs from the config instead; global "
                        "seeding belongs only in repro/sweep/runner.py's "
                        "per-task setup",
                    )
                )
            continue
        if dotted.startswith("numpy.random."):
            member = dotted.split(".", 2)[2].split(".")[0]
            if member not in _NP_RANDOM_OK:
                out.append(
                    Diagnostic(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="DET001",
                        message=f"unseeded global-stream call {dotted}()",
                        hint="use a seeded np.random.default_rng(seed) generator "
                        "owned by the component",
                    )
                )
        elif dotted.startswith("random."):
            member = dotted.split(".", 1)[1].split(".")[0]
            if member not in _RANDOM_OK:
                out.append(
                    Diagnostic(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="DET001",
                        message=f"unseeded global-stream call {dotted}()",
                        hint="use random.Random(seed) owned by the component",
                    )
                )
    return out


@rule(
    "DET002",
    "no wall-clock reads on simulation paths",
    "sim-path code must advance on simulated time (Synchronizer.sim_time, "
    "sync periods); a wall-clock read makes behaviour depend on host speed "
    "and breaks bit-reproducibility across machines",
    paths=("repro/core/", "repro/env/", "repro/soc/"),
    exclude=("repro/core/timing.py",),  # the StageTimer is the blessed wrapper
)
def det002_wall_clock(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in module.walk():
        if not isinstance(node, ast.Call):
            continue
        dotted = module.call_name(node)
        if dotted in _WALL_CLOCK:
            out.append(
                Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="DET002",
                    message=f"wall-clock read {dotted}() on a simulation path",
                    hint="use sim time or route through StageTimer "
                    "(repro/core/timing.py); observational uses (watchdog "
                    "deadlines, stage accounting) are waived inline or "
                    "recorded in the baseline",
                )
            )
    return out


def _iterables(tree: ast.AST) -> Iterator[ast.expr]:
    """Every expression something iterates over (for loops, comprehensions)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter


@rule(
    "DET003",
    "no iteration over sets",
    "set iteration order depends on insertion history and, for strings, on "
    "per-process hash randomization — results computed from it differ "
    "between the serial and multiprocess sweep paths",
)
def det003_set_iteration(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for iterable in _iterables(module.tree):
        is_set_literal = isinstance(iterable, ast.Set)
        is_set_call = (
            isinstance(iterable, ast.Call)
            and module.call_name(iterable) in ("set", "frozenset")
        )
        if is_set_literal or is_set_call:
            out.append(
                Diagnostic(
                    path=module.path,
                    line=iterable.lineno,
                    col=iterable.col_offset,
                    rule="DET003",
                    message="iteration over a set — order is not data-defined",
                    hint="wrap in sorted(...) or iterate the original sequence",
                )
            )
    return out


@rule(
    "DET004",
    "digest code must serialize in sorted order",
    "files feeding hashes, signatures, and cache keys must not depend on "
    "dict insertion order: an unsorted json.dumps or a raw .items() loop "
    "next to a hashlib update changes the digest when construction order "
    "changes, silently splitting or poisoning the cache",
    paths=_DIGEST_FILES,
)
def det004_unsorted_digest(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in module.walk():
        if isinstance(node, ast.Call) and module.call_name(node) in (
            "json.dumps",
            "json.dump",
        ):
            sort_keys = any(
                kw.arg == "sort_keys"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            if not sort_keys:
                out.append(
                    Diagnostic(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="DET004",
                        message="json serialization without sort_keys=True in "
                        "digest-scoped code",
                        hint="pass sort_keys=True so the digest is independent "
                        "of dict construction order",
                    )
                )
    # Raw dict-view iteration inside functions that hash.
    for func in ast.walk(module.tree):
        if not isinstance(func, ast.FunctionDef):
            continue
        hashes = any(
            isinstance(n, ast.Call)
            and (module.call_name(n) or "").startswith("hashlib.")
            for n in ast.walk(func)
        )
        if not hashes:
            continue
        for iterable in _iterables(func):
            if (
                isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Attribute)
                and iterable.func.attr in ("items", "keys", "values")
            ):
                out.append(
                    Diagnostic(
                        path=module.path,
                        line=iterable.lineno,
                        col=iterable.col_offset,
                        rule="DET004",
                        message=f"unsorted .{iterable.func.attr}() iteration in a "
                        "hashing function",
                        hint="iterate sorted(....items()) so the digest is "
                        "order-independent",
                    )
                )
    return out
