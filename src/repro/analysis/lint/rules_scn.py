"""SCN rules: randomness discipline in the scenario/fuzzing package.

The fuzzer's whole contract is *replayable discovery*: the same seed and
budget must reproduce the same corpus, coverage map and minimized
reproducers byte for byte.  That only holds while every random draw in
``repro.scenario`` flows through the one injected, seeded
:class:`random.Random` the campaign owns.  A single module-level
``random.uniform()`` or ``np.random.normal()`` call couples a mutation
to interpreter-global state — which the sweep engine deliberately
reseeds per task — and silently breaks corpus reproducibility without
failing any single mission.  This rule pins the seam.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import Module, ProjectModel
from repro.analysis.lint.registry import rule

#: Module-level RNG namespaces that bypass the injected generator.
_FORBIDDEN_PREFIXES = ("random.", "np.random.", "numpy.random.")

#: Seeded constructors are the *approved* way to obtain a generator —
#: ``random.Random(seed)`` / ``np.random.default_rng(seed)`` create the
#: injected instance rather than touching shared state.
_ALLOWED_CALLS = frozenset(
    {
        "random.Random",
        "np.random.default_rng",
        "numpy.random.default_rng",
        "np.random.Generator",
        "numpy.random.Generator",
    }
)


@rule(
    "SCN001",
    "scenario code draws randomness only from an injected seeded RNG",
    "fuzzing campaigns are content-addressed and replayable (same seed + "
    "budget => byte-identical corpus, coverage map and reproducers) only "
    "while every draw comes from the campaign's own random.Random; a "
    "module-level random.* / np.random.* call uses interpreter-global "
    "state that the sweep engine reseeds per task, so it breaks corpus "
    "determinism without failing any individual mission",
    paths=("repro/scenario/",),
)
def scn001_global_rng(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in module.walk():
        if not isinstance(node, ast.Call):
            continue
        name = module.call_name(node)
        if not name or name in _ALLOWED_CALLS:
            continue
        if name.startswith(_FORBIDDEN_PREFIXES):
            out.append(
                Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="SCN001",
                    message=f"module-level RNG call {name}() in scenario code",
                    hint="draw from the injected seeded generator instead "
                    "(pass random.Random(seed) down from the campaign); "
                    "constructing a generator via random.Random(...) or "
                    "np.random.default_rng(...) is allowed",
                )
            )
    return out
