"""CFG rules: every config field must enter the sweep cache key.

The sweep cache addresses results by ``config_key`` — a digest of
``config_to_dict(config)``.  A :class:`CoSimConfig`/:class:`SyncConfig`
field that does not reach that dict makes two *different* configs hash
identically, so the cache serves stale results for whichever knob
escaped (exactly the PR 1 ``frames_per_sync`` and PR 3
fault-plan/invariant-flag class of bug).  This rule introspects the
dataclass definitions and the serializer and fails the build the moment
a new field is added without entering the key.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import DataclassDef, Module, ProjectModel
from repro.analysis.lint.registry import rule

#: The top-level config dataclass and the serializer that feeds
#: config_key (sweep cache) and the golden-corpus config records.
CONFIG_CLASS = "CoSimConfig"
SERIALIZER = "config_to_dict"


def _string_keys(node: ast.Dict) -> set[str]:
    return {
        key.value
        for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def _nested_dataclass(annotation: str, project: ProjectModel) -> DataclassDef | None:
    """A known dataclass named inside a field's annotation text."""
    for word in re.findall(r"[A-Za-z_][A-Za-z0-9_]*", annotation):
        found = project.dataclasses.get(word)
        if found is not None:
            return found
    return None


@rule(
    "CFG001",
    "config serialization must cover every dataclass field",
    "config_to_dict feeds config_key, the sweep cache's address; a field "
    "missing from the serialized form means two different configs share a "
    "cache entry and sweeps silently reuse wrong results",
    paths=("repro/core/manifest.py",),
)
def cfg001_cache_key_coverage(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    config = project.dataclasses.get(CONFIG_CLASS)
    serializer = next(
        (
            node
            for node in module.walk()
            if isinstance(node, ast.FunctionDef) and node.name == SERIALIZER
        ),
        None,
    )
    if serializer is None:
        if config is not None:
            out.append(
                Diagnostic(
                    path=module.path,
                    line=1,
                    rule="CFG001",
                    message=f"no {SERIALIZER}() found; {CONFIG_CLASS} fields have "
                    "no checkable path into the cache key",
                    hint=f"define {SERIALIZER}(config) in this module",
                )
            )
        return out

    # -- wholesale coverage of the top-level config ---------------------
    has_asdict = any(
        isinstance(node, ast.Call)
        and (module.call_name(node) or "").split(".")[-1] == "asdict"
        for node in ast.walk(serializer)
    )
    explicit_keys: set[str] = set()
    overrides: list[tuple[str, ast.Dict]] = []
    for node in ast.walk(serializer):
        if isinstance(node, ast.Dict):
            explicit_keys |= _string_keys(node)
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Subscript)
            and isinstance(node.targets[0].slice, ast.Constant)
            and isinstance(node.targets[0].slice.value, str)
        ):
            key = node.targets[0].slice.value
            explicit_keys.add(key)
            if isinstance(node.value, ast.Dict):
                overrides.append((key, node.value))

    if config is not None and not has_asdict:
        missing = [f for f in config.fields if f not in explicit_keys]
        if missing:
            out.append(
                Diagnostic(
                    path=module.path,
                    line=serializer.lineno,
                    rule="CFG001",
                    message=f"{SERIALIZER}() does not serialize {CONFIG_CLASS} "
                    f"field(s): {', '.join(missing)}",
                    hint="call dataclasses.asdict(config) for wholesale coverage, "
                    "or serialize every field explicitly",
                )
            )

    # -- hand-written nested overrides (e.g. data["sync"] = {...}) ------
    # asdict() covers nested dataclasses too, but an explicit override
    # replaces that coverage with whatever keys it lists — so the listed
    # keys must be total over the nested dataclass's fields.
    if config is None:
        return out
    for key, literal in overrides:
        annotation = config.annotation_for(key)
        nested = _nested_dataclass(annotation, project)
        if nested is None:
            continue
        listed = _string_keys(literal)
        missing = [f for f in nested.fields if f not in listed]
        if missing:
            out.append(
                Diagnostic(
                    path=module.path,
                    line=literal.lineno,
                    col=literal.col_offset,
                    rule="CFG001",
                    message=f'data["{key}"] override misses {nested.name} '
                    f"field(s): {', '.join(missing)} — they never reach the "
                    "cache key",
                    hint=f"add the missing field(s) to the {key!r} dict so "
                    "config_key sees them",
                )
            )
    return out
