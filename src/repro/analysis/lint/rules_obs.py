"""OBS rules: the metric catalog is single-sourced.

Every metric the observability layer records is declared once, in
:mod:`repro.obs.declarations` — the registry rejects undeclared names at
runtime, but only on paths a test actually drives.  This rule moves the
check to review time: a ``rose_``-prefixed metric name used anywhere in
the tree must exist in the declarations catalog, and :class:`MetricSpec`
itself may only be constructed there.  That keeps the catalog the single
place to audit bucket edges, label sets, and coverage exemptions.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import Module, ProjectModel
from repro.analysis.lint.registry import rule

#: The one module allowed to construct MetricSpec / declare metric names.
DECLARATIONS_PATH = "repro/obs/declarations.py"

#: Registry methods whose first positional argument is a metric name.
_RECORD_ATTRS = {"inc", "set", "observe", "value", "total", "advance_to", "series_count"}

#: Project metric names all share this prefix (Prometheus-style).
_METRIC_PREFIX = "rose_"


def _spec_name_arg(node: ast.Call) -> ast.expr | None:
    """The ``name`` argument of a ``MetricSpec(...)`` call, if literal."""
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


def _declared_names(project: ProjectModel) -> set[str] | None:
    """Metric names declared in the catalog module (``None`` if absent).

    Fixture trees without a declarations module skip the undeclared-name
    half of the rule rather than flagging every metric in sight.
    """
    module = project.by_path.get(DECLARATIONS_PATH)
    if module is None:
        return None
    names: set[str] = set()
    for node in module.walk():
        if not isinstance(node, ast.Call):
            continue
        callee = module.call_name(node)
        if callee is None or callee.split(".")[-1] != "MetricSpec":
            continue
        arg = _spec_name_arg(node)
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            names.add(arg.value)
    return names


@rule(
    "OBS001",
    "metric names and MetricSpec declarations live in repro.obs.declarations",
    "a metric name recorded against the registry but missing from the "
    "declarations catalog raises ConfigError at runtime on whichever path "
    "first records it, and a MetricSpec constructed elsewhere splits the "
    "catalog into places no audit will find",
    paths=("repro/",),
)
def obs001_declared_metrics(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    if module.path == DECLARATIONS_PATH:
        return out
    declared = _declared_names(project)
    for node in module.walk():
        if not isinstance(node, ast.Call):
            continue
        callee = module.call_name(node)
        if callee is not None and callee.split(".")[-1] == "MetricSpec":
            out.append(
                Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="OBS001",
                    message="MetricSpec constructed outside the declarations "
                    "catalog",
                    hint=f"declare the metric in {DECLARATIONS_PATH} and record "
                    "against it by name",
                )
            )
            continue
        if declared is None:
            continue
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _RECORD_ATTRS
            and node.args
        ):
            continue
        first = node.args[0]
        if not (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
            and first.value.startswith(_METRIC_PREFIX)
        ):
            continue
        if first.value not in declared:
            out.append(
                Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="OBS001",
                    message=f"metric {first.value!r} is not declared in the "
                    "catalog",
                    hint=f"add a MetricSpec for it to {DECLARATIONS_PATH} "
                    "(or fix the name)",
                )
            )
    return out
