"""Static analysis for co-simulation reproducibility (``python -m repro lint``).

The whole evaluation methodology rests on deterministic, bit-reproducible
co-simulation: the sweep cache (PR 2) and the golden-trace corpus (PR 3)
are only sound because identical configs simulate identically.  Runtime
machinery (invariants, oracles, golden replays) catches divergence after
the fact; this package catches the *sources* of divergence at review
time, before a golden re-record or a poisoned cache entry ever happens.

Rule families (see the modules for the catalog):

* **DET** (:mod:`.rules_det`) — determinism: unseeded global-state RNG,
  wall-clock reads on simulation paths, unordered iteration feeding
  digests;
* **NUM** (:mod:`.rules_num`) — numeric reproducibility: float
  reassociation via builtin ``sum()``, dtype-less ``np.array`` in
  kernels;
* **PROTO** (:mod:`.rules_proto`) — protocol totality: packet-type
  dispatch maps that silently miss enum members, swallowed exceptions in
  transport/synchronizer code;
* **CFG** (:mod:`.rules_cfg`) — cache-key soundness: every config
  dataclass field must enter the sweep cache key;
* **OBS** (:mod:`.rules_obs`) — observability: metric names and
  :class:`MetricSpec` declarations single-sourced in
  :mod:`repro.obs.declarations`;
* **PERF** (:mod:`.rules_perf`) — batched-engine vectorization: no
  Python-level loops under :mod:`repro.batch` without a waived reason;
* **RES** (:mod:`.rules_res`) — resilience: retry loops in the sweep
  engine must be bounded, and every sweep-side wait must route through
  the shared backoff helper in :mod:`repro.sweep.resilience`;
* **SCN** (:mod:`.rules_scn`) — fuzzer determinism: scenario/fuzzing
  code draws randomness only from the campaign's injected seeded
  :class:`random.Random`, never the module-level ``random.*`` /
  ``np.random.*`` APIs;
* **SRV** (:mod:`.rules_srv`) — serve determinism: the sweep service
  reads time only through the injected :class:`~repro.serve.clock.Clock`
  seam, keeping the end-to-end service harness fake-clock drivable.

Diagnostics are suppressed either inline (``# repro: allow[RULE]`` on
the flagged line or the line above) or through a committed baseline file
(``lint-baseline.json`` at the repository root) for intentional,
documented leftovers.
"""

from repro.analysis.lint.baseline import Baseline, baseline_path_for
from repro.analysis.lint.diagnostics import Diagnostic, render_json, render_text
from repro.analysis.lint.engine import LintEngine, LintReport, Module, ProjectModel
from repro.analysis.lint.registry import (
    Rule,
    all_rules,
    default_rules,
    get_rule,
    project_rule,
    rule,
)

# Importing the rule modules registers every shipped rule.  The deepcheck
# package registers the whole-program DEEP rules the same way.
from repro.analysis.lint import (  # noqa: E402  (registration side effect)
    rules_cfg,  # noqa: F401
    rules_det,  # noqa: F401
    rules_num,  # noqa: F401
    rules_obs,  # noqa: F401
    rules_perf,  # noqa: F401
    rules_proto,  # noqa: F401
    rules_res,  # noqa: F401
    rules_scn,  # noqa: F401
    rules_srv,  # noqa: F401
    rules_waive,  # noqa: F401
)
from repro.analysis import deepcheck  # noqa: E402,F401  (registers DEEP rules)

__all__ = [
    "Baseline",
    "Diagnostic",
    "LintEngine",
    "LintReport",
    "Module",
    "ProjectModel",
    "Rule",
    "all_rules",
    "baseline_path_for",
    "default_rules",
    "get_rule",
    "project_rule",
    "render_json",
    "render_text",
    "rule",
]
