"""SRV rules: clock-injection discipline in the serve layer.

The sweep service's end-to-end test harness is deterministic only
because every serve-side component reads time through an injected
:class:`~repro.serve.clock.Clock` — a :class:`FakeClock` under test, the
real monotonic clock in production.  One stray ``time.monotonic()`` or
``time.sleep()`` re-couples lease expiry, heartbeat staleness, or tick
cadence to wall time and turns the kill-a-shard/steal-its-work scenario
back into a flaky, sleep-calibrated test.  This rule pins the seam.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import Module, ProjectModel
from repro.analysis.lint.registry import rule

#: The one module under ``repro/serve`` allowed to touch ``time.*``:
#: :class:`repro.serve.clock.SystemClock` wraps the real clock behind
#: the injectable :class:`~repro.serve.clock.Clock` protocol.
BLESSED_CLOCK_MODULE = "repro/serve/clock.py"

#: ``time`` attributes whose direct use defeats clock injection.
_FORBIDDEN_TIME_CALLS = frozenset(
    {
        "time.time",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.sleep",
    }
)


@rule(
    "SRV001",
    "serve code must read time through an injected Clock",
    "the serve layer's determinism (fake-clock harness, hand-driven lease "
    "expiry, reproducible steal scenarios) depends on every time read and "
    "every wait going through the Clock protocol from repro.serve.clock; "
    "a direct time.* call re-couples the scheduler to wall time and makes "
    "the end-to-end service tests timing-dependent",
    paths=("repro/serve/",),
    exclude=(BLESSED_CLOCK_MODULE,),
)
def srv001_direct_time(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in module.walk():
        if not isinstance(node, ast.Call):
            continue
        if module.call_name(node) in _FORBIDDEN_TIME_CALLS:
            out.append(
                Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="SRV001",
                    message="direct time.* call in the serve layer",
                    hint="accept a repro.serve.clock.Clock at construction and "
                    "use clock.now() / clock.sleep(); only SystemClock (in "
                    "repro/serve/clock.py) may touch the time module",
                )
            )
    return out
