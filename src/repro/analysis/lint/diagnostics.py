"""Diagnostic records and their text/JSON renderings.

A :class:`Diagnostic` is one finding: rule id, file, line, message, and
a fix hint.  Suppression state (``waived`` by an inline comment,
``baselined`` by the committed baseline file) is recorded on the
diagnostic rather than by dropping it, so reports can show *everything*
the analyzer saw while exit codes consider only active findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One static-analysis finding, addressable down to the line."""

    path: str  # repo-relative POSIX path
    line: int  # 1-based
    rule: str  # e.g. "DET002"
    message: str
    hint: str = ""  # how to fix (or how to waive when intentional)
    col: int = 0  # 0-based, best effort
    waived: bool = field(default=False, compare=False)
    baselined: bool = field(default=False, compare=False)

    @property
    def active(self) -> bool:
        """True when the finding counts toward a failing exit code."""
        return not (self.waived or self.baselined)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def suppressed(self, *, waived: bool = False, baselined: bool = False) -> "Diagnostic":
        """A copy with suppression flags OR-ed in."""
        return replace(
            self,
            waived=self.waived or waived,
            baselined=self.baselined or baselined,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "waived": self.waived,
            "baselined": self.baselined,
        }


def render_text(diagnostics: list[Diagnostic], *, show_suppressed: bool = False) -> str:
    """One line per finding: ``path:line: RULE message  [hint: ...]``."""
    lines = []
    for diag in sorted(diagnostics):
        if not diag.active and not show_suppressed:
            continue
        suffix = ""
        if diag.waived:
            suffix = "  (waived)"
        elif diag.baselined:
            suffix = "  (baselined)"
        hint = f"  [hint: {diag.hint}]" if diag.hint and diag.active else ""
        lines.append(f"{diag.location}: {diag.rule} {diag.message}{hint}{suffix}")
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    """Machine-readable report (all findings, suppressed ones flagged)."""
    active = [d for d in diagnostics if d.active]
    payload = {
        "format": "rose-lint-report/1",
        "summary": {
            "total": len(diagnostics),
            "active": len(active),
            "waived": sum(1 for d in diagnostics if d.waived),
            "baselined": sum(1 for d in diagnostics if d.baselined),
        },
        "diagnostics": [d.as_dict() for d in sorted(diagnostics)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
