"""PROTO rules: packet-protocol totality and loud failure.

The synchronizer/bridge link is the system's one wire; a dispatch table
that silently misses a :class:`~repro.core.packets.PacketType` member
turns a new packet type into a runtime KeyError (or worse, a silent
drop) on a path the golden corpus may not exercise.  Likewise, a broad
``except`` that swallows everything converts protocol violations into
silent divergence instead of a diagnosable failure.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import Module, ProjectModel
from repro.analysis.lint.registry import rule

#: A dict literal counts as a dispatch/coverage map over an enum once
#: this many of its keys are members of the same enum.
_DISPATCH_THRESHOLD = 3

#: Enums whose dispatch maps must be total.
_PROTOCOL_ENUMS = ("PacketType",)

_TRANSPORT_PATHS = (
    "repro/core/",
    "repro/soc/firesim.py",
    "repro/env/rpc.py",
    "repro/sweep/",
)


def _enum_key(module: Module, key: ast.expr | None) -> tuple[str, str] | None:
    """``(enum_name, member)`` when a dict key is an enum attribute."""
    if not isinstance(key, ast.Attribute):
        return None
    dotted = module.dotted(key)
    if dotted is None or "." not in dotted:
        return None
    parts = dotted.split(".")
    if len(parts) < 2:
        return None
    return parts[-2], parts[-1]


@rule(
    "PROTO001",
    "packet-type dispatch maps must cover every enum member",
    "a handler/format map keyed by PacketType that misses a member makes "
    "the missing packet type fail at runtime on whichever path first "
    "carries it; totality is checkable at review time",
    paths=("repro/core/", "repro/soc/"),
)
def proto001_dispatch_totality(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in module.walk():
        if not isinstance(node, ast.Dict):
            continue
        covered: dict[str, set[str]] = {}
        for key in node.keys:
            pair = _enum_key(module, key)
            if pair is not None and pair[0] in _PROTOCOL_ENUMS:
                covered.setdefault(pair[0], set()).add(pair[1])
        for enum_name, members in covered.items():
            enum_def = project.enums.get(enum_name)
            if enum_def is None or len(members) < _DISPATCH_THRESHOLD:
                continue
            missing = [m for m in enum_def.members if m not in members]
            if missing:
                out.append(
                    Diagnostic(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="PROTO001",
                        message=f"dispatch map over {enum_name} misses "
                        f"{len(missing)} member(s): {', '.join(missing)}",
                        hint="add entries for the missing members (or waive "
                        "inline when a special-cased path handles them)",
                    )
                )
    return out


def _swallows(body: list[ast.stmt]) -> bool:
    """A handler body that discards the exception without acting on it."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        if isinstance(stmt, ast.Continue):
            continue
        return False
    return True


@rule(
    "PROTO002",
    "no bare or swallowed broad excepts in link code",
    "transport/synchronizer/bridge code that catches everything and "
    "continues converts CRC failures, framing bugs, and protocol "
    "violations into silent behaviour differences; catch the specific "
    "error and count or re-raise it",
    paths=_TRANSPORT_PATHS,
)
def proto002_swallowed_except(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in module.walk():
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            out.append(
                Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="PROTO002",
                    message="bare except: catches everything, including "
                    "KeyboardInterrupt",
                    hint="name the exception type(s) this path can actually "
                    "recover from",
                )
            )
            continue
        dotted = module.dotted(node.type)
        broad = dotted in ("Exception", "BaseException")
        if broad and _swallows(node.body):
            out.append(
                Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="PROTO002",
                    message=f"broad except {dotted} with an empty body swallows "
                    "link failures",
                    hint="catch the specific error, or record/count the failure "
                    "before continuing",
                )
            )
    return out
