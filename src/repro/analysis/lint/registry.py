"""Rule protocol and registry.

A rule is a callable plus metadata, registered with the :func:`rule`
decorator.  Rules receive one parsed :class:`~.engine.Module` at a time
along with the whole-project :class:`~.engine.ProjectModel`, so a rule
can be purely local (bare ``except:``) or cross-module (a dispatch map in
one file checked against an enum defined in another).

Scoping lives on the rule: ``paths`` / ``exclude`` are repo-relative
POSIX prefixes (or exact file paths).  A rule only sees modules it
applies to, which keeps e.g. the wall-clock rule out of analysis code
that legitimately measures wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.lint.diagnostics import Diagnostic
    from repro.analysis.lint.engine import Module, ProjectModel

RuleFunc = Callable[["Module", "ProjectModel"], List["Diagnostic"]]

_REGISTRY: dict[str, "Rule"] = {}


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule."""

    id: str  # "DET001", "CFG001", ...
    title: str  # short imperative summary
    rationale: str  # why violating this breaks reproducibility
    func: RuleFunc
    paths: tuple[str, ...] = ()  # apply only under these prefixes ("" = everywhere)
    exclude: tuple[str, ...] = ()  # blessed files/prefixes the rule skips

    @property
    def family(self) -> str:
        return self.id.rstrip("0123456789")

    def applies_to(self, path: str) -> bool:
        """Whether this rule inspects the module at repo-relative ``path``."""
        if any(_matches(path, prefix) for prefix in self.exclude):
            return False
        if not self.paths:
            return True
        return any(_matches(path, prefix) for prefix in self.paths)

    def check(self, module: "Module", project: "ProjectModel") -> list["Diagnostic"]:
        return self.func(module, project)


def _matches(path: str, prefix: str) -> bool:
    """Exact file match or directory-prefix match."""
    return path == prefix or path.startswith(prefix.rstrip("/") + "/")


def rule(
    id: str,
    title: str,
    rationale: str,
    paths: Iterable[str] = (),
    exclude: Iterable[str] = (),
) -> Callable[[RuleFunc], RuleFunc]:
    """Register a rule function under ``id`` (decorator)."""

    def register(func: RuleFunc) -> RuleFunc:
        if id in _REGISTRY:
            raise ValueError(f"duplicate rule id {id!r}")
        _REGISTRY[id] = Rule(
            id=id,
            title=title,
            rationale=rationale,
            func=func,
            paths=tuple(paths),
            exclude=tuple(exclude),
        )
        return func

    return register


def all_rules() -> dict[str, Rule]:
    """Every registered rule, by id (import the rule modules first)."""
    return dict(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None
