"""Rule protocol and registry.

A rule is a callable plus metadata, registered with the :func:`rule`
decorator.  Rules receive one parsed :class:`~.engine.Module` at a time
along with the whole-project :class:`~.engine.ProjectModel`, so a rule
can be purely local (bare ``except:``) or cross-module (a dispatch map in
one file checked against an enum defined in another).

Two rule shapes share the registry:

* **module rules** (:func:`rule`) run once per module in scope and see
  ``(module, project)``;
* **project rules** (:func:`project_rule`) run once per engine run over
  the whole :class:`~.engine.ProjectModel` — the shape the deepcheck
  passes (call-graph taint, race detection, protocol conformance) need.
  Project rules are ``deep`` by default: the engine only runs them when
  deep analysis is requested (``lint --deep``) or the rule is selected
  explicitly, keeping the fast per-file path fast.

Scoping lives on the rule: ``paths`` / ``exclude`` are repo-relative
POSIX prefixes (or exact file paths).  A module rule only sees modules it
applies to; a project rule sees the whole tree but its findings are
filtered to in-scope paths, which keeps e.g. the wall-clock rule out of
analysis code that legitimately measures wall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.lint.diagnostics import Diagnostic
    from repro.analysis.lint.engine import Module, ProjectModel

RuleFunc = Callable[["Module", "ProjectModel"], List["Diagnostic"]]
ProjectRuleFunc = Callable[["ProjectModel"], List["Diagnostic"]]

_REGISTRY: dict[str, "Rule"] = {}


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule."""

    id: str  # "DET001", "CFG001", ...
    title: str  # short imperative summary
    rationale: str  # why violating this breaks reproducibility
    func: RuleFunc | None = None  # module rules: run per file in scope
    project_func: ProjectRuleFunc | None = None  # project rules: run once
    paths: tuple[str, ...] = ()  # apply only under these prefixes ("" = everywhere)
    exclude: tuple[str, ...] = ()  # blessed files/prefixes the rule skips
    #: Deep rules (whole-program dataflow) only run under ``lint --deep``
    #: or when selected explicitly with ``--rule``.
    deep: bool = False

    @property
    def family(self) -> str:
        return self.id.rstrip("0123456789")

    def applies_to(self, path: str) -> bool:
        """Whether this rule inspects the module at repo-relative ``path``."""
        if any(_matches(path, prefix) for prefix in self.exclude):
            return False
        if not self.paths:
            return True
        return any(_matches(path, prefix) for prefix in self.paths)

    def check(self, module: "Module", project: "ProjectModel") -> list["Diagnostic"]:
        if self.func is None:
            return []
        return self.func(module, project)

    def check_project(self, project: "ProjectModel") -> list["Diagnostic"]:
        if self.project_func is None:
            return []
        return [d for d in self.project_func(project) if self.applies_to(d.path)]


def _matches(path: str, prefix: str) -> bool:
    """Exact file match or directory-prefix match."""
    return path == prefix or path.startswith(prefix.rstrip("/") + "/")


def _register(entry: Rule) -> None:
    if entry.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {entry.id!r}")
    _REGISTRY[entry.id] = entry


def rule(
    id: str,
    title: str,
    rationale: str,
    paths: Iterable[str] = (),
    exclude: Iterable[str] = (),
) -> Callable[[RuleFunc], RuleFunc]:
    """Register a per-module rule function under ``id`` (decorator)."""

    def register(func: RuleFunc) -> RuleFunc:
        _register(
            Rule(
                id=id,
                title=title,
                rationale=rationale,
                func=func,
                paths=tuple(paths),
                exclude=tuple(exclude),
            )
        )
        return func

    return register


def project_rule(
    id: str,
    title: str,
    rationale: str,
    paths: Iterable[str] = (),
    exclude: Iterable[str] = (),
    deep: bool = True,
) -> Callable[[ProjectRuleFunc], ProjectRuleFunc]:
    """Register a whole-program rule function under ``id`` (decorator)."""

    def register(func: ProjectRuleFunc) -> ProjectRuleFunc:
        _register(
            Rule(
                id=id,
                title=title,
                rationale=rationale,
                project_func=func,
                paths=tuple(paths),
                exclude=tuple(exclude),
                deep=deep,
            )
        )
        return func

    return register


def all_rules() -> dict[str, Rule]:
    """Every registered rule, by id (import the rule modules first)."""
    return dict(_REGISTRY)


def default_rules() -> dict[str, Rule]:
    """The fast per-file rule set: everything except deep project rules."""
    return {rule_id: r for rule_id, r in _REGISTRY.items() if not r.deep}


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None
