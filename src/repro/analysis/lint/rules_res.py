"""RES rules: resilience discipline in the sweep engine.

The supervised sweep loop promises two things the type system cannot
check: every retry loop terminates (a poison task is quarantined, never
spun on forever), and every wait is policy-shaped (deterministic,
bounded backoff from :mod:`repro.sweep.resilience` — not an ad-hoc
``time.sleep`` sprinkled where a hang was once observed).  These rules
pin both promises at review time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import Module, ProjectModel
from repro.analysis.lint.registry import rule

#: The one module allowed to call ``time.sleep`` under ``repro/sweep``:
#: :func:`repro.sweep.resilience.backoff_sleep` (the shared backoff
#: helper) and :func:`repro.sweep.resilience.wait_for` (supervisor
#: parking) both live there, giving the sweep a single auditable wait
#: site.
BLESSED_SLEEP_MODULE = "repro/sweep/resilience.py"


def _own_statements(loop: ast.While) -> Iterator[ast.stmt]:
    """Statements whose ``break``/``raise`` would exit *this* loop.

    Walks the loop body without descending into nested loops (their
    ``break`` exits the inner loop) or nested function definitions
    (their statements execute elsewhere).
    """
    stack: list[ast.stmt] = list(loop.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (ast.While, ast.For, ast.AsyncFor, ast.FunctionDef, ast.AsyncFunctionDef),
        ):
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, (ast.ExceptHandler, ast.match_case)):
                stack.extend(
                    grand
                    for grand in ast.iter_child_nodes(child)
                    if isinstance(grand, ast.stmt)
                )


def _is_unconditional(test: ast.expr) -> bool:
    """``while True:`` / ``while 1:`` — loops bounded only by their body."""
    return isinstance(test, ast.Constant) and bool(test.value)


@rule(
    "RES001",
    "retry loops must be bounded",
    "an unconditionally-true loop with no exit of its own retries forever: "
    "a poison task then wedges the sweep instead of being quarantined. "
    "Bound the loop on the RetryPolicy budget (while policy.allows_retry(...)"
    " / while queue or inflight) or give it an explicit break/return/raise",
    paths=("repro/sweep/",),
)
def res001_unbounded_loop(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in module.walk():
        if not isinstance(node, ast.While) or not _is_unconditional(node.test):
            continue
        has_exit = any(
            isinstance(stmt, (ast.Break, ast.Return, ast.Raise))
            for stmt in _own_statements(node)
        )
        if not has_exit:
            out.append(
                Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="RES001",
                    message="unbounded retry loop: while-True with no break, "
                    "return, or raise of its own",
                    hint="bound the loop on the RetryPolicy attempt budget "
                    "(repro.sweep.resilience) so poison tasks quarantine "
                    "instead of spinning forever",
                )
            )
    return out


@rule(
    "RES002",
    "no bare time.sleep in the sweep engine",
    "an ad-hoc sleep is an unbounded, nondeterministic wait: sweep-side "
    "waiting must route through the shared backoff helper "
    "(repro.sweep.resilience.backoff_sleep / wait_for) so every delay is "
    "policy-bounded and derived from the config key, not from tuning "
    "folklore",
    paths=("repro/sweep/",),
    exclude=(BLESSED_SLEEP_MODULE,),
)
def res002_bare_sleep(module: Module, project: ProjectModel) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in module.walk():
        if not isinstance(node, ast.Call):
            continue
        if module.call_name(node) == "time.sleep":
            out.append(
                Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="RES002",
                    message="bare time.sleep() in the sweep engine",
                    hint="use repro.sweep.resilience.backoff_sleep(policy, key, "
                    "attempt) between retries, or wait_for(seconds) for "
                    "supervisor-computed waits",
                )
            )
    return out
