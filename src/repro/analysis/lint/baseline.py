"""Baseline suppression: a committed ledger of accepted findings.

The baseline records intentional leftovers — findings that are real but
blessed, with their rationale kept in DESIGN.md §8 — so ``python -m
repro lint`` can fail on *new* diagnostics while the accepted ones stay
visible (reported as ``baselined``) instead of silently vanishing.

Entries match on ``(rule, path, line)``; regenerate the file with
``python -m repro lint --write-baseline`` after intentional churn.  The
engine reports entries that matched nothing as *stale* so the ledger
never rots.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lint.diagnostics import Diagnostic

BASELINE_FORMAT = "rose-lint-baseline/1"
BASELINE_NAME = "lint-baseline.json"


def baseline_path_for(root: str | Path) -> Path:
    """Where the baseline lives for a tree scanned at ``root``.

    Looks in ``root`` itself, then one directory up (scanning ``src/``
    finds the repo-root file).  When neither exists — a fresh tree —
    the repo-root location is returned so ``--write-baseline`` creates
    it in the canonical place.
    """
    root = Path(root)
    for candidate in (root / BASELINE_NAME, root.parent / BASELINE_NAME):
        if candidate.is_file():
            return candidate
    return root.parent / BASELINE_NAME


class Baseline:
    """Accepted findings, keyed by ``(rule, path, line)``."""

    def __init__(self, entries: list[dict[str, object]], path: Path | None = None):
        self.path = path
        self.entries = entries
        self._index: dict[tuple[str, str, int], dict[str, object]] = {}
        self._consumed: set[tuple[str, str, int]] = set()
        for entry in entries:
            key = (str(entry["rule"]), str(entry["path"]), int(entry["line"]))  # type: ignore[arg-type]
            self._index[key] = entry

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=[])

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls(entries=[], path=path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid lint baseline {path}: {exc}") from exc
        if data.get("format") != BASELINE_FORMAT:
            raise ConfigError(
                f"unsupported lint baseline format {data.get('format')!r} in {path}"
            )
        entries = data.get("entries", [])
        for entry in entries:
            missing = {"rule", "path", "line"} - set(entry)
            if missing:
                raise ConfigError(
                    f"baseline entry in {path} missing keys: {sorted(missing)}"
                )
        return cls(entries=entries, path=path)

    @classmethod
    def from_diagnostics(
        cls, diagnostics: list["Diagnostic"], path: Path | None = None
    ) -> "Baseline":
        """Build a baseline accepting every *active* finding given."""
        entries = [
            {
                "rule": diag.rule,
                "path": diag.path,
                "line": diag.line,
                "message": diag.message,
            }
            for diag in sorted(diagnostics)
            if not diag.waived  # inline waivers stay inline
        ]
        return cls(entries=entries, path=path)

    # ------------------------------------------------------------------
    def matches(self, diag: "Diagnostic") -> bool:
        """Whether ``diag`` is accepted (marks the entry as consumed)."""
        key = (diag.rule, diag.path, diag.line)
        if key in self._index:
            self._consumed.add(key)
            return True
        return False

    def stale(self) -> list[dict[str, object]]:
        """Entries no diagnostic matched during the run (prune these)."""
        return [
            entry
            for key, entry in sorted(self._index.items())
            if key not in self._consumed
        ]

    def pruned(self) -> "Baseline":
        """A copy keeping only the entries consumed during the last run.

        Run the engine against this baseline first (``matches`` records
        consumption), then write the pruned copy back — that is what
        ``lint --prune-baseline`` does.
        """
        kept = [
            entry
            for entry in self.entries
            if (str(entry["rule"]), str(entry["path"]), int(entry["line"]))  # type: ignore[arg-type]
            in self._consumed
        ]
        return Baseline(entries=kept, path=self.path)

    def __len__(self) -> int:
        return len(self._index)

    # ------------------------------------------------------------------
    def write(self, path: str | Path | None = None) -> Path:
        """Serialize to ``path`` (or the path the baseline was loaded from)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ConfigError("no path to write the lint baseline to")
        payload = {"format": BASELINE_FORMAT, "entries": self.entries}
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return target
