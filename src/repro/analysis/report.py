"""Paper-vs-measured report generation.

Builds a markdown report of the reproduction status — the content of
EXPERIMENTS.md, regenerated from live runs — so the claim "shape
preserved" stays checkable as the code evolves.  The full closed-loop
sweeps take minutes; :func:`quick_report` runs a reduced single-seed
subset suitable for an example script.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.figures import fig15_data, table3_rows
from repro.core.config import CoSimConfig
from repro.core.cosim import MissionResult, run_mission

#: Paper numbers the report compares against (Table 3 and the headline
#: mission times from Figures 11/12).
PAPER_TABLE3 = {
    "resnet6": (77, 101, 0.72),
    "resnet11": (83, 108, 0.78),
    "resnet14": (85, 125, 0.82),
    "resnet18": (130, 185, 0.83),
    "resnet34": (225, 300, 0.86),
}
PAPER_FIG12_BEST = 12.14  # s at 9 m/s


def _mission_cell(result: MissionResult) -> str:
    status = f"{result.mission_time:.2f}s" if result.completed else "DNF"
    return f"{status} ({result.collisions} coll.)"


def table3_section() -> list[str]:
    lines = [
        "## Table 3 — DNN latency and accuracy",
        "",
        "| model | BOOM+G paper | measured | Rocket+G paper | measured | accuracy paper | measured |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in table3_rows(accuracy_samples=2000):
        paper_boom, paper_rocket, paper_acc = PAPER_TABLE3[row["model"]]
        lines.append(
            f"| {row['model']} | {paper_boom} ms | {row['latency_boom_ms']:.0f} ms "
            f"| {paper_rocket} ms | {row['latency_rocket_ms']:.0f} ms "
            f"| {paper_acc:.0%} | {row['accuracy']:.0%} |"
        )
    return lines


def fig12_section(seed: int = 0) -> list[str]:
    base = CoSimConfig(
        world="s-shape", soc="A", model="resnet14", max_sim_time=60.0, seed=seed
    )
    lines = [
        "## Figure 12 — velocity sweep (ResNet14, BOOM+Gemmini)",
        "",
        f"Paper optimum: 9 m/s at {PAPER_FIG12_BEST} s.",
        "",
        "| target | measured |",
        "|---|---|",
    ]
    for velocity in (6.0, 9.0, 12.0):
        result = run_mission(replace(base, target_velocity=velocity))
        lines.append(f"| {velocity:.0f} m/s | {_mission_cell(result)} |")
    return lines


def fig15_section() -> list[str]:
    lines = [
        "## Figure 15 — co-simulation throughput",
        "",
        "| cycles/sync | throughput |",
        "|---|---|",
    ]
    for point in fig15_data():
        lines.append(
            f"| {point.cycles_per_sync / 1e6:.0f}M | {point.throughput_mhz:.2f} MHz |"
        )
    return lines


def quick_report(seed: int = 0) -> str:
    """A reduced, single-seed reproduction report (markdown)."""
    sections = [
        ["# Reproduction report (quick subset)", "",
         "Regenerated from live runs; see EXPERIMENTS.md for the full",
         "multi-seed record and benchmarks/ for the asserted shapes.", ""],
        table3_section(),
        [""],
        fig12_section(seed=seed),
        [""],
        fig15_section(),
    ]
    return "\n".join(line for section in sections for line in section) + "\n"
