"""Analysis: per-figure/table data generation and text rendering.

Each ``table*`` / ``fig*`` function regenerates the data behind one of the
paper's evaluation artifacts (see DESIGN.md's per-experiment index); the
benchmarks print these and assert the paper's qualitative shape.
"""

from repro.analysis.render import format_table
from repro.analysis.figures import (
    fig10_data,
    fig11_data,
    fig12_data,
    fig13_data,
    fig14_data,
    fig15_data,
    fig16_data,
    table2_rows,
    table3_rows,
    table4_rows,
)

__all__ = [
    "format_table",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "fig10_data",
    "fig11_data",
    "fig12_data",
    "fig13_data",
    "fig14_data",
    "fig15_data",
    "fig16_data",
]
