"""Terminal plotting: trajectory top views and series sparklines.

The artifact renders figures with matplotlib; this repo is dependency-
light, so the examples and benches render to text instead: a top-view
raster of the course walls and the flown trajectory, and sparklines for
scalar series (latency, iterations).
"""

from __future__ import annotations

import numpy as np

from repro.env.worlds import World

#: Sparkline glyphs, low to high.
_SPARKS = " .:-=+*#%@"


def sparkline(values, width: int = 60) -> str:
    """Render a numeric series as a one-line text sparkline."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        return ""
    if values.size > width:
        # Downsample by block max (peaks matter more than troughs).
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array(
            [values[a:b].max() if b > a else values[a] for a, b in zip(edges, edges[1:])]
        )
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo
    if span <= 0:
        return _SPARKS[1] * values.size
    indices = ((values - lo) / span * (len(_SPARKS) - 1)).round().astype(int)
    return "".join(_SPARKS[i] for i in indices)


def trajectory_plot(
    world: World,
    trajectories: dict[str, list],
    width: int = 100,
    height: int = 18,
) -> str:
    """Top-view ASCII raster: walls (``#``) plus one glyph per trajectory.

    ``trajectories`` maps a single-character-worthy label to a list of
    samples with ``x`` / ``y`` attributes (e.g.
    :class:`~repro.env.simulator.TrajectorySample`).  The first character
    of each label is the glyph.
    """
    walls = np.vstack([world.left_wall.points, world.right_wall.points])
    xs = [walls[:, 0]]
    ys = [walls[:, 1]]
    for samples in trajectories.values():
        if samples:
            xs.append(np.array([p.x for p in samples]))
            ys.append(np.array([p.y for p in samples]))
    all_x = np.concatenate(xs)
    all_y = np.concatenate(ys)
    x_lo, x_hi = float(all_x.min()) - 1, float(all_x.max()) + 1
    y_lo, y_hi = float(all_y.min()) - 1, float(all_y.max()) + 1

    def to_cell(x, y):
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y_hi - y) / (y_hi - y_lo) * (height - 1))
        return row, col

    raster = [[" "] * width for _ in range(height)]

    # Walls: sample each wall polyline densely.
    for wall in (world.left_wall, world.right_wall):
        for s in np.linspace(0, wall.length, width * 3):
            point = wall.point_at_arclength(float(s))
            row, col = to_cell(float(point[0]), float(point[1]))
            raster[row][col] = "#"

    # Trajectories, drawn in order so later ones overlay earlier ones.
    for label, samples in trajectories.items():
        glyph = label[0] if label else "*"
        for p in samples:
            row, col = to_cell(p.x, p.y)
            raster[row][col] = glyph

    legend = "  ".join(f"{label[0]}={label}" for label in trajectories)
    lines = ["".join(row) for row in raster]
    return "\n".join(lines + [legend])
