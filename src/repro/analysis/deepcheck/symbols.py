"""Whole-program symbol table: every function, class, and module global.

The per-module :class:`~repro.analysis.lint.engine.Module` objects know
their own AST; this layer gives them *names*.  Each definition gets a
fully qualified name derived from its repo-relative path —
``repro/core/bridge.py`` defines symbols under ``repro.core.bridge`` —
so the call graph, the taint pass, and diagnostics all speak one
vocabulary that survives across modules.

Indexed facts:

* **functions** — module-level functions and methods, by qualified name
  (``repro.core.bridge.RoseBridge.grant_step``) plus bare-name and
  method-name indices for the resolver's fallbacks;
* **classes** — base-class names (resolved through import aliases) for
  the class-hierarchy approximation of method dispatch;
* **globals** — module-level assignments, with a mutability judgement
  (literal/constructor containers are mutable; constants are not), the
  raw material of the fork-safety pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.lint.engine import Module, ProjectModel


def module_name(path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``repro/core/bridge.py`` -> ``repro.core.bridge``;
    ``repro/core/__init__.py`` -> ``repro.core``.
    """
    parts = path[:-3].split("/") if path.endswith(".py") else path.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # "repro.core.bridge.RoseBridge.grant_step"
    path: str  # repo-relative POSIX path
    line: int
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False)
    class_name: str | None = None  # bare class name for methods

    @property
    def name(self) -> str:
        return self.node.name


@dataclass(frozen=True)
class ClassInfo:
    """One class definition: resolved base names and its methods."""

    qualname: str  # "repro.core.bridge.RoseBridge"
    name: str  # "RoseBridge"
    path: str
    line: int
    bases: tuple[str, ...]  # dotted, alias-resolved base names
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


#: Constructor calls whose results are shared mutable containers.
_MUTABLE_CALLS = {
    "dict",
    "list",
    "set",
    "collections.defaultdict",
    "collections.deque",
    "collections.OrderedDict",
    "collections.Counter",
}


@dataclass(frozen=True)
class GlobalVar:
    """One module-level assignment (a candidate shared-state cell)."""

    qualname: str  # "repro.env.worlds._WORLD_CACHE"
    name: str  # "_WORLD_CACHE"
    path: str
    line: int
    mutable: bool  # initialized to a mutable container


class SymbolTable:
    """Name-indexed view over every definition in a :class:`ProjectModel`."""

    def __init__(self, project: ProjectModel):
        self.project = project
        self.functions: dict[str, FunctionInfo] = {}
        #: bare function name -> qualnames (module-level functions only).
        self.by_name: dict[str, list[str]] = {}
        #: method name -> qualnames across every class in the project.
        self.methods_by_name: dict[str, list[str]] = {}
        self.classes: dict[str, ClassInfo] = {}  # by qualname
        self.classes_by_name: dict[str, list[str]] = {}  # bare name -> qualnames
        self.globals: dict[str, GlobalVar] = {}  # by qualname
        #: module dotted name -> repo-relative path (for alias resolution).
        self.module_paths: dict[str, str] = {}
        for module in project.modules:
            self._index_module(module)

    # ------------------------------------------------------------------
    def _index_module(self, module: Module) -> None:
        mod = module_name(module.path)
        self.module_paths[mod] = module.path
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, mod, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, mod, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._index_global(module, mod, node)

    def _add_function(
        self,
        module: Module,
        scope: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> FunctionInfo:
        qualname = f"{scope}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            path=module.path,
            line=node.lineno,
            node=node,
            class_name=class_name,
        )
        self.functions.setdefault(qualname, info)
        if class_name is None:
            self.by_name.setdefault(node.name, []).append(qualname)
        else:
            self.methods_by_name.setdefault(node.name, []).append(qualname)
        return info

    def _index_class(self, module: Module, mod: str, node: ast.ClassDef) -> None:
        qualname = f"{mod}.{node.name}"
        bases = tuple(
            dotted for base in node.bases if (dotted := module.dotted(base)) is not None
        )
        info = ClassInfo(
            qualname=qualname,
            name=node.name,
            path=module.path,
            line=node.lineno,
            bases=bases,
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._add_function(module, qualname, stmt, class_name=node.name)
                info.methods[stmt.name] = method
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                # Class-level attributes are module-level state for the
                # fork-safety pass: one object shared by every instance.
                self._index_global(module, qualname, stmt)
        self.classes[qualname] = info
        self.classes_by_name.setdefault(node.name, []).append(qualname)

    def _index_global(
        self, module: Module, scope: str, node: ast.Assign | ast.AnnAssign
    ) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            self.globals.setdefault(
                f"{scope}.{target.id}",
                GlobalVar(
                    qualname=f"{scope}.{target.id}",
                    name=target.id,
                    path=module.path,
                    line=node.lineno,
                    mutable=_is_mutable_init(node.value, module),
                ),
            )

    # ------------------------------------------------------------------
    def resolve_class(self, name: str) -> ClassInfo | None:
        """A class by qualified name, or by bare name when unambiguous."""
        if name in self.classes:
            return self.classes[name]
        candidates = self.classes_by_name.get(name.rsplit(".", 1)[-1], [])
        if len(candidates) == 1:
            return self.classes[candidates[0]]
        return None

    def method_on(self, class_info: ClassInfo, method: str) -> FunctionInfo | None:
        """Resolve ``method`` on a class or its (project-local) ancestors."""
        seen: set[str] = set()
        stack = [class_info]
        while stack:
            cls = stack.pop()
            if cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            if method in cls.methods:
                return cls.methods[method]
            for base in cls.bases:
                parent = self.resolve_class(base)
                if parent is not None:
                    stack.append(parent)
        return None


def _is_mutable_init(value: ast.expr | None, module: Module) -> bool:
    """Whether a module-level initializer builds a mutable container."""
    if value is None:
        return False
    if isinstance(value, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(value, ast.Call):
        dotted = module.call_name(value)
        if dotted in _MUTABLE_CALLS:
            return True
    if isinstance(value, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return False


def build_symbols(project: ProjectModel) -> SymbolTable:
    """Index every definition in ``project`` (one pass, no resolution)."""
    return SymbolTable(project)
