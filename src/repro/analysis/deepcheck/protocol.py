"""DEEP003 — token/grant protocol state-machine conformance.

The co-simulation wire format is a token protocol: the environment side
configures the cycle budget (``SYNC_SET_STEPS``), grants one step at a
time (``SYNC_GRANT``), and the SoC side acknowledges with ``SYNC_DONE``
before the next grant may land; ``SYNC_RESET``/``SYNC_SHUTDOWN`` tear
the session down.  PR 8's ROADMAP item 5 wants this machine to become an
explicit, backend-pluggable protocol — this pass writes the machine down
*now* as data and statically checks every function that touches the
token constructors against it, so refactors toward pluggable backends
cannot silently reorder the handshake.

Per function, the pass extracts the ordered sequence of protocol
operations — calls to the ``sync_*`` packet constructors plus
comparisons against ``PacketType.SYNC_DONE`` (awaiting the ack) — and
simulates the declared nondeterministic machine over it, starting from
*every* state (a function may legitimately be entered mid-protocol).
An operation that is impossible from every surviving state is a
finding.  The model is linear (loops are unrolled once, branches read
in source order) — coarse, but exactly sharp enough to catch
out-of-order grant/ack sequences like a grant issued after shutdown.

Waive intentional violations at the call site with
``# repro: allow[DEEP003] reason``.
"""

from __future__ import annotations

import ast

from repro.analysis.deepcheck.symbols import FunctionInfo, build_symbols
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import Module, ProjectModel
from repro.analysis.lint.registry import project_rule

#: Packet-constructor (or helper) name -> protocol operation.
PROTOCOL_OPS = {
    "sync_set_steps": "set_steps",
    "sync_grant": "grant",
    "sync_done": "done",
    "sync_reset": "reset",
    "sync_shutdown": "shutdown",
}

#: The declared token/grant machine: state -> op -> next state.
#:
#: * ``idle`` — fresh session; only configuration or teardown may happen.
#: * ``configured`` — budget set; grants may start.  ``done`` self-loops
#:   here because the synchronizer deduplicates stale/re-sent acks for
#:   steps it already executed (watchdog regrant path).
#: * ``granted`` — a step is outstanding; the watchdog may re-issue the
#:   grant (``grant`` self-loop) until the ack arrives.
#: * ``down`` — after shutdown nothing else may be sent.
PROTOCOL_MACHINE: dict[str, dict[str, str]] = {
    "idle": {"set_steps": "configured", "reset": "idle", "shutdown": "down"},
    "configured": {
        "grant": "granted",
        "done": "configured",
        "reset": "idle",
        "shutdown": "down",
    },
    "granted": {
        "grant": "granted",
        "done": "configured",
        "reset": "idle",
        "shutdown": "down",
    },
    "down": {},
}


def function_protocol_ops(
    func: FunctionInfo, module: Module
) -> list[tuple[int, int, str]]:
    """Ordered ``(line, col, op)`` protocol events in one function body."""
    events: list[tuple[int, int, str]] = []
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call):
            dotted = module.call_name(node)
            if dotted is not None:
                op = PROTOCOL_OPS.get(dotted.rsplit(".", 1)[-1])
                if op is not None:
                    events.append((node.lineno, node.col_offset, op))
        elif isinstance(node, ast.Compare):
            # `packet.ptype == PacketType.SYNC_DONE` — awaiting the ack.
            for comparand in [node.left, *node.comparators]:
                dotted = module.dotted(comparand)
                if dotted is not None and dotted.endswith("PacketType.SYNC_DONE"):
                    events.append((node.lineno, node.col_offset, "done"))
    events.sort(key=lambda e: (e[0], e[1]))
    return events


def check_sequence(
    events: list[tuple[int, int, str]],
    machine: dict[str, dict[str, str]] = PROTOCOL_MACHINE,
) -> tuple[int, int, str, str] | None:
    """First impossible event, or ``None`` when some start state accepts.

    Runs the machine nondeterministically: the live set starts as every
    state and each event maps it through the transition table.  Returns
    ``(line, col, op, live_states)`` for the first event that empties
    the live set.
    """
    live = set(machine)
    for line, col, op in events:
        stepped = {machine[state][op] for state in live if op in machine[state]}
        if not stepped:
            return (line, col, op, ",".join(sorted(live)))
        live = stepped
    return None


@project_rule(
    "DEEP003",
    "token/grant call sequences must conform to the declared protocol machine",
    "the synchronizer/bridge handshake (set_steps -> grant -> done, with "
    "watchdog regrants and teardown) is the contract a backend-pluggable "
    "protocol must keep; a function whose send/recv sequence is impossible "
    "under the declared machine would deadlock or double-grant a real "
    "backend even if today's in-process loopback tolerates it",
)
def deep003_protocol_conformance(project: ProjectModel) -> list[Diagnostic]:
    symbols = build_symbols(project)
    out: list[Diagnostic] = []
    for qualname in sorted(symbols.functions):
        info = symbols.functions[qualname]
        # The packet constructors themselves are definitions, not uses.
        if info.name in PROTOCOL_OPS:
            continue
        module = project.by_path[info.path]
        events = function_protocol_ops(info, module)
        if len(events) < 2:
            continue  # a single op is legal from some state by construction
        violation = check_sequence(events)
        if violation is None:
            continue
        line, col, op, live = violation
        sequence = " -> ".join(op for _, _, op in events)
        out.append(
            Diagnostic(
                path=info.path,
                line=line,
                col=col,
                rule="DEEP003",
                message=f"protocol op '{op}' is impossible here (live states: "
                f"{live}) in {qualname} [sequence: {sequence}]",
                hint="re-order the handshake to match the declared machine in "
                "repro.analysis.deepcheck.protocol.PROTOCOL_MACHINE, or "
                "waive with a reason if this is a deliberate fault probe",
            )
        )
    return out
