"""DEEP002 — fork/thread safety of module-level mutable state.

The sweep stack executes the same mission code from three kinds of
worker: forked pool processes (``SweepRunner``), batched lanes
(``repro.batch``), and service shard threads
(``ShardWorker``/``ThreadedWorkerHost``).  Forked workers inherit every
module-level object warm — deliberately, for the memo caches — which
makes any *write* to module-level state from worker-reachable code a
hazard: in threads it is a data race, in forked processes it silently
diverges per-worker state from the serial run that golden traces were
recorded against (the PR 6 ``_pool_initializer`` reseed fixed exactly
such a bug by hand).

The pass computes the forward call-graph closure of the worker entry
points and flags every write to a module-level (or class-level) variable
inside it, unless the write is **blessed**:

* it happens inside ``_pool_initializer`` or a reset hook registered
  with ``register_transient_reset`` (or anything those call) — the
  sanctioned per-spawn reset path;
* it is lexically inside a ``with`` block whose context manager is a
  lock (a module-level ``threading.Lock()``/``RLock()`` global, or any
  context expression whose name contains ``lock``);
* it is a bare ``X.setdefault(k, v)`` — the GIL-atomic memo-insert
  idiom, deterministic because the inserted value is a pure function of
  the key (the memo caches' contract).

Intentional exceptions are waived at the write site with
``# repro: allow[DEEP002] reason``.
"""

from __future__ import annotations

import ast

from repro.analysis.deepcheck.callgraph import CallGraph, build_call_graph
from repro.analysis.deepcheck.symbols import (
    FunctionInfo,
    SymbolTable,
    build_symbols,
    module_name,
)
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import Module, ProjectModel
from repro.analysis.lint.registry import project_rule

#: Entry points that run inside pool workers, batch lanes, or shard
#: threads.  Roots absent from a tree are skipped (fixture trees
#: reproduce the ones they exercise).
WORKER_ENTRYPOINTS = (
    "repro.sweep.runner._execute_task",
    "repro.sweep.runner._execute_batch",
    "repro.sweep.runner._pool_initializer",
    "repro.serve.workers.ShardWorker.step",
    "repro.serve.workers.ShardWorker.drain",
    "repro.serve.workers.ThreadedWorkerHost._serve",
    "repro.batch.engine.run_batch",
    "repro.batch.engine.BatchEngine.run",
)

#: Container-method calls that mutate the receiver in place.
#: ``setdefault`` is deliberately absent — see the module docstring.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "add",
    "update",
    "clear",
    "pop",
    "popitem",
    "remove",
    "discard",
    "insert",
    "sort",
    "reverse",
    "appendleft",
    "extendleft",
}

_LOCK_CALLS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
}


def _blessed_resets(project: ProjectModel, symbols: SymbolTable, graph: CallGraph) -> set[str]:
    """Functions on the sanctioned reset path (plus their callees).

    Reset hooks are discovered two ways: arguments to any
    ``register_transient_reset(...)`` call, and elements of the
    ``_TRANSIENT_RESETS`` list literal itself (the built-in hooks the
    runner ships with are listed there directly).
    """
    roots: list[str] = [
        qual for qual in symbols.functions if qual.endswith("._pool_initializer")
    ]

    def add(module: Module, expr: ast.expr) -> None:
        target = module.dotted(expr)
        if target is None:
            return
        if target in symbols.functions:
            roots.append(target)
            return
        local = f"{module_name(module.path)}.{target}"
        if local in symbols.functions:
            roots.append(local)

    for module in project.modules:
        for node in module.walk():
            if isinstance(node, ast.Call):
                dotted = module.call_name(node)
                if dotted is not None and dotted.endswith("register_transient_reset"):
                    for arg in node.args:
                        add(module, arg)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)) and isinstance(
                node.value, ast.List
            ):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if any(
                    isinstance(t, ast.Name) and t.id == "_TRANSIENT_RESETS"
                    for t in targets
                ):
                    for element in node.value.elts:
                        add(module, element)
    return set(graph.reachable_from(sorted(set(roots))))


def _transient_globals(
    blessed: set[str], symbols: SymbolTable
) -> set[str]:
    """Globals a blessed reset hook writes: sanctioned per-process state.

    A write inside a reset hook is the declaration that this cell is
    per-process transient bookkeeping — cleared on every pool (re)spawn —
    so worker-side writes to the same cell are the design, not a race.
    """
    transient: set[str] = set()
    for qualname in blessed:
        info = symbols.functions[qualname]
        module = symbols.project.by_path[info.path]
        for _, _, target, _, _ in function_global_writes(info, module, symbols):
            transient.add(target)
    return transient


def _lock_globals(symbols: SymbolTable) -> set[str]:
    """Module-level variables initialized to a lock object."""
    locks: set[str] = set()
    for var in symbols.globals.values():
        module = symbols.project.by_path[var.path]
        # Re-find the initializer: cheap, and keeps GlobalVar lean.
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == var.name for t in node.targets
            ):
                if isinstance(node.value, ast.Call):
                    dotted = module.call_name(node.value)
                    if dotted in _LOCK_CALLS or (
                        dotted is not None and dotted.rsplit(".", 1)[-1] in ("Lock", "RLock")
                    ):
                        locks.add(var.qualname)
    return locks


def _locked_nodes(
    func: FunctionInfo, module: Module, mod: str, symbols: SymbolTable, locks: set[str]
) -> set[int]:
    """ids of AST nodes lexically inside a lock-guarded ``with`` block."""
    guarded: set[int] = set()
    for node in ast.walk(func.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if not any(_is_lock_expr(item.context_expr, module, mod, symbols, locks)
                   for item in node.items):
            continue
        for stmt in node.body:
            for child in ast.walk(stmt):
                guarded.add(id(child))
    return guarded


def _is_lock_expr(
    expr: ast.expr, module: Module, mod: str, symbols: SymbolTable, locks: set[str]
) -> bool:
    dotted = module.dotted(expr)
    if dotted is None:
        return False
    for candidate in (dotted, f"{mod}.{dotted}"):
        if candidate in locks:
            return True
    return "lock" in dotted.lower()


def _global_target(
    expr: ast.expr, module: Module, mod: str, symbols: SymbolTable
) -> str | None:
    """Resolve an expression to a known module/class-level variable."""
    dotted = module.dotted(expr)
    if dotted is None or dotted.startswith("self."):
        return None
    for candidate in (dotted, f"{mod}.{dotted}"):
        if candidate in symbols.globals:
            return candidate
    return None


def function_global_writes(
    func: FunctionInfo, module: Module, symbols: SymbolTable
) -> list[tuple[int, int, str, str, int]]:
    """Writes to module/class-level state in one function body.

    Returns ``(line, col, target_qualname, description, node_id)`` rows;
    ``node_id`` lets the caller test lock-block membership.
    """
    mod = func.qualname.rsplit(".", 1)[0]
    if func.class_name is not None:
        mod = mod.rsplit(".", 1)[0]
    declared_global: set[str] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    out: list[tuple[int, int, str, str, int]] = []
    for node in ast.walk(func.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    qual = f"{mod}.{target.id}"
                    if qual in symbols.globals:
                        out.append(
                            (node.lineno, node.col_offset, qual,
                             f"rebinds module global {target.id}", id(node))
                        )
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    qual = _global_target(target.value, module, mod, symbols)
                    if qual is not None:
                        kind = "item" if isinstance(target, ast.Subscript) else "attribute"
                        out.append(
                            (node.lineno, node.col_offset, qual,
                             f"{kind} write to module-level {qual.rsplit('.', 1)[-1]}",
                             id(node))
                        )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    qual = _global_target(target.value, module, mod, symbols)
                    if qual is not None:
                        out.append(
                            (node.lineno, node.col_offset, qual,
                             f"del on module-level {qual.rsplit('.', 1)[-1]}", id(node))
                        )
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                qual = _global_target(node.func.value, module, mod, symbols)
                if qual is not None:
                    out.append(
                        (node.lineno, node.col_offset, qual,
                         f".{node.func.attr}() on module-level "
                         f"{qual.rsplit('.', 1)[-1]}", id(node))
                    )
    return out


@project_rule(
    "DEEP002",
    "no unsynchronized module-level writes from worker-reachable code",
    "pool tasks, batch lanes, and shard threads all execute the mission "
    "stack; a write to module-level mutable state anywhere in their call "
    "graph is a thread race and a fork-divergence hazard unless it goes "
    "through the blessed _pool_initializer/register_transient_reset path, "
    "a lock, or the atomic setdefault memo idiom",
)
def deep002_worker_state_races(project: ProjectModel) -> list[Diagnostic]:
    symbols = build_symbols(project)
    graph = build_call_graph(symbols)
    blessed = _blessed_resets(project, symbols, graph)
    transient = _transient_globals(blessed, symbols)
    locks = _lock_globals(symbols)
    roots = [r for r in WORKER_ENTRYPOINTS if r in symbols.functions]
    reachable = graph.reachable_from(roots)
    findings: dict[tuple[str, int, int, str], Diagnostic] = {}
    for qualname in sorted(reachable):
        if qualname in blessed:
            continue
        info = symbols.functions[qualname]
        module = project.by_path[info.path]
        mod = info.qualname.rsplit(".", 1)[0]
        if info.class_name is not None:
            mod = mod.rsplit(".", 1)[0]
        writes = function_global_writes(info, module, symbols)
        if not writes:
            continue
        guarded = _locked_nodes(info, module, mod, symbols, locks)
        for line, col, target, description, node_id in writes:
            if node_id in guarded or target in transient:
                continue
            key = (info.path, line, col, target)
            if key in findings:
                continue
            chain = " -> ".join(graph.chain(reachable, qualname))
            findings[key] = Diagnostic(
                path=info.path,
                line=line,
                col=col,
                rule="DEEP002",
                message=f"{description} from worker-reachable code [{chain}]",
                hint="guard with a module-level lock, convert to the atomic "
                "setdefault memo idiom, or register a reset via "
                "register_transient_reset so _pool_initializer clears it",
            )
    return [findings[key] for key in sorted(findings)]
