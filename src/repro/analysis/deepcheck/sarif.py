"""SARIF 2.1.0 export for lint/deepcheck reports.

SARIF is the interchange format CI code-scanning UIs ingest; emitting it
lets the ``deepcheck`` CI job upload one artifact that renders findings
inline on changed lines.  The export is deterministic — diagnostics are
sorted, JSON keys are sorted — so the artifact diffs cleanly between
runs, the same stability contract the text/JSON renderers keep.

Suppressed findings are carried as SARIF ``suppressions`` (kind
``inSource`` for inline waivers, ``external`` for baseline entries)
rather than dropped, mirroring :class:`~.diagnostics.Diagnostic`'s
everything-visible philosophy.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.registry import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"


def _rule_descriptor(rule_id: str) -> dict[str, Any]:
    rule = all_rules().get(rule_id)
    if rule is None:
        return {"id": rule_id}
    return {
        "id": rule.id,
        "name": rule.title,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
    }


def _result(diag: Diagnostic) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": diag.rule,
        "level": "error" if diag.active else "note",
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.path},
                    "region": {
                        "startLine": diag.line,
                        "startColumn": diag.col + 1,  # SARIF is 1-based
                    },
                }
            }
        ],
    }
    suppressions: list[dict[str, str]] = []
    if diag.waived:
        suppressions.append(
            {"kind": "inSource", "justification": "inline '# repro: allow' waiver"}
        )
    if diag.baselined:
        suppressions.append(
            {"kind": "external", "justification": "committed lint baseline entry"}
        )
    if suppressions:
        result["suppressions"] = suppressions
    if diag.hint:
        result["message"]["markdown"] = f"{diag.message}\n\n**Fix:** {diag.hint}"
    return result


def render_sarif(diagnostics: list[Diagnostic]) -> str:
    """A complete, deterministic SARIF 2.1.0 log for one engine run."""
    ordered = sorted(diagnostics)
    rule_ids = sorted({d.rule for d in ordered})
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "https://github.com/ucb-bar/RoSE",
                        "rules": [_rule_descriptor(r) for r in rule_ids],
                    }
                },
                "results": [_result(d) for d in ordered],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
