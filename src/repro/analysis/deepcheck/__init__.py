"""Whole-program semantic analysis (``python -m repro lint --deep``).

The per-file lint rules (:mod:`repro.analysis.lint`) catch nondeterminism
where it is written; this package catches it where it is *reachable*.
It builds a project-wide symbol table (:mod:`.symbols`) and an
interprocedural call graph (:mod:`.callgraph`) over the parsed
:class:`~repro.analysis.lint.engine.ProjectModel`, then runs three
dataflow passes registered as deep project rules:

* **DEEP001** (:mod:`.taint`) — determinism taint: proves the transitive
  call graph of every signature/cache-key root (``mission_signature``,
  ``config_key``/``code_fingerprint``, ``canonical_payload``,
  ``config_to_dict``, ``report_signature``) free of wall-clock reads,
  unseeded RNG, environment reads, ``id()``/``hash()``, and
  order-sensitive iteration;
* **DEEP002** (:mod:`.races`) — fork/thread safety: flags writes to
  module-level mutable state from worker-reachable code that bypass the
  blessed ``_pool_initializer``/``register_transient_reset`` path, a
  lock, or the atomic ``setdefault`` memo idiom;
* **DEEP003** (:mod:`.protocol`) — protocol conformance: checks every
  token/grant send/recv sequence against the declared state machine
  (:data:`~.protocol.PROTOCOL_MACHINE`), the static groundwork for the
  backend-pluggable protocol refactor (ROADMAP item 5).

Findings flow through the same diagnostics/waiver/baseline machinery as
the per-file rules and export to SARIF (:mod:`.sarif`) for CI
code-scanning upload.
"""

from repro.analysis.deepcheck.callgraph import CallEdge, CallGraph, build_call_graph
from repro.analysis.deepcheck.sarif import render_sarif
from repro.analysis.deepcheck.symbols import (
    ClassInfo,
    FunctionInfo,
    GlobalVar,
    SymbolTable,
    build_symbols,
    module_name,
)

# Importing the pass modules registers the DEEP project rules.
from repro.analysis.deepcheck import (  # noqa: E402  (registration side effect)
    protocol,  # noqa: F401
    races,  # noqa: F401
    taint,  # noqa: F401
)
from repro.analysis.deepcheck.protocol import PROTOCOL_MACHINE, check_sequence
from repro.analysis.deepcheck.races import WORKER_ENTRYPOINTS
from repro.analysis.deepcheck.taint import DEFAULT_TAINT_ROOTS

__all__ = [
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "DEFAULT_TAINT_ROOTS",
    "FunctionInfo",
    "GlobalVar",
    "PROTOCOL_MACHINE",
    "SymbolTable",
    "WORKER_ENTRYPOINTS",
    "build_call_graph",
    "build_symbols",
    "check_sequence",
    "module_name",
    "render_sarif",
]
