"""DEEP001 — determinism taint over the signature/cache-key call graph.

The path-scoped DET/SRV rules check *files*; this pass checks
*reachability*.  The functions that compute ``mission_signature``,
``config_key``/``code_fingerprint``, ``canonical_payload``,
``config_to_dict``, and ``report_signature`` are the identity of every
cache entry and golden trace — a wall-clock read or an unseeded RNG draw
**two calls deep** below any of them poisons the cache just as surely as
one in the file itself, and the per-file rules cannot see it.

The pass seeds a hazard set in every function body:

* wall-clock reads (``time.*``, ``datetime.now`` family);
* global-stream RNG (unseeded ``random.*`` / ``numpy.random.*`` draws,
  and any global seeding);
* process environment reads (``os.environ``, ``os.getenv``) — host state
  that varies between machines;
* ``id()`` / ``hash()`` of objects — address- or
  ``PYTHONHASHSEED``-dependent values;
* order-sensitive iteration: raw ``.items()/.keys()/.values()`` views
  and set iteration, whose order is construction- or hash-dependent.

then propagates reachability from the signature roots through the call
graph.  A clean run is a proof (up to the resolver's documented limits)
that the whole slice is hazard-free; each finding carries the full
root → ... → hazard witness chain.  Intentional hazards are waived at
the *hazard site* with ``# repro: allow[DEEP001] reason``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.deepcheck.callgraph import build_call_graph
from repro.analysis.deepcheck.symbols import FunctionInfo, build_symbols
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import Module, ProjectModel
from repro.analysis.lint.registry import project_rule
from repro.analysis.lint.rules_det import (
    _NP_RANDOM_OK,
    _RANDOM_OK,
    _SEED_CALLS,
    _WALL_CLOCK,
    _iterables,
)

#: The signature/cache-key slice: every function whose output becomes a
#: content hash.  Roots absent from a tree are skipped, so fixture trees
#: exercise the pass with any subset.
DEFAULT_TAINT_ROOTS = (
    "repro.sweep.signature.mission_signature",
    "repro.sweep.signature.canonical_payload",
    "repro.sweep.fingerprint.config_key",
    "repro.sweep.fingerprint.code_fingerprint",
    "repro.core.manifest.config_to_dict",
    "repro.serve.service.report_signature",
)


@dataclass(frozen=True)
class Hazard:
    """One nondeterminism source found in a function body."""

    line: int
    col: int
    description: str
    hint: str


def function_hazards(info: FunctionInfo, module: Module) -> list[Hazard]:
    """Every hazard in one function body (no reachability applied yet)."""
    out: list[Hazard] = []
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            out.extend(_call_hazards(node, module))
        elif isinstance(node, ast.Attribute):
            if module.dotted(node) == "os.environ":
                out.append(
                    Hazard(
                        line=node.lineno,
                        col=node.col_offset,
                        description="os.environ read (host state)",
                        hint="thread the value through the config instead of "
                        "reading the process environment",
                    )
                )
    for iterable in _iterables(info.node):
        hazard = _iteration_hazard(iterable, module)
        if hazard is not None:
            out.append(hazard)
    out.sort(key=lambda h: (h.line, h.col, h.description))
    return out


def _call_hazards(node: ast.Call, module: Module) -> list[Hazard]:
    dotted = module.call_name(node)
    if dotted is None:
        return []
    if dotted in _WALL_CLOCK:
        return [
            Hazard(
                line=node.lineno,
                col=node.col_offset,
                description=f"wall-clock read {dotted}()",
                hint="signature inputs must be simulated-time or config data",
            )
        ]
    if dotted in _SEED_CALLS:
        return [
            Hazard(
                line=node.lineno,
                col=node.col_offset,
                description=f"global RNG seeding {dotted}()",
                hint="seeding inside the signature slice reorders every "
                "other consumer's stream",
            )
        ]
    if dotted.startswith("numpy.random."):
        member = dotted.split(".", 2)[2].split(".")[0]
        if member not in _NP_RANDOM_OK:
            return [
                Hazard(
                    line=node.lineno,
                    col=node.col_offset,
                    description=f"unseeded global-stream draw {dotted}()",
                    hint="use a seeded np.random.default_rng(seed) generator",
                )
            ]
        return []
    if dotted.startswith("random."):
        member = dotted.split(".", 1)[1].split(".")[0]
        if member not in _RANDOM_OK:
            return [
                Hazard(
                    line=node.lineno,
                    col=node.col_offset,
                    description=f"unseeded global-stream draw {dotted}()",
                    hint="use random.Random(seed) owned by the component",
                )
            ]
        return []
    # (os.environ.get/[] reads are caught by the os.environ attribute
    # check in function_hazards; only the bare-function form is a call.)
    if dotted == "os.getenv":
        return [
            Hazard(
                line=node.lineno,
                col=node.col_offset,
                description=f"process environment read {dotted}()",
                hint="thread the value through the config instead of "
                "reading the process environment",
            )
        ]
    if dotted in ("id", "hash"):
        return [
            Hazard(
                line=node.lineno,
                col=node.col_offset,
                description=f"{dotted}() of an object "
                "(address/PYTHONHASHSEED dependent)",
                hint="digest canonical content (sorted JSON, repr of floats) "
                "instead of object identity",
            )
        ]
    return []


def _iteration_hazard(iterable: ast.expr, module: Module) -> Hazard | None:
    if isinstance(iterable, ast.Set) or (
        isinstance(iterable, ast.Call)
        and module.call_name(iterable) in ("set", "frozenset")
    ):
        return Hazard(
            line=iterable.lineno,
            col=iterable.col_offset,
            description="set iteration (hash-order dependent)",
            hint="wrap in sorted(...)",
        )
    if (
        isinstance(iterable, ast.Call)
        and isinstance(iterable.func, ast.Attribute)
        and iterable.func.attr in ("items", "keys", "values")
    ):
        return Hazard(
            line=iterable.lineno,
            col=iterable.col_offset,
            description=f"unsorted .{iterable.func.attr}() iteration "
            "(construction-order dependent)",
            hint="iterate sorted(....items()) so downstream digests are "
            "order-independent",
        )
    return None


@project_rule(
    "DEEP001",
    "signature/cache-key call-graph slice must be hazard-free",
    "mission_signature, config_key/code_fingerprint, canonical_payload, "
    "config_to_dict, and report_signature are the identity of every cache "
    "entry and golden trace; a wall-clock read, unseeded RNG draw, environ "
    "read, id()/hash(), or unordered iteration anywhere in their transitive "
    "call graph silently splits or poisons the cache — the per-file DET "
    "rules cannot see past one module",
)
def deep001_determinism_taint(project: ProjectModel) -> list[Diagnostic]:
    symbols = build_symbols(project)
    graph = build_call_graph(symbols)
    roots = [r for r in DEFAULT_TAINT_ROOTS if r in symbols.functions]
    reachable = graph.reachable_from(roots)
    findings: dict[tuple[str, int, int, str], Diagnostic] = {}
    for qualname in sorted(reachable):
        info = symbols.functions[qualname]
        module = project.by_path[info.path]
        for hazard in function_hazards(info, module):
            key = (info.path, hazard.line, hazard.col, hazard.description)
            if key in findings:
                continue
            chain = " -> ".join(graph.chain(reachable, qualname))
            findings[key] = Diagnostic(
                path=info.path,
                line=hazard.line,
                col=hazard.col,
                rule="DEEP001",
                message=f"{hazard.description} in the signature slice "
                f"[{chain}]",
                hint=hazard.hint,
            )
    return [findings[key] for key in sorted(findings)]
