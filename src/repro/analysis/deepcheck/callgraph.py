"""Interprocedural call graph over the project symbol table.

Resolution is static and deliberately conservative, in four tiers:

1. **direct** — the callee's dotted name (through import aliases)
   matches a known function: ``config_to_dict(cfg)`` after
   ``from repro.core.manifest import config_to_dict``, ``mod.func(...)``,
   or a local module-level function;
2. **self** — ``self.method(...)`` resolves on the enclosing class,
   walking project-local base classes (class-hierarchy approximation);
3. **class** — ``SomeClass(...)`` links to ``SomeClass.__init__``, and
   ``SomeClass.method(...)`` to the method through the same hierarchy
   walk;
4. **fallback** — ``obj.method(...)`` on an object of unknown type links
   to *every* project method of that name.  Over-approximate by design:
   for the taint and race passes a spurious edge can only create a
   false positive (surfaced, reviewed, waived), never hide a hazard.

Known limits, documented in DESIGN.md §13: no dynamic dispatch beyond
the hierarchy walk, no property-getter edges (attribute reads are not
calls), no decorator or module-import-time edges, and calls through
containers/callback tables are invisible.  Nested ``def``/``lambda``
bodies are attributed to their enclosing function, which is the calling
scope that matters for reachability.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.deepcheck.symbols import FunctionInfo, SymbolTable


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: caller -> callee at a line."""

    caller: str
    callee: str
    line: int
    kind: str  # "direct" | "self" | "class" | "fallback"


class CallGraph:
    """Forward edges plus reachability with witness chains."""

    def __init__(self, symbols: SymbolTable):
        self.symbols = symbols
        self.edges: dict[str, list[CallEdge]] = {}
        for info in symbols.functions.values():
            self.edges[info.qualname] = _resolve_calls(info, symbols)

    def callees(self, qualname: str) -> list[CallEdge]:
        return self.edges.get(qualname, [])

    def reachable_from(self, roots: list[str]) -> dict[str, CallEdge | None]:
        """Every function reachable from ``roots`` (BFS, deterministic).

        Returns ``{qualname: discovering_edge}``; roots map to ``None``.
        The discovering edge links each function back toward its root so
        diagnostics can print the full call chain as a witness.
        """
        seen: dict[str, CallEdge | None] = {}
        frontier = [root for root in sorted(roots) if root in self.symbols.functions]
        for root in frontier:
            seen[root] = None
        while frontier:
            next_frontier: list[str] = []
            for caller in frontier:
                for edge in self.callees(caller):
                    if edge.callee not in seen:
                        seen[edge.callee] = edge
                        next_frontier.append(edge.callee)
            frontier = sorted(next_frontier)
        return seen

    def chain(self, reachable: dict[str, CallEdge | None], qualname: str) -> list[str]:
        """Witness path root -> ... -> ``qualname`` from a reachability map."""
        path = [qualname]
        edge = reachable.get(qualname)
        while edge is not None:
            path.append(edge.caller)
            edge = reachable.get(edge.caller)
        return list(reversed(path))


def _resolve_calls(info: FunctionInfo, symbols: SymbolTable) -> list[CallEdge]:
    module = symbols.project.by_path[info.path]
    mod = info.qualname.rsplit(".", 1)[0]
    if info.class_name is not None:
        mod = mod.rsplit(".", 1)[0]  # strip the class component
    out: list[CallEdge] = []
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        resolved = _resolve_one(node, info, module, mod, symbols)
        out.extend(
            CallEdge(caller=info.qualname, callee=callee, line=node.lineno, kind=kind)
            for callee, kind in resolved
        )
    out.sort(key=lambda e: (e.line, e.callee))
    return out


def _resolve_one(
    node: ast.Call,
    info: FunctionInfo,
    module,  # Module; untyped to avoid an import cycle in annotations
    mod: str,
    symbols: SymbolTable,
) -> list[tuple[str, str]]:
    dotted = module.dotted(node.func)

    # self.method() — the enclosing class and its ancestors.
    if dotted is not None and dotted.startswith("self.") and info.class_name:
        parts = dotted.split(".")
        if len(parts) == 2:
            cls = symbols.resolve_class(f"{mod}.{info.class_name}")
            if cls is not None:
                method = symbols.method_on(cls, parts[1])
                if method is not None:
                    return [(method.qualname, "self")]
        # self.attr.method(...) or unresolvable: fall through to fallback.
        return _fallback(node, symbols)

    if dotted is not None:
        # Bare local name: a module-level function or class in this file.
        if "." not in dotted:
            local = f"{mod}.{dotted}"
            if local in symbols.functions:
                return [(local, "direct")]
            ctor = _constructor(local, symbols)
            if ctor is not None:
                return [(ctor, "class")]
        # Alias-resolved dotted name: function, constructor, or
        # Class.method through the hierarchy walk.
        if dotted in symbols.functions:
            return [(dotted, "direct")]
        ctor = _constructor(dotted, symbols)
        if ctor is not None:
            return [(ctor, "class")]
        if "." in dotted:
            prefix, method_name = dotted.rsplit(".", 1)
            cls = symbols.resolve_class(prefix)
            if cls is not None:
                method = symbols.method_on(cls, method_name)
                if method is not None:
                    return [(method.qualname, "class")]
                return []  # known class, unknown method: nothing to link
        # Unknown dotted target (stdlib, numpy, ...): if it is an
        # attribute call, the fallback may still find project methods.
        if isinstance(node.func, ast.Attribute):
            return _fallback(node, symbols)
        return []

    # Non-name callee (call on a call result, subscript, ...).
    if isinstance(node.func, ast.Attribute):
        return _fallback(node, symbols)
    return []


def _constructor(name: str, symbols: SymbolTable) -> str | None:
    """``__init__`` (possibly inherited) for a class qualname, if known."""
    cls = symbols.classes.get(name)
    if cls is None:
        return None
    init = symbols.method_on(cls, "__init__")
    return init.qualname if init is not None else None


def _fallback(node: ast.Call, symbols: SymbolTable) -> list[tuple[str, str]]:
    """Name-match ``obj.method()`` against every project method ``method``."""
    assert isinstance(node.func, ast.Attribute)
    name = node.func.attr
    return [(qual, "fallback") for qual in sorted(symbols.methods_by_name.get(name, []))]


def build_call_graph(symbols: SymbolTable) -> CallGraph:
    """Resolve every call site in the project (one pass per function)."""
    return CallGraph(symbols)
