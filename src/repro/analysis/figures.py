"""Data generators for every table and figure in the paper's evaluation.

Each function returns plain data structures (dicts / lists of
:class:`~repro.core.cosim.MissionResult` or numeric series) so benchmarks,
examples and tests can render or assert on them without re-deriving the
experiment setup.  The experiment parameters come straight from
Sections 4-5; see DESIGN.md's per-experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from statistics import mean

from repro.core.config import CoSimConfig, SyncConfig
from repro.core.cosim import MissionResult
from repro.core.deploy import CLOUD_AWS, ON_PREMISE, Deployment
from repro.sweep.runner import sweep_missions
from repro.dnn.calibrated import CalibratedTrailClassifier, classifier_profile
from repro.dnn.resnet import RESNET_NAMES, build_all_graphs
from repro.dnn.runtime import latency_table
from repro.soc.cpu import boom_core, rocket_core
from repro.soc.firesim import simulation_throughput_mhz
from repro.soc.gemmini import default_gemmini
from repro.soc.soc import CONFIG_A, CONFIG_B, CONFIG_C


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------
def table2_rows() -> list[tuple[str, str, str]]:
    """Table 2: the evaluated hardware configurations."""
    rows = []
    for config in (CONFIG_A, CONFIG_B, CONFIG_C):
        cpu = {"boom": "3-wide BOOM", "rocket": "Rocket"}[config.cpu]
        accel = "Gemmini" if config.has_gemmini else "None"
        rows.append((config.name, cpu, accel))
    return rows


def table3_rows(accuracy_samples: int = 3000) -> list[dict]:
    """Table 3: per-model DNN latency (BOOM+G, Rocket+G) and accuracy."""
    graphs = build_all_graphs()
    boom = latency_table(graphs, boom_core(), default_gemmini())
    rocket = latency_table(graphs, rocket_core(), default_gemmini())
    rows = []
    for name in RESNET_NAMES:
        profile = classifier_profile(name)
        classifier = CalibratedTrailClassifier(profile, seed=99)
        acc_ang, acc_lat = classifier.validation_accuracy(samples=accuracy_samples)
        rows.append(
            {
                "model": name,
                "latency_boom_ms": boom[name].latency_ms(),
                "latency_rocket_ms": rocket[name].latency_ms(),
                "accuracy": 0.5 * (acc_ang + acc_lat),
                "target_accuracy": profile.validation_accuracy,
            }
        )
    return rows


def table4_rows() -> dict[str, Deployment]:
    """Table 4: the two deployment configurations."""
    return {"on-premise": ON_PREMISE, "cloud-aws": CLOUD_AWS}


# ---------------------------------------------------------------------------
# Closed-loop figures
# ---------------------------------------------------------------------------
def _aggregate(results: list[MissionResult]) -> dict:
    """Seed-aggregate of the metrics a figure reports."""
    times = [r.mission_time if r.completed else r.sim_time for r in results]
    return {
        "mean_mission_time": mean(times),
        "completed": sum(r.completed for r in results),
        "runs": len(results),
        "total_collisions": sum(r.collisions for r in results),
        "mean_activity": mean(r.activity_factor for r in results),
        "mean_velocity": mean(r.average_velocity for r in results),
        "mean_inferences": mean(r.inference_count for r in results),
        "mean_latency_ms": mean(r.mean_inference_latency_ms for r in results),
        "results": results,
    }


def _sweep_cells(cells: list[tuple], seeds: tuple[int, ...]) -> dict:
    """Run a figure's full (cell x seed) grid through one sweep.

    ``cells`` is ``[(key, base_config), ...]``; every cell is expanded to
    one config per seed and the flat task list goes through
    :func:`~repro.sweep.runner.sweep_missions` — so the whole figure
    parallelizes across ``REPRO_SWEEP_WORKERS`` and hits the result cache
    per-mission.  Returns ``{key: seed-aggregate}`` in cell order.
    """
    configs = [
        replace(config, seed=seed) for _, config in cells for seed in seeds
    ]
    results = sweep_missions(configs)
    per_cell = len(seeds)
    return {
        key: _aggregate(results[i * per_cell : (i + 1) * per_cell])
        for i, (key, _) in enumerate(cells)
    }


def _runs(config: CoSimConfig, seeds: tuple[int, ...]) -> dict:
    return _sweep_cells([(0, config)], seeds)[0]


def fig10_data(seeds: tuple[int, ...] = (0,)) -> dict[str, dict[float, dict]]:
    """Figure 10: trajectories per hardware configuration x initial angle.

    Tunnel, ResNet14 at 3 m/s, starts at -20/0/+20 degrees.
    """
    socs = ("A", "B", "C")
    angles = (-20.0, 0.0, 20.0)
    cells = [
        (
            (soc, angle),
            CoSimConfig(
                world="tunnel",
                soc=soc,
                model="resnet14",
                target_velocity=3.0,
                initial_angle_deg=angle,
                max_sim_time=40.0,
            ),
        )
        for soc in socs
        for angle in angles
    ]
    flat = _sweep_cells(cells, seeds)
    return {soc: {angle: flat[(soc, angle)] for angle in angles} for soc in socs}


def fig11_data(
    seeds: tuple[int, ...] = (0, 1, 2),
    models: tuple[str, ...] = RESNET_NAMES,
) -> dict[str, dict]:
    """Figure 11: DNN-architecture sweep in s-shape at 9 m/s (BOOM+G)."""
    base = CoSimConfig(world="s-shape", soc="A", target_velocity=9.0, max_sim_time=60.0)
    return _sweep_cells([(m, replace(base, model=m)) for m in models], seeds)


def fig12_data(
    seeds: tuple[int, ...] = (0, 1, 2),
    velocities: tuple[float, ...] = (6.0, 9.0, 12.0),
) -> dict[float, dict]:
    """Figure 12: velocity-target sweep, ResNet14 on BOOM+Gemmini."""
    base = CoSimConfig(world="s-shape", soc="A", model="resnet14", max_sim_time=60.0)
    return _sweep_cells(
        [(v, replace(base, target_velocity=v)) for v in velocities], seeds
    )


def fig13_data(seeds: tuple[int, ...] = (0, 1, 2)) -> dict[str, dict]:
    """Figure 13: static ResNet14 / static ResNet6 / dynamic runtime."""
    base = CoSimConfig(world="s-shape", soc="A", target_velocity=9.0, max_sim_time=60.0)
    return _sweep_cells(
        [
            ("static-resnet14", replace(base, model="resnet14")),
            ("static-resnet6", replace(base, model="resnet6")),
            ("dynamic", replace(base, dynamic_runtime=True)),
        ],
        seeds,
    )


def fig14_data(
    seeds: tuple[int, ...] = (0, 1, 2),
    models: tuple[str, ...] = RESNET_NAMES,
) -> dict[str, dict[str, dict]]:
    """Figure 14: hardware x DNN co-design sweep (BOOM+G vs Rocket+G)."""
    socs = ("A", "B")
    cells = [
        (
            (soc, m),
            CoSimConfig(
                world="s-shape",
                soc=soc,
                model=m,
                target_velocity=9.0,
                max_sim_time=60.0,
            ),
        )
        for soc in socs
        for m in models
    ]
    flat = _sweep_cells(cells, seeds)
    return {soc: {m: flat[(soc, m)] for m in models} for soc in socs}


# ---------------------------------------------------------------------------
# Simulator-performance figures
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ThroughputPoint:
    cycles_per_sync: int
    throughput_mhz: float
    sync_only_mhz: float


def fig15_data(
    deployment: Deployment = ON_PREMISE,
    granularities: tuple[int, ...] = (
        1_000_000,
        2_000_000,
        5_000_000,
        10_000_000,
        20_000_000,
        50_000_000,
        100_000_000,
        200_000_000,
        400_000_000,
    ),
) -> list[ThroughputPoint]:
    """Figure 15: simulation throughput vs synchronization granularity."""
    return [
        ThroughputPoint(
            cycles_per_sync=g,
            throughput_mhz=simulation_throughput_mhz(deployment.perf, g, with_env=True),
            sync_only_mhz=simulation_throughput_mhz(deployment.perf, g, with_env=False),
        )
        for g in granularities
    ]


def fig16_data(
    granularities: tuple[int, ...] = (
        10_000_000,
        20_000_000,
        50_000_000,
        100_000_000,
        200_000_000,
        400_000_000,
    ),
    seed: int = 0,
) -> dict[int, MissionResult]:
    """Figure 16: trajectory + request latency vs sync granularity.

    Tunnel at 3 m/s, ResNet14, +20 degree start — the paper's setup.
    """
    base = CoSimConfig(
        world="tunnel",
        soc="A",
        model="resnet14",
        target_velocity=3.0,
        initial_angle_deg=20.0,
        max_sim_time=40.0,
        seed=seed,
    )
    configs = [
        replace(base, sync=SyncConfig(cycles_per_sync=cycles))
        for cycles in granularities
    ]
    results = sweep_missions(configs)
    return dict(zip(granularities, results))
