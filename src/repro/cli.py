"""Command-line interface: ``python -m repro <command>``.

Mirrors the artifact's runner scripts (``deploy/hephaestus/runner.py``
flags, ``run-all.sh``) with three subcommands:

* ``fly``    — run one closed-loop mission from flags, print the summary
  (optionally the trajectory plot and a CSV/trace dump);
* ``run``    — run every experiment in a JSON manifest, serially;
* ``sweep``  — run a manifest through the sweep engine: worker processes
  plus the on-disk result cache, with a per-stage wall-clock breakdown;
  supervised execution (per-task timeouts, deterministic retries, poison
  quarantine), a crash-safe journal, and ``--resume`` to pick up a
  killed sweep where it stopped;
* ``verify`` — conformance checks: replay the golden-trace corpus
  (``--check`` / ``--record``) and run the differential oracles;
* ``obs``    — observability: run missions and emit ``rose-obs/1``
  flight-recorder artifacts, merge/diff/validate them, and check that
  the demo set exercises the whole declared metric catalog;
* ``lint``   — static analysis for determinism/protocol/cache-key
  soundness (``repro.analysis.lint``): DET/NUM/PROTO/CFG/OBS rule
  families, inline ``# repro: allow[RULE]`` waivers, committed baseline;
* ``serve``  — boot the sweep service: a JSON-over-HTTP API in front of
  the lease/steal shard scheduler (``repro.serve``), journaled crash-safe
  and bit-identical to serial sweeps;
* ``submit`` / ``status`` — thin HTTP clients for a running service:
  submit a manifest as a job (``--wait`` to block), inspect job status,
  fetch assembled reports and merged telemetry;
* ``table3`` — print the modeled DNN latency/accuracy table.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis.figures import table3_rows
from repro.analysis.plot import trajectory_plot
from repro.analysis.render import format_table
from repro.core.config import CoSimConfig, SyncConfig
from repro.errors import ConfigError, ServeError
from repro.core.cosim import run_mission
from repro.core.faults import load_fault_plan
from repro.core.manifest import load_manifest
from repro.core.trace import Tracer
from repro.env.worlds import make_world
from repro.sweep import ResultCache, SweepRunner, default_cache_dir


def _add_fly_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--world", default="tunnel", help="tunnel | s-shape")
    parser.add_argument("--vehicle", default="quadrotor", help="quadrotor | car")
    parser.add_argument("--soc", default="A", help="Table 2 config: A | B | C")
    parser.add_argument(
        "--controller", default="dnn", help="dnn | mpc | fusion | slam | ros"
    )
    parser.add_argument("--model", default="resnet14", help="resnet6..resnet34")
    parser.add_argument("--velocity", type=float, default=3.0, help="m/s target")
    parser.add_argument("--angle", type=float, default=0.0, help="initial angle, deg")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-sim-time", type=float, default=60.0)
    parser.add_argument(
        "--cycles-per-sync", type=int, default=10_000_000, help="sync granularity"
    )
    parser.add_argument("--dynamic", action="store_true", help="dynamic DNN runtime")
    parser.add_argument("--background", default=None, help="slam-mapper | dnn-monitor")
    parser.add_argument(
        "--fault-plan",
        metavar="SPEC",
        help="fault-injection plan: a JSON file path or inline JSON "
        "(see repro.core.faults.FaultPlan)",
    )
    parser.add_argument("--plot", action="store_true", help="print a trajectory plot")
    parser.add_argument("--csv", metavar="PATH", help="write the synchronizer CSV log")
    parser.add_argument("--trace", metavar="PATH", help="write a Chrome trace JSON")


def _config_from_args(args: argparse.Namespace) -> CoSimConfig:
    return CoSimConfig(
        world=args.world,
        vehicle=args.vehicle,
        soc=args.soc,
        controller=args.controller,
        model=args.model,
        target_velocity=args.velocity,
        initial_angle_deg=args.angle,
        seed=args.seed,
        max_sim_time=args.max_sim_time,
        dynamic_runtime=args.dynamic,
        background=args.background,
        sync=SyncConfig(cycles_per_sync=args.cycles_per_sync),
        faults=load_fault_plan(args.fault_plan) if args.fault_plan else None,
    )


def _cmd_fly(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    tracer = Tracer() if args.trace else None
    result = run_mission(config, tracer=tracer)
    print(result.summary())
    if config.faults is not None and result.sync_stats is not None:
        counters = result.sync_stats.fault_summary()
        rendered = ", ".join(f"{name}={value}" for name, value in counters.items())
        print(f"fault injection (seed {config.faults.seed}): {rendered}")
    if args.plot:
        world = make_world(config.world, **config.world_params)
        print(trajectory_plot(world, {"o-flight": result.trajectory}))
    if args.csv:
        result.logger.write(args.csv)
        print(f"wrote {len(result.logger)} synchronizer rows to {args.csv}")
    if args.trace:
        tracer.write(args.trace)
        print(f"wrote {len(tracer)} trace events to {args.trace}")
    return 0 if result.completed else 1


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.manifest) as handle:
        configs = load_manifest(handle.read())
    print(f"{len(configs)} experiment(s) in {args.manifest}")
    failures = 0
    for name, config in configs.items():
        result = run_mission(config)
        print(f"[{name}] {result.summary()}")
        failures += 0 if result.completed else 1
    return 1 if failures else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    # Imported here so `repro fly` startup never pays for the resilience
    # stack.
    from repro.sweep import RetryPolicy, SweepJournal, config_key
    from repro.sweep.chaos import CHAOS_ENV, load_chaos_plan

    with open(args.manifest) as handle:
        configs = load_manifest(handle.read())
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())

    if args.chaos:
        # Validate eagerly (a bad plan should fail the command, not the
        # first worker) and export for forked workers to inherit.
        try:
            os.environ[CHAOS_ENV] = load_chaos_plan(args.chaos).to_json()
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    retry = RetryPolicy(max_attempts=max(1, args.max_attempts))
    journal = None
    if cache is not None and not args.no_journal:
        tasks = [(name, config_key(config)) for name, config in configs.items()]
        journal = SweepJournal.for_sweep(cache.root, cache.fingerprint, tasks)
    if args.resume and journal is None:
        print("--resume needs a journal (enable the cache, drop --no-journal)")
        return 2

    runner = SweepRunner(
        workers=args.workers,
        cache=cache,
        retry=retry,
        task_timeout=args.task_timeout,
        journal=journal,
        resume=args.resume,
        batch_size=args.batch,
    )
    report = runner.run(list(configs.items()))
    failures = 0
    for outcome in report.outcomes:
        if outcome.result is not None:
            origin = "cache" if outcome.from_cache else f"{outcome.wall_seconds:.2f}s"
            print(f"[{outcome.name}] ({origin}) {outcome.result.summary()}")
            failures += 0 if outcome.result.completed else 1
        else:
            detail = outcome.failure.describe() if outcome.failure else "no result"
            print(
                f"[{outcome.name}] {outcome.state.upper()} after "
                f"{outcome.attempts} attempt(s): {detail}"
            )
            failures += 1
    stages = report.stage_seconds()
    if any(stages.values()):
        rendered = ", ".join(f"{name}={seconds:.2f}s" for name, seconds in stages.items())
        print(f"stage breakdown (executed missions): {rendered}")
    print(
        f"{len(report.outcomes)} mission(s) in {report.wall_seconds:.2f}s "
        f"({report.workers or 'no'} worker(s); cache: {report.cache_hits} hit(s), "
        f"{report.cache_misses} miss(es), {report.cache_stores} store(s))"
    )
    if report.batched_missions:
        print(
            f"batched: {report.batched_missions} mission(s) in "
            f"{report.batch_chunks} lockstep chunk(s)"
        )
    resilience_active = (
        report.retries
        or report.timeouts
        or report.pool_crashes
        or report.quarantined
        or report.journal_replays
    )
    if resilience_active:
        print(
            f"resilience: {report.retries} retrie(s), {report.timeouts} "
            f"timeout(s), {report.pool_crashes} pool crash(es), "
            f"{report.quarantined} quarantined, {report.journal_replays} "
            "journal replay(s)"
        )
    if journal is not None:
        print(f"journal: {journal.path} ({journal.appended} event(s) appended)")
    if args.json:
        payload = {
            "wall_seconds": report.wall_seconds,
            "workers": report.workers,
            "cache": {
                "hits": report.cache_hits,
                "misses": report.cache_misses,
                "stores": report.cache_stores,
            },
            "batch": {
                "missions": report.batched_missions,
                "chunks": report.batch_chunks,
            },
            "resilience": {
                "retries": report.retries,
                "timeouts": report.timeouts,
                "pool_crashes": report.pool_crashes,
                "quarantined": report.quarantined,
                "journal_replays": report.journal_replays,
                "policy": retry.to_dict(),
                "journal": str(journal.path) if journal is not None else None,
            },
            "stage_seconds": stages,
            "metrics": report.telemetry(),
            "missions": [
                {
                    "name": outcome.name,
                    "state": outcome.state,
                    "attempts": outcome.attempts,
                    "completed": (
                        outcome.result.completed
                        if outcome.result is not None
                        else False
                    ),
                    "mission_time": (
                        outcome.result.mission_time
                        if outcome.result is not None
                        else None
                    ),
                    "collisions": (
                        outcome.result.collisions
                        if outcome.result is not None
                        else None
                    ),
                    "wall_seconds": outcome.wall_seconds,
                    "from_cache": outcome.from_cache,
                    "failure": (
                        outcome.failure.to_dict()
                        if outcome.failure is not None
                        else None
                    ),
                    "stage_timings": (
                        outcome.result.stage_timings
                        if outcome.result is not None
                        else {}
                    ),
                }
                for outcome in report.outcomes
            ],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote sweep report to {args.json}")
    return 1 if failures else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    # Imported here so `repro fly` startup never pays for the verify stack.
    from repro.verify import (
        DEFAULT_GOLDEN_DIR,
        DiffRunner,
        check_corpus,
        golden_missions,
        record_corpus,
        registered_oracles,
    )

    if args.list:
        print("golden missions:")
        for name, config in sorted(golden_missions().items()):
            print(f"  {name}: {config.world}/{config.controller} "
                  f"soc={config.soc} {config.sync.describe()}")
        print("differential oracles:")
        for name, orc in sorted(registered_oracles().items()):
            print(f"  {name}: {orc.description}")
        return 0

    golden_dir = args.golden_dir or DEFAULT_GOLDEN_DIR
    status = 0
    ran_anything = False

    if args.record:
        ran_anything = True
        report = record_corpus(golden_dir, only=args.mission)
        print(report.describe())
        # Re-recording always leaves a conforming corpus; drift entries
        # are informational (they show what the re-record changed).

    if args.check or not (args.record or args.oracles):
        ran_anything = True
        report = check_corpus(golden_dir, only=args.mission)
        print(report.describe())
        if not report.ok:
            status = 1

    if args.oracles or not (args.record or args.check or args.mission):
        ran_anything = True
        runner = DiffRunner(names=args.oracle or None)
        oracle_report = runner.run()
        print(oracle_report.describe())
        if not oracle_report.ok:
            status = 1

    if not ran_anything:  # pragma: no cover - defensive; flags above cover all
        print("nothing to do")
    return status


def _cmd_obs(args: argparse.Namespace) -> int:
    # Imported here so mission commands never pay for the obs CLI stack.
    from pathlib import Path

    from repro.obs import (
        COVERAGE_EXEMPT,
        DECLARED_METRICS,
        FlightRecord,
        exercised_metrics,
        merge_snapshots,
        to_prometheus,
        validate_artifact,
    )
    from repro.obs.demo import demo_missions
    from repro.verify import golden_missions
    from repro.verify.diffutil import first_divergence

    def load_record(path: str) -> FlightRecord:
        return FlightRecord.from_json(Path(path).read_text())

    def missions() -> dict[str, CoSimConfig]:
        return {**golden_missions(), **demo_missions()}

    if args.list:
        print("missions (golden corpus + obs demo set):")
        for name in sorted(missions()):
            print(f"  {name}")
        print(f"{len(DECLARED_METRICS)} declared metric(s); "
              f"{len(COVERAGE_EXEMPT)} coverage-exempt")
        return 0

    if args.validate:
        status = 0
        for path in args.validate:
            errors = validate_artifact(json.loads(Path(path).read_text()))
            if errors:
                status = 1
                print(f"[FAIL] {path}")
                for error in errors:
                    print(f"        {error}")
            else:
                print(f"[ok]    {path}")
        return status

    if args.diff:
        a, b = (load_record(path) for path in args.diff)
        hit = first_divergence(
            a.deterministic_view(), b.deterministic_view(), "obs-diff"
        )
        if hit is None:
            print("identical deterministic views")
            return 0
        print(hit.describe())
        return 1

    if args.summarize:
        records = [
            load_record(str(path))
            for path in sorted(Path(args.summarize).glob("*.json"))
        ]
        if not records:
            print(f"no rose-obs artifacts under {args.summarize}", file=sys.stderr)
            return 2
        merged = merge_snapshots(record.metrics for record in records)
        exercised = exercised_metrics(merged)
        for name in sorted(merged):
            entry = merged[name]
            if not entry["series"]:
                continue
            if entry["kind"] == "histogram":
                total = sum(row["count"] for row in entry["series"])
            else:
                total = sum(row["value"] for row in entry["series"])
            print(f"{name} ({entry['kind']}): total={total} "
                  f"series={len(entry['series'])}")
        print(f"{len(records)} artifact(s) merged; "
              f"{len(exercised)}/{len(merged)} metric(s) exercised")
        if args.out:
            Path(args.out).write_text(json.dumps(merged, sort_keys=True, indent=2))
            print(f"wrote merged snapshot to {args.out}")
        return 0

    if args.mission:
        catalog = missions()
        if args.mission not in catalog:
            print(f"error: unknown mission {args.mission!r} "
                  f"(see --list)", file=sys.stderr)
            return 2
        result = run_mission(catalog[args.mission])
        record = result.obs
        assert record is not None
        if args.out:
            Path(args.out).write_text(record.to_json())
            print(f"wrote {args.mission} flight record to {args.out}")
        else:
            print(record.to_json())
        if args.prometheus:
            Path(args.prometheus).write_text(to_prometheus(record.metrics))
            print(f"wrote Prometheus exposition to {args.prometheus}")
        return 0

    if args.demo:
        out_dir = Path(args.demo)
        out_dir.mkdir(parents=True, exist_ok=True)
        snapshots = []
        status = 0
        for name, config in demo_missions().items():
            result = run_mission(config)
            record = result.obs
            assert record is not None
            errors = validate_artifact(record.to_dict())
            if errors:
                status = 1
                for error in errors:
                    print(f"[FAIL] {name}: {error}")
            path = out_dir / f"{name}.json"
            path.write_text(record.to_json())
            snapshots.append(record.metrics)
            print(f"[{name}] wrote {path} "
                  f"({len(exercised_metrics(record.metrics))} metric(s) exercised)")
        merged = merge_snapshots(snapshots)
        if args.prometheus:
            Path(args.prometheus).write_text(to_prometheus(merged))
            print(f"wrote merged Prometheus exposition to {args.prometheus}")
        declared = {spec.name for spec in DECLARED_METRICS}
        missing = sorted(declared - exercised_metrics(merged) - COVERAGE_EXEMPT)
        if missing:
            status = 1
            print(f"coverage FAIL: {len(missing)} declared metric(s) never "
                  f"exercised: {', '.join(missing)}")
        else:
            print(f"coverage ok: every non-exempt declared metric exercised "
                  f"({len(declared) - len(COVERAGE_EXEMPT)} checked)")
        return status

    print("nothing to do (see --help)", file=sys.stderr)
    return 2


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported here so mission commands never pay for the analyzer.
    from pathlib import Path

    import repro
    from repro.analysis.deepcheck import render_sarif
    from repro.analysis.lint import (
        Baseline,
        LintEngine,
        all_rules,
        baseline_path_for,
        default_rules,
        render_json,
        render_text,
    )

    rules = all_rules()
    if args.list_rules:
        for rule_id in sorted(rules):
            rule = rules[rule_id]
            scope = ", ".join(rule.paths) if rule.paths else "entire tree"
            tag = " [deep]" if rule.deep else ""
            print(f"{rule.id}: {rule.title}{tag}")
            print(f"  scope: {scope}")
            if rule.exclude:
                print(f"  blessed: {', '.join(rule.exclude)}")
            print(f"  why: {rule.rationale}")
        return 0

    if args.path:
        root = Path(args.path)
    else:
        # The directory containing the ``repro`` package (src/ in a checkout).
        root = Path(repro.__file__).resolve().parent.parent
    if not root.is_dir():
        print(f"error: lint root {root} is not a directory", file=sys.stderr)
        return 2

    if args.rule:
        unknown = [rule_id for rule_id in args.rule if rule_id not in rules]
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        selected = [rules[rule_id] for rule_id in args.rule]
    elif args.deep:
        selected = list(rules.values())
    else:
        selected = list(default_rules().values())

    baseline_path = Path(args.baseline) if args.baseline else baseline_path_for(root)
    if args.write_baseline:
        report = LintEngine(
            root,
            rules=selected,
            baseline=Baseline.empty(),
            check_waivers=args.check_waivers,
        ).run()
        baseline = Baseline.from_diagnostics(report.diagnostics, path=baseline_path)
        written = baseline.write()
        print(f"wrote {len(baseline)} baseline entr(y/ies) to {written}")
        return 0

    baseline = Baseline.empty() if args.no_baseline else Baseline.load(baseline_path)
    report = LintEngine(
        root, rules=selected, baseline=baseline, check_waivers=args.check_waivers
    ).run()

    if args.prune_baseline:
        if args.no_baseline:
            print("error: --prune-baseline conflicts with --no-baseline",
                  file=sys.stderr)
            return 2
        pruned = baseline.pruned()
        dropped = len(baseline) - len(pruned)
        if dropped:
            written = pruned.write()
            print(f"pruned {dropped} stale baseline entr(y/ies) from {written}")
        else:
            print("baseline has no stale entries; nothing to prune")

    if args.format == "sarif":
        print(render_sarif(report.diagnostics))
    elif args.format == "json":
        print(render_json(report.diagnostics))
    else:
        rendered = render_text(
            report.diagnostics, show_suppressed=args.show_suppressed
        )
        if rendered:
            print(rendered)
        for error in report.parse_errors:
            print(error)
        for entry in report.stale_baseline:
            print(
                f"stale baseline entry: {entry['rule']} at "
                f"{entry['path']}:{entry['line']} (matched nothing; prune it)"
            )
        print(report.describe())
    return 0 if report.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    # Imported here so mission commands never pay for the fuzzing stack.
    from pathlib import Path

    from repro.scenario.fuzz import (
        FuzzSettings,
        load_corpus_journal,
        load_scenario,
        minimize_scenario,
        replay,
        run_fuzz,
    )

    corpus_dir = Path(args.corpus)
    settings = FuzzSettings(
        budget=args.budget,
        seed=args.seed,
        workers=args.workers,
        round_size=args.round_size,
        max_sim_time=args.max_sim_time,
    )

    if args.fuzz_command == "run":
        report = run_fuzz(settings, corpus_dir)
        data = report.to_dict()
        print(
            f"fuzz: {data['evaluated']} mutants evaluated, "
            f"{data['admitted']} admitted, coverage "
            f"{data['baseline_bins']} -> {data['coverage_bins']} bins"
        )
        for key, modes in data["failures"].items():
            print(f"  failure {key[:12]}: {', '.join(modes)}")
        for source, minimized in data["minimized"].items():
            print(f"  minimized {source[:12]} -> {minimized[:12]}")
        return 0

    if args.fuzz_command == "corpus":
        for entry in load_corpus_journal(corpus_dir):
            modes = ",".join(entry["failure_modes"]) or "-"
            print(
                f"{entry['key'][:12]}  round {entry['round']:>2}  "
                f"+{len(entry['new_bins'])} bin(s)  {modes}  {entry['name']}"
            )
        return 0

    if args.fuzz_command == "replay":
        match, expected, actual = replay(corpus_dir, args.key, settings)
        if match:
            print(f"replay OK: {args.key[:12]} reproduces {expected[:16]}")
            return 0
        print(
            f"replay DIVERGED for {args.key[:12]}:\n"
            f"  expected {expected}\n  actual   {actual}"
        )
        return 1

    # minimize
    scenario = load_scenario(corpus_dir, args.key)
    minimized, runs = minimize_scenario(scenario, args.mode, settings)
    print(minimized.canonical_json())
    print(f"# minimized in {runs} runs, preserves {args.mode!r}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so mission commands never pay for the serve stack.
    from repro.serve import ServiceServer, SweepService

    service = SweepService(
        args.root,
        shards=args.shards,
        poll_seconds=args.poll,
        tick_seconds=args.tick,
    )
    service.start()
    server = ServiceServer(service, host=args.host, port=args.port)
    print(f"sweep service at {server.address} (root={args.root}, "
          f"shards={args.shards}); Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


def _job_params_from_args(args: argparse.Namespace) -> "object":
    from repro.serve import JobParams

    return JobParams(
        shards=args.shards,
        slice_size=args.slice,
        workers=args.workers,
        batch_size=args.batch,
        task_timeout=args.task_timeout,
        max_attempts=max(1, args.max_attempts),
        lease_seconds=args.lease,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    # Imported here so mission commands never pay for the serve stack.
    from repro.serve import ServiceClient

    try:
        with open(args.manifest) as handle:
            configs = load_manifest(handle.read())
        client = ServiceClient(args.url)
        submitted = client.submit(
            args.name or os.path.basename(args.manifest),
            list(configs.items()),
            _job_params_from_args(args),
        )
        print(f"job {submitted['job']}: {submitted['disposition']} "
              f"(state {submitted['state']})")
        if not args.wait:
            return 0
        status = client.wait(submitted["job"], timeout=args.timeout)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"job {status['job']}: {status['state']} "
          f"({status['tasks']['ok']}/{status['tasks']['total']} ok; "
          f"owners {status['owners']}; {status['steals']} stolen)")
    return 0 if status["state"] == "done" else 1


def _cmd_status(args: argparse.Namespace) -> int:
    # Imported here so mission commands never pay for the serve stack.
    from repro.serve import ServiceClient

    client = ServiceClient(args.url)
    try:
        if args.job is None:
            for status in client.jobs():
                print(f"{status['job']}  {status['state']:<9} "
                      f"{status['tasks']['completed']}/{status['tasks']['total']} "
                      f"{status['name']}")
            return 0
        status = client.status(args.job)
        payload: dict = {"status": status}
        if args.report:
            payload["report"] = client.report(args.job)
        if args.telemetry:
            payload["telemetry"] = client.job_telemetry(args.job)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote status to {args.json}")
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    report = payload.get("report")
    if report is not None:
        return 0 if report["ok"] else 1
    return 0 if status["state"] in ("queued", "running", "done") else 1


def _cmd_table3(_args: argparse.Namespace) -> int:
    rows = table3_rows()
    print(format_table(
        ["Model", "Latency (BOOM+G)", "Latency (Rocket+G)", "Val. accuracy"],
        [
            [
                r["model"],
                f"{r['latency_boom_ms']:.0f}ms",
                f"{r['latency_rocket_ms']:.0f}ms",
                f"{r['accuracy'] * 100:.0f}%",
            ]
            for r in rows
        ],
        title="Table 3 (modeled)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RoSE reproduction: closed-loop robotics SoC co-simulation",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fly = commands.add_parser("fly", help="run one closed-loop mission")
    _add_fly_arguments(fly)
    fly.set_defaults(handler=_cmd_fly)

    run = commands.add_parser("run", help="run a JSON experiment manifest")
    run.add_argument("manifest", help="path to a manifest (see repro.core.manifest)")
    run.set_defaults(handler=_cmd_run)

    sweep = commands.add_parser(
        "sweep", help="run a manifest via the parallel/cached sweep engine"
    )
    sweep.add_argument("manifest", help="path to a manifest (see repro.core.manifest)")
    sweep.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    sweep.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="run lockstep-compatible cache misses on the batched engine, "
        "up to N missions per engine (bit-identical to serial; default: "
        "$REPRO_SWEEP_BATCH or 1 = no batching)",
    )
    sweep.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="result cache directory (default: $REPRO_SWEEP_CACHE_DIR "
        "or ~/.cache/rose-repro/sweeps)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="replay the sweep journal and recompute only unfinished tasks "
        "(requires the cache + journal)",
    )
    sweep.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock deadline; expired attempts are retried "
        "(default: no deadline)",
    )
    sweep.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempts per task before quarantine (1 disables retries; "
        "default: 3)",
    )
    sweep.add_argument(
        "--no-journal",
        action="store_true",
        help="skip the crash-safe sweep journal (implies no --resume)",
    )
    sweep.add_argument(
        "--chaos",
        metavar="JSON|PATH",
        default=None,
        help="inject deterministic worker faults from a ChaosPlan, given "
        "as inline JSON or a file path (testing/CI only; exported as "
        "$REPRO_SWEEP_CHAOS)",
    )
    sweep.add_argument("--json", metavar="PATH", help="write a JSON sweep report")
    sweep.set_defaults(handler=_cmd_sweep)

    verify = commands.add_parser(
        "verify",
        help="conformance: golden-trace corpus + differential oracles",
        description="With no flags, runs --check and --oracles (the CI "
        "configuration). After an intentional behaviour change, re-record "
        "the corpus with --record and commit the diff under tests/golden/.",
    )
    verify.add_argument(
        "--check", action="store_true", help="replay the golden corpus"
    )
    verify.add_argument(
        "--record", action="store_true", help="(re-)record the golden corpus"
    )
    verify.add_argument(
        "--oracles", action="store_true", help="run the differential oracles"
    )
    verify.add_argument(
        "--list", action="store_true", help="list missions and oracles, then exit"
    )
    verify.add_argument(
        "--mission", metavar="NAME", help="restrict --check/--record to one mission"
    )
    verify.add_argument(
        "--oracle",
        metavar="NAME",
        action="append",
        help="restrict --oracles to named oracle(s); repeatable",
    )
    verify.add_argument(
        "--golden-dir",
        metavar="PATH",
        default=None,
        help="corpus directory (default: tests/golden/ in the repo)",
    )
    verify.set_defaults(handler=_cmd_verify)

    obs = commands.add_parser(
        "obs",
        help="observability: flight records, telemetry aggregation, coverage",
        description="Work with rose-obs/1 flight-recorder artifacts: run a "
        "mission and dump its record (--mission), run the demo set with the "
        "metric-coverage check (--demo, the CI configuration), merge a "
        "directory of artifacts (--summarize), diff two records (--diff), "
        "or validate artifacts against the JSON Schema (--validate).",
    )
    obs.add_argument(
        "--mission",
        metavar="NAME",
        help="run one mission (golden corpus or obs demo set) and emit its "
        "flight record",
    )
    obs.add_argument(
        "--demo",
        metavar="DIR",
        help="run the obs demo missions, write one artifact per mission into "
        "DIR, validate each, and fail if any non-exempt metric is unexercised",
    )
    obs.add_argument(
        "--summarize",
        metavar="DIR",
        help="merge every rose-obs artifact in DIR and print totals",
    )
    obs.add_argument(
        "--diff",
        nargs=2,
        metavar=("A", "B"),
        help="first divergence between two artifacts' deterministic views",
    )
    obs.add_argument(
        "--validate",
        metavar="PATH",
        action="append",
        help="validate artifact(s) against the rose-obs/1 schema; repeatable",
    )
    obs.add_argument(
        "--out", metavar="PATH", help="write the record/merged snapshot here"
    )
    obs.add_argument(
        "--prometheus",
        metavar="PATH",
        help="also write a Prometheus text exposition",
    )
    obs.add_argument(
        "--list", action="store_true", help="list runnable missions, then exit"
    )
    obs.set_defaults(handler=_cmd_obs)

    lint = commands.add_parser(
        "lint",
        help="static analysis: determinism / protocol / cache-key rules",
        description="Run the repro.analysis.lint rule families (DET, NUM, "
        "PROTO, CFG) over a source tree.  --deep adds the whole-program "
        "semantic passes (DEEP001 determinism taint, DEEP002 fork/thread "
        "races, DEEP003 protocol conformance).  Exit 0 when no active "
        "diagnostics remain (inline '# repro: allow[RULE]' waivers and the "
        "committed baseline suppress accepted findings), 1 otherwise.",
    )
    lint.add_argument(
        "path",
        nargs="?",
        default=None,
        help="source root to scan (default: the installed repro package's "
        "parent, i.e. src/ in a checkout)",
    )
    lint.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program passes (call graph, determinism "
        "taint, race and protocol analysis)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (sarif emits SARIF 2.1.0 for code-scanning upload)",
    )
    lint.add_argument(
        "--rule",
        metavar="ID",
        action="append",
        help="restrict to the named rule(s); repeatable",
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file (default: lint-baseline.json beside the tree)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline file"
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into the baseline file and exit",
    )
    lint.add_argument(
        "--check-waivers",
        action="store_true",
        help="report inline waivers that suppress nothing as WAIVE001 "
        "(meaningful when the full rule set runs)",
    )
    lint.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite the baseline file keeping only entries a finding "
        "still matches",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print waived/baselined findings in text output",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    lint.set_defaults(handler=_cmd_lint)

    fuzz = commands.add_parser(
        "fuzz",
        help="coverage-guided scenario fuzzing (rose-scenario/1 documents)",
        description="Mutate scenario documents from the legacy-world seed "
        "corpus, admit coverage-advancing mutants, and minimize discovered "
        "failures.  Fully deterministic: the same --seed and --budget "
        "reproduce the corpus, coverage map and reproducers byte for byte.",
    )
    fuzz_commands = fuzz.add_subparsers(dest="fuzz_command", required=True)
    fuzz_shared = argparse.ArgumentParser(add_help=False)
    fuzz_shared.add_argument(
        "--corpus",
        metavar="DIR",
        default="fuzz-corpus",
        help="corpus directory (scenarios/, corpus.jsonl, coverage.json)",
    )
    fuzz_shared.add_argument(
        "--seed", type=int, default=0, help="campaign RNG seed"
    )
    fuzz_shared.add_argument(
        "--budget", type=int, default=25, help="mutants to evaluate"
    )
    fuzz_shared.add_argument(
        "--workers", type=int, default=1, help="sweep workers per round"
    )
    fuzz_shared.add_argument(
        "--round-size", type=int, default=5, help="mutants per sweep round"
    )
    fuzz_shared.add_argument(
        "--max-sim-time",
        type=float,
        default=8.0,
        help="simulated-seconds budget per mission",
    )
    fuzz_run = fuzz_commands.add_parser(
        "run", parents=[fuzz_shared], help="run one fuzzing campaign"
    )
    fuzz_run.set_defaults(handler=_cmd_fuzz)
    fuzz_corpus = fuzz_commands.add_parser(
        "corpus", parents=[fuzz_shared], help="list the admission journal"
    )
    fuzz_corpus.set_defaults(handler=_cmd_fuzz)
    fuzz_replay = fuzz_commands.add_parser(
        "replay",
        parents=[fuzz_shared],
        help="re-run one corpus scenario and check its recorded signature",
    )
    fuzz_replay.add_argument("key", help="scenario content key (sha256)")
    fuzz_replay.set_defaults(handler=_cmd_fuzz)
    fuzz_minimize = fuzz_commands.add_parser(
        "minimize",
        parents=[fuzz_shared],
        help="greedily minimize one corpus scenario preserving a failure mode",
    )
    fuzz_minimize.add_argument("key", help="scenario content key (sha256)")
    fuzz_minimize.add_argument(
        "--mode",
        default="crash",
        choices=("crash", "deadline-miss", "watchdog", "link-timeout", "crc-storm"),
        help="failure mode the reduction must preserve",
    )
    fuzz_minimize.set_defaults(handler=_cmd_fuzz)

    serve = commands.add_parser(
        "serve",
        help="run the sweep service: HTTP API + shard workers",
        description="Boot a sweep-as-a-service instance over a root "
        "directory (crash-safe rose-jobq/1 job store + content-addressed "
        "result cache).  Jobs are sharded across lease/steal workers and "
        "their reports are bit-identical to serial single-host sweeps "
        "(pinned by the service_vs_serial oracle).  Restarting over the "
        "same root resumes every unfinished job.",
    )
    serve.add_argument("root", help="service data directory (job store + cache)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8321, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--shards", type=int, default=2, help="shard worker threads"
    )
    serve.add_argument(
        "--poll",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="idle worker poll interval",
    )
    serve.add_argument(
        "--tick",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="lease-expiry scheduler tick interval",
    )
    serve.set_defaults(handler=_cmd_serve)

    submit = commands.add_parser(
        "submit", help="submit a manifest to a running sweep service"
    )
    submit.add_argument("manifest", help="path to a manifest (see repro.core.manifest)")
    submit.add_argument(
        "--url", default="http://127.0.0.1:8321", help="service base URL"
    )
    submit.add_argument("--name", default=None, help="job name (default: manifest)")
    submit.add_argument(
        "--shards", type=int, default=2, help="shard width for this job"
    )
    submit.add_argument(
        "--slice",
        type=int,
        default=None,
        metavar="N",
        help="tasks per lease (default: ceil(tasks/shards))",
    )
    submit.add_argument(
        "--workers", type=int, default=1, help="processes per shard's sweep runner"
    )
    submit.add_argument(
        "--batch", type=int, default=1, metavar="N", help="shard-side batch size"
    )
    submit.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS"
    )
    submit.add_argument("--max-attempts", type=int, default=3, metavar="N")
    submit.add_argument(
        "--lease",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="lease duration before un-heartbeated work is stolen",
    )
    submit.add_argument(
        "--wait", action="store_true", help="block until the job settles"
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="--wait deadline",
    )
    submit.set_defaults(handler=_cmd_submit)

    status = commands.add_parser(
        "status", help="query a sweep service: job status, report, telemetry"
    )
    status.add_argument(
        "job", nargs="?", default=None, help="job id (omit to list all jobs)"
    )
    status.add_argument(
        "--url", default="http://127.0.0.1:8321", help="service base URL"
    )
    status.add_argument(
        "--report",
        action="store_true",
        help="fetch the assembled report (exit 1 if any task failed)",
    )
    status.add_argument(
        "--telemetry", action="store_true", help="fetch merged mission telemetry"
    )
    status.add_argument("--json", metavar="PATH", help="write the payload to PATH")
    status.set_defaults(handler=_cmd_status)

    table3 = commands.add_parser("table3", help="print the DNN latency table")
    table3.set_defaults(handler=_cmd_table3)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
