"""RoSE reproduction: hardware-software co-simulation for pre-silicon
full-stack robotics SoC evaluation.

A pure-Python reproduction of "RoSÉ: A Hardware-Software Co-Simulation
Infrastructure Enabling Pre-Silicon Full-Stack Robotics SoC Evaluation"
(ISCA 2023).  See DESIGN.md for the system inventory and the substitutions
made for the GPU/FPGA-backed components.

Quickstart::

    from repro import CoSimConfig, run_mission

    result = run_mission(CoSimConfig(world="tunnel", soc="A",
                                     model="resnet14", target_velocity=3.0))
    print(result.summary())
"""

from repro.core.config import CoSimConfig, SyncConfig
from repro.core.cosim import CoSimulation, MissionResult, run_mission
from repro.core.faults import FaultPlan, FaultRule, ScheduledFault, load_fault_plan

__version__ = "1.0.0"

__all__ = [
    "CoSimConfig",
    "SyncConfig",
    "CoSimulation",
    "MissionResult",
    "run_mission",
    "FaultPlan",
    "FaultRule",
    "ScheduledFault",
    "load_fault_plan",
    "__version__",
]
