"""Declarative scenario descriptions, generation, coverage and fuzzing.

The paper evaluates its robotics SoCs over two hand-built procedural
environments.  This package widens that axis: :mod:`~repro.scenario.schema`
defines the versioned ``rose-scenario/1`` document (geometry family,
obstacles, spawn, sensor noise, fault plan, vehicle/software stack),
:mod:`~repro.scenario.generate` compiles documents into the existing
:class:`~repro.core.config.CoSimConfig` machinery (bit-identical to the
legacy families where they overlap), :mod:`~repro.scenario.coverage`
bins mission outcomes into a deterministic coverage map, and
:mod:`~repro.scenario.fuzz` runs the seeded coverage-guided mutation
loop on top of :class:`~repro.sweep.runner.SweepRunner`.

Determinism is load-bearing everywhere: all randomness flows through an
injected, seeded :class:`random.Random` (lint rule SCN001 forbids the
module-level ``random.*`` / ``np.random.*`` APIs under this package), so
the same seed and budget reproduce the same corpus, coverage map and
minimized reproducers byte for byte.
"""

from repro.scenario.coverage import CoverageMap, mission_features
from repro.scenario.generate import compile_config, world_from_scenario, world_from_spec
from repro.scenario.schema import (
    SCENARIO_FORMAT,
    GeometrySpec,
    ObstacleSpec,
    Scenario,
    SpawnSpec,
    VehicleSpec,
    legacy_scenarios,
    scenario_key,
)

__all__ = [
    "SCENARIO_FORMAT",
    "CoverageMap",
    "GeometrySpec",
    "ObstacleSpec",
    "Scenario",
    "SpawnSpec",
    "VehicleSpec",
    "compile_config",
    "legacy_scenarios",
    "mission_features",
    "scenario_key",
    "world_from_scenario",
    "world_from_spec",
]
