"""Compile ``rose-scenario/1`` documents into runnable configurations.

Two entry points:

* :func:`compile_config` — scenario → :class:`CoSimConfig`.  Scenarios
  that are geometrically one of the legacy procedural families (a
  straight corridor, or a single-period sine) compile to the *native*
  ``tunnel`` / ``s-shape`` worlds with only their non-default parameters
  in ``world_params`` — so the two :func:`legacy_scenarios` documents
  compile to configurations byte-identical to the hand-written golden
  ones (the `scenario-compile` oracle proves this).  Everything else —
  obstacles, zigzag geometry, fractional sine periods — compiles to
  ``world="scenario"`` with the geometry/obstacle slice of the document
  as the world parameter.
* :func:`world_from_spec` — the ``"scenario"`` world builder registered
  in :mod:`repro.env.worlds`; validates and rebuilds the
  :class:`~repro.env.worlds.World` from that slice.

Compilation is where *feasibility* is enforced: an obstacle may not sit
on the spawn or the goal, may not cover the centerline corridor the
waypoint follower needs, must leave a passable gap on at least one side,
and may not overlap another obstacle.  Violations raise
:class:`~repro.errors.ScenarioError` — the fuzzer's mutators treat that
as "draw again", and the hypothesis property test in
``tests/test_scenario.py`` holds every schema-valid document to the
compile-or-typed-error contract.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.config import CoSimConfig, SyncConfig
from repro.env.courses import (
    sine_centerline,
    straight_centerline,
    zigzag_centerline,
)
from repro.env.geometry import Polyline, Segment2
from repro.env.worlds import World, cached_world
from repro.errors import ScenarioError
from repro.scenario.schema import GeometrySpec, ObstacleSpec, Scenario

#: Vehicle body radius the feasibility checks assume (QuadrotorParams
#: and CarDynamics both use 0.3 m collision radii).
VEHICLE_RADIUS = 0.30

#: Minimum passable gap an obstacle must leave on at least one side.
MIN_GAP = 0.9

#: Obstacles must keep the course origin (spawn region) and the goal
#: clear by these arclength margins.
SPAWN_CLEARANCE = 1.5
GOAL_CLEARANCE = 1.0

#: An obstacle's clearance from the centerline itself: the waypoint
#: follower tracks d = 0, so obstacles keep ``radius + vehicle + margin``
#: away from it.  The corridor stays *feasible*; missions still crash
#: when noise, faults, or aggressive spawn angles push the controller
#: into the obstacle envelope — which is exactly the failure surface the
#: fuzzer explores.
CENTERLINE_MARGIN = 0.15


def _centerline_points(geometry: GeometrySpec) -> np.ndarray:
    if geometry.family == "straight":
        return straight_centerline(geometry.length)
    if geometry.family == "sine":
        return sine_centerline(
            geometry.length,
            geometry.amplitude,
            geometry.resolution,
            periods=geometry.periods,
        )
    return zigzag_centerline(geometry.length, geometry.amplitude, geometry.segments)


def _goal_arclength(geometry: GeometrySpec, centerline: Polyline) -> float:
    # The native builders differ here: tunnel places the goal at
    # ``length - 1`` in x (== arclength for a straight line), s-shape at
    # one meter short of the full arclength.  Matching each exactly is
    # what keeps the native compilation bit-identical.
    if geometry.family == "straight":
        return geometry.length - GOAL_CLEARANCE
    return centerline.length - GOAL_CLEARANCE


def _obstacle_segments(
    obstacle: ObstacleSpec, centerline: Polyline
) -> tuple[Segment2, ...]:
    """Compile one obstacle into its four wall segments."""
    center = centerline.point_at_arclength(obstacle.s) + (
        obstacle.d * centerline.normal_at_arclength(obstacle.s)
    )
    cx, cy = float(center[0]), float(center[1])
    r = obstacle.radius
    if obstacle.shape == "box":
        verts = [
            (cx - r, cy - r),
            (cx + r, cy - r),
            (cx + r, cy + r),
            (cx - r, cy + r),
        ]
    else:  # diamond
        verts = [(cx + r, cy), (cx, cy + r), (cx - r, cy), (cx, cy - r)]
    return tuple(
        Segment2(verts[i][0], verts[i][1], verts[(i + 1) % 4][0], verts[(i + 1) % 4][1])
        for i in range(4)
    )


def _check_obstacles(
    geometry: GeometrySpec,
    obstacles: tuple[ObstacleSpec, ...],
    goal_arclength: float,
) -> None:
    """Feasibility screen — raises :class:`ScenarioError` on violation."""
    half_width = geometry.width / 2.0
    for i, ob in enumerate(obstacles):
        label = f"obstacle[{i}]"
        if ob.s - ob.radius < SPAWN_CLEARANCE:
            raise ScenarioError(
                f"{label} at s={ob.s} intrudes into the spawn region "
                f"(needs s - radius >= {SPAWN_CLEARANCE})"
            )
        if ob.s + ob.radius > goal_arclength - GOAL_CLEARANCE:
            raise ScenarioError(
                f"{label} at s={ob.s} blocks the goal "
                f"(needs s + radius <= {goal_arclength - GOAL_CLEARANCE:.2f})"
            )
        if abs(ob.d) > half_width:
            raise ScenarioError(
                f"{label} center d={ob.d} lies outside the corridor "
                f"(half-width {half_width:.2f})"
            )
        min_d = ob.radius + VEHICLE_RADIUS + CENTERLINE_MARGIN
        if abs(ob.d) < min_d:
            raise ScenarioError(
                f"{label} covers the centerline corridor: |d|={abs(ob.d):.2f} "
                f"< radius + vehicle + margin = {min_d:.2f}"
            )
        left_gap = half_width - (ob.d + ob.radius)
        right_gap = (ob.d - ob.radius) + half_width
        if max(left_gap, right_gap) < MIN_GAP:
            raise ScenarioError(
                f"{label} leaves no passable gap "
                f"(left {left_gap:.2f} m, right {right_gap:.2f} m, "
                f"need {MIN_GAP} m on one side)"
            )
        for j in range(i):
            other = obstacles[j]
            closing = ob.radius + other.radius + 0.5
            if abs(ob.s - other.s) < closing and abs(ob.d - other.d) < closing:
                raise ScenarioError(
                    f"{label} overlaps obstacle[{j}] "
                    f"(centers {abs(ob.s - other.s):.2f} m apart in s, "
                    f"{abs(ob.d - other.d):.2f} m in d; need {closing:.2f})"
                )


def _build_world(
    geometry: GeometrySpec, obstacles: tuple[ObstacleSpec, ...]
) -> World:
    try:
        centerline = Polyline(_centerline_points(geometry))
    except ValueError as exc:
        raise ScenarioError(f"degenerate centerline: {exc}") from exc
    goal = _goal_arclength(geometry, centerline)
    if goal <= 0:
        raise ScenarioError(
            f"course too short for a goal: arclength {centerline.length:.2f}"
        )
    _check_obstacles(geometry, obstacles, goal)
    segments: list[Segment2] = []
    for obstacle in obstacles:
        segments.extend(_obstacle_segments(obstacle, centerline))
    return World(
        name="scenario",
        centerline=centerline,
        half_width=geometry.width / 2.0,
        goal_arclength=goal,
        obstacles=tuple(segments),
    )


def world_from_spec(spec: Any = None, **extra: Any) -> World:
    """Build the ``"scenario"`` world from a geometry/obstacles spec dict.

    This is the builder :func:`repro.env.worlds.make_world` dispatches to
    for ``world="scenario"``; ``spec`` is the slice
    ``{"geometry": ..., "obstacles": [...]}`` that
    :func:`compile_config` placed in ``world_params``.
    """
    if extra:
        raise ScenarioError(
            f"unknown scenario world parameter(s): {', '.join(sorted(extra))}"
        )
    if not isinstance(spec, dict):
        raise ScenarioError(
            f"scenario world requires a 'spec' dict, got {type(spec).__name__}"
        )
    unknown = sorted(set(spec) - {"geometry", "obstacles"})
    if unknown:
        raise ScenarioError(f"unknown spec field(s): {', '.join(unknown)}")
    geometry = GeometrySpec.from_dict(spec.get("geometry", {}))
    obstacles_data = spec.get("obstacles", [])
    if not isinstance(obstacles_data, (list, tuple)):
        raise ScenarioError("spec.obstacles must be a list")
    obstacles = tuple(ObstacleSpec.from_dict(entry) for entry in obstacles_data)
    return _build_world(geometry, obstacles)


def _native_world(scenario: Scenario) -> tuple[str, dict[str, Any]] | None:
    """``(world, world_params)`` when a scenario maps onto a legacy family.

    Only non-default builder parameters enter ``world_params`` so the
    legacy documents compile to configurations with ``world_params={}``
    — byte-identical to the hand-written golden configs.
    """
    if scenario.obstacles:
        return None
    geometry = scenario.geometry
    if geometry.family == "straight":
        params: dict[str, Any] = {}
        if geometry.length != 50.0:
            params["length"] = geometry.length
        if geometry.width != 3.2:
            params["width"] = geometry.width
        return "tunnel", params
    if geometry.family == "sine" and geometry.periods == 1.0:
        params = {}
        if geometry.length != 80.0:
            params["length"] = geometry.length
        if geometry.width != 6.4:
            params["width"] = geometry.width
        if geometry.amplitude != 10.0:
            params["amplitude"] = geometry.amplitude
        if geometry.resolution != 161:
            params["resolution"] = geometry.resolution
        return "s-shape", params
    return None


def compile_config(
    scenario: Scenario, max_sim_time: float | None = None
) -> CoSimConfig:
    """Compile a scenario into a runnable :class:`CoSimConfig`.

    Validates feasibility (the world is actually built once, so every
    constraint the ``"scenario"`` builder enforces is checked here too),
    then emits either a native legacy-family configuration or a
    ``world="scenario"`` one.  ``max_sim_time`` overrides the document's
    budget (the fuzzer shortens missions without changing identity).
    """
    native = _native_world(scenario)
    if native is not None:
        world, world_params = native
    else:
        world = "scenario"
        world_params = {
            "spec": {
                "geometry": scenario.geometry.to_dict(),
                "obstacles": [ob.to_dict() for ob in scenario.obstacles],
            }
        }
    # Build (and thereby validate) the world now: a returned config must
    # never fail world construction at mission time.
    _build_world(scenario.geometry, scenario.obstacles)
    noise = None if scenario.noise.is_identity else scenario.noise
    return CoSimConfig(
        world=world,
        world_params=world_params,
        vehicle=scenario.vehicle.kind,
        soc=scenario.vehicle.soc,
        controller=scenario.vehicle.controller,
        model=scenario.vehicle.model,
        target_velocity=scenario.vehicle.target_velocity,
        initial_angle_deg=scenario.spawn.angle_deg,
        initial_lateral_offset=scenario.spawn.lateral_offset,
        sync=SyncConfig(cycles_per_sync=scenario.cycles_per_sync),
        max_sim_time=(
            scenario.max_sim_time if max_sim_time is None else max_sim_time
        ),
        seed=scenario.seed,
        faults=scenario.faults,
        noise=noise,
    )


def world_from_scenario(scenario: Scenario) -> World:
    """The world a scenario's compiled configuration will fly in.

    Goes through :func:`compile_config` + the world registry rather than
    :func:`_build_world` directly, so native-mapped scenarios return the
    *same shared instance* a mission run would use — bit-identity with
    the legacy builders is structural, not coincidental.
    """
    config = compile_config(scenario)
    if config.world_params:
        return cached_world(config.world, **config.world_params)
    return cached_world(config.world)
