"""Deterministic scenario coverage: binned mission-outcome envelopes.

Coverage here means *behavioural* coverage, not line coverage: each
``(scenario, result)`` pair maps to a small set of discrete feature bins
— geometry family, obstacle density, outcome, failure modes, progress
decile, velocity band, fault-injection envelope — and a
:class:`CoverageMap` counts how often each bin has been hit.  The fuzzer
admits a mutant into its corpus exactly when the mutant's mission lights
up a bin nobody hit before.

Everything is derived from fields inside the mission's *signed* payload
(:func:`repro.sweep.signature.canonical_payload`) plus the scenario
document itself, so coverage is as deterministic as the missions are:
the same corpus replayed in any order produces the same map, and the
map's canonical JSON form is byte-stable (sorted bins, integer counts,
no timestamps).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigError
from repro.scenario.schema import Scenario, SpawnSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cosim import MissionResult

COVERAGE_FORMAT = "rose-coverage/1"

#: The failure modes the fuzzer hunts.  ``crash``: wall/obstacle strike;
#: ``deadline-miss``: the mission ran out of its simulated-time budget
#: without completing (and without a harder failure); ``watchdog`` /
#: ``link-timeout``: the synchronizer gave up; ``crc-storm``: corruption
#: faults forced five or more CRC discards on the wire.
FAILURE_MODES = ("crash", "deadline-miss", "watchdog", "link-timeout", "crc-storm")

#: CRC discards at or above this count a ``crc-storm``.
CRC_STORM_THRESHOLD = 5


def failure_modes(result: "MissionResult") -> tuple[str, ...]:
    """The (possibly empty) failure modes a mission exhibited."""
    modes: list[str] = []
    if result.collisions > 0:
        modes.append("crash")
    if result.failure_reason == "watchdog":
        modes.append("watchdog")
    elif result.failure_reason == "link_timeout":
        modes.append("link-timeout")
    elif not result.completed:
        modes.append("deadline-miss")
    if result.sync_stats is not None:
        summary = result.sync_stats.fault_summary()
        if summary.get("corrupt_discards", 0) >= CRC_STORM_THRESHOLD:
            modes.append("crc-storm")
    return tuple(modes)


def _bucket(value: int, edges: tuple[int, ...], labels: tuple[str, ...]) -> str:
    for edge, label in zip(edges, labels):
        if value <= edge:
            return label
    return labels[-1]


def mission_features(scenario: Scenario, result: "MissionResult") -> tuple[str, ...]:
    """Discrete feature bins of one flown scenario, sorted and unique."""
    features = {
        f"family:{scenario.geometry.family}",
        "obstacles:" + _bucket(
            len(scenario.obstacles), (0, 1, 2), ("0", "1", "2", "3+")
        ),
        "noise:" + ("identity" if scenario.noise.is_identity else "perturbed"),
        "spawn:" + ("centered" if scenario.spawn == SpawnSpec() else "offset"),
        f"sync:{scenario.cycles_per_sync // 1_000_000}M",
    }
    if scenario.faults is None:
        features.add("faults:none")
    else:
        wire = bool(scenario.faults.rules)
        scheduled = bool(scenario.faults.scheduled)
        if wire and scheduled:
            features.add("faults:both")
        elif scheduled:
            features.add("faults:scheduled")
        else:
            features.add("faults:wire")
    if result.completed:
        features.add("outcome:completed")
    elif result.failure_reason:
        features.add("outcome:failure")
    else:
        features.add("outcome:dnf")
    for mode in failure_modes(result):
        features.add(f"failure:{mode}")
    decile = min(10, int(result.progress * 10.0))
    features.add(f"progress:{decile * 10}%")
    velocity_band = int(result.average_velocity / 0.5)
    features.add(f"velocity:{velocity_band * 0.5:.1f}")
    features.add(
        "collisions:" + _bucket(result.collisions, (0, 1, 3), ("0", "1", "2-3", "4+"))
    )
    if result.sync_stats is not None:
        summary = result.sync_stats.fault_summary()
        features.add(
            "crc:" + _bucket(
                int(summary.get("corrupt_discards", 0)),
                (0, CRC_STORM_THRESHOLD - 1),
                ("0", "1-4", "5+"),
            )
        )
        features.add(
            "regrants:" + _bucket(
                int(summary.get("sync_regrants", 0)), (0, 2), ("0", "1-2", "3+")
            )
        )
    return tuple(sorted(features))


class CoverageMap:
    """Bin → hit-count map with canonical, byte-stable serialization."""

    def __init__(self, counts: dict[str, int] | None = None):
        self._counts: dict[str, int] = dict(counts or {})

    def observe(self, features: Iterable[str]) -> tuple[str, ...]:
        """Record one mission's bins; returns the bins hit for the first time."""
        new: list[str] = []
        for feature in features:
            if feature not in self._counts:
                new.append(feature)
                self._counts[feature] = 1
            else:
                self._counts[feature] += 1
        return tuple(sorted(new))

    def would_advance(self, features: Iterable[str]) -> tuple[str, ...]:
        """The bins ``features`` would newly hit, without recording them."""
        fresh = dict.fromkeys(features)  # dedup, input order
        return tuple(sorted(f for f in fresh if f not in self._counts))

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, feature: str) -> bool:
        return feature in self._counts

    @property
    def counts(self) -> dict[str, int]:
        return dict(self._counts)

    def to_json(self) -> str:
        return json.dumps(
            {"format": COVERAGE_FORMAT, "bins": dict(sorted(self._counts.items()))},
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "CoverageMap":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid coverage JSON: {exc}") from exc
        if data.get("format") != COVERAGE_FORMAT:
            raise ConfigError(
                f"unsupported coverage format {data.get('format')!r}"
            )
        bins = data.get("bins", {})
        if not isinstance(bins, dict):
            raise ConfigError("coverage bins must be an object")
        counts: dict[str, int] = {}
        for key, value in bins.items():
            if not isinstance(key, str) or isinstance(value, bool) or not isinstance(value, int):
                raise ConfigError(f"invalid coverage bin {key!r}: {value!r}")
            counts[key] = value
        return cls(counts)
